//! Deterministic case runner backing the `proptest!` macro, plus the
//! assertion/assumption macros.

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it.
    Reject,
    /// `prop_assert*!` failed — abort the whole test.
    Fail(String),
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate's default.
        ProptestConfig { cases: 256 }
    }
}

/// Case count after applying the `PROPTEST_CASES` env override.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(config.cases),
        Err(_) => config.cases,
    }
}

/// FNV-1a hash of the fully-qualified test name — a stable per-test seed
/// so every run (and every machine) samples the same cases.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The sampling RNG: SplitMix64. Fast, well-distributed, and entirely
/// independent of the vendored `rand` crates (property-test sampling must
/// never perturb the simulation streams).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that samples its arguments and runs the body for the
/// configured number of cases. An optional leading
/// `#![proptest_config(expr)]` sets the config for every test in the
/// block.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = $crate::test_runner::resolve_cases(&config);
                let mut seeder = $crate::test_runner::TestRng::new(
                    $crate::test_runner::seed_for(concat!(
                        module_path!(),
                        "::",
                        stringify!($name)
                    )),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < cases {
                    attempts += 1;
                    if attempts > u64::from(cases) * 20 + 100 {
                        panic!(
                            "proptest: too many rejected cases ({} accepted of {} wanted)",
                            accepted, cases
                        );
                    }
                    let case_seed = seeder.next_u64();
                    let mut case_rng = $crate::test_runner::TestRng::new(case_seed);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut case_rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest case #{} failed (seed {:#018x}): {}",
                                accepted, case_seed, message
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside `proptest!`; failure aborts the test with
/// the (optional) formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    left, right
                ),
            ));
        }
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `left != right`\n  both: {:?}", left),
            ));
        }
    }};
}

/// Discard the current case (uncounted) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(super::seed_for("a::b"), super::seed_for("a::b"));
        assert_ne!(super::seed_for("a::b"), super::seed_for("a::c"));
    }

    proptest! {
        #[test]
        fn runner_executes_and_assumes(x in 0u32..100, y in 0u32..100) {
            prop_assume!(x != y);
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x, "commutativity for {} {}", x, y);
            prop_assert_ne!(x, y);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(13))]
        #[test]
        fn config_header_parses(v in proptest::collection::vec(0u8..10, 0..5)) {
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_just(choice in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&choice));
        }
    }

    use crate as proptest;
}
