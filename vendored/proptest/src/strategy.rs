//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map every sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Use each sampled value to build a second strategy, then sample it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// --- numeric ranges ---------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as i128;
                let span = (*self.end() as i128 - lo) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// Full-domain strategy for a primitive integer (`proptest::num::u8::ANY`
/// and friends).
#[derive(Debug, Clone, Copy)]
pub struct NumAny<T>(pub PhantomData<T>);

macro_rules! num_any_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for NumAny<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

num_any_strategy!(u8, u16, u32, u64, i8, i16, i32, i64);

// --- tuples -----------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

// --- collections ------------------------------------------------------

/// A `Vec` of strategies is a strategy for a `Vec` of values (one sample
/// from each element, in order) — mirrors the real crate.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Inclusive length bounds for [`VecStrategy`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest length produced.
    pub lo: usize,
    /// Largest length produced (inclusive).
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`crate::option::of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// See [`crate::char::any`].
#[derive(Debug, Clone, Copy)]
pub struct CharAny;

impl Strategy for CharAny {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        // Half ASCII (where most parser edge cases live), half anywhere
        // in the scalar-value space.
        if rng.next_u64().is_multiple_of(2) {
            char::from_u32((rng.next_u64() % 0x80) as u32).expect("ascii")
        } else {
            loop {
                let v = (rng.next_u64() % 0x11_0000) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

// --- string patterns --------------------------------------------------

/// Non-control Unicode ranges sampled for `\PC` (heavily ASCII-biased,
/// plus a few higher planes to exercise multi-byte handling).
const PRINTABLE_RANGES: &[(u32, u32)] = &[
    (0x0020, 0x007E),   // ASCII printable
    (0x00A1, 0x02AF),   // Latin supplement/extended
    (0x0391, 0x03C9),   // Greek
    (0x4E00, 0x4FFF),   // CJK
    (0x1F300, 0x1F5FF), // pictographs
];

enum CharClass {
    /// `\PC` — any non-control char.
    Printable,
    /// `[...]` — explicit ranges (inclusive).
    Set(Vec<(char, char)>),
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Printable => {
                // 90% ASCII so text stays parser-shaped.
                let (lo, hi) = if rng.next_u64() % 10 < 9 {
                    PRINTABLE_RANGES[0]
                } else {
                    let i = 1 + (rng.next_u64() % (PRINTABLE_RANGES.len() as u64 - 1)) as usize;
                    PRINTABLE_RANGES[i]
                };
                let v = lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32;
                char::from_u32(v).expect("ranges contain only valid scalars")
            }
            CharClass::Set(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| u64::from(*b as u32 - *a as u32 + 1))
                    .sum();
                let mut pick = rng.next_u64() % total;
                for (a, b) in ranges {
                    let size = u64::from(*b as u32 - *a as u32 + 1);
                    if pick < size {
                        return char::from_u32(*a as u32 + pick as u32)
                            .expect("class ranges contain only valid scalars");
                    }
                    pick -= size;
                }
                unreachable!("pick < total")
            }
        }
    }
}

/// Parse the pattern subset we support: `\PC{m,n}` or `[class]{m,n}`.
/// Returns `None` for anything else (treated as a literal string).
fn parse_pattern(pat: &str) -> Option<(CharClass, usize, usize)> {
    let (class, rest) = if let Some(rest) = pat.strip_prefix("\\PC") {
        (CharClass::Printable, rest)
    } else if let Some(body) = pat.strip_prefix('[') {
        let mut ranges = Vec::new();
        let mut chars = body.chars().peekable();
        let mut closed = false;
        let mut consumed = 1usize; // the '['
        while let Some(c) = chars.next() {
            consumed += c.len_utf8();
            if c == ']' {
                closed = true;
                break;
            }
            let start = if c == '\\' {
                let esc = chars.next()?;
                consumed += esc.len_utf8();
                esc
            } else {
                c
            };
            // A '-' between two class members denotes a range; anywhere
            // else (leading, or just before ']') it is a literal, as in
            // "[-0-9...]".
            let mut lookahead = chars.clone();
            let is_range = lookahead.next() == Some('-')
                && matches!(lookahead.peek(), Some(&next) if next != ']');
            if is_range {
                chars.next(); // the '-'
                consumed += 1;
                let mut end = chars.next()?;
                consumed += end.len_utf8();
                if end == '\\' {
                    end = chars.next()?;
                    consumed += end.len_utf8();
                }
                if start > end {
                    return None;
                }
                ranges.push((start, end));
            } else {
                ranges.push((start, start));
            }
        }
        if !closed || ranges.is_empty() {
            return None;
        }
        (CharClass::Set(ranges), &body[consumed - 1..])
    } else {
        return None;
    };
    // Quantifier: {m,n} (inclusive), or empty (exactly one char).
    if rest.is_empty() {
        return Some((class, 1, 1));
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = counts.split_once(',')?;
    let m: usize = m.trim().parse().ok()?;
    let n: usize = n.trim().parse().ok()?;
    if m > n {
        return None;
    }
    Some((class, m, n))
}

/// A string literal used as a strategy: either one of the supported
/// pattern shapes, or (fallback) the literal text itself.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((class, lo, hi)) => {
                let len = lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize;
                (0..len).map(|_| class.sample(rng)).collect()
            }
            None => (*self).to_owned(),
        }
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        self.as_str().sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_pattern_respects_alphabet_and_length() {
        let mut rng = TestRng::new(1);
        let strat = "[A-Za-z ]{1,24}";
        for _ in 0..200 {
            let s = strat.sample(&mut rng);
            assert!((1..=24).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '),
                "{s:?}"
            );
        }
    }

    #[test]
    fn leading_dash_and_escapes_are_literals() {
        let mut rng = TestRng::new(2);
        let strat = "[-0-9a-zA-Z. \\[\\],]{0,20}";
        let allowed = |c: char| {
            c == '-'
                || c.is_ascii_alphanumeric()
                || c == '.'
                || c == ' '
                || c == '['
                || c == ']'
                || c == ','
        };
        for _ in 0..300 {
            let s = strat.sample(&mut rng);
            assert!(s.chars().count() <= 20);
            assert!(s.chars().all(allowed), "{s:?}");
        }
    }

    #[test]
    fn printable_pattern_has_no_controls() {
        let mut rng = TestRng::new(3);
        let strat = "\\PC{0,400}";
        let mut max_len = 0;
        for _ in 0..100 {
            let s = strat.sample(&mut rng);
            max_len = max_len.max(s.chars().count());
            assert!(s.chars().count() <= 400);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
        assert!(max_len > 100, "lengths should spread up to the bound");
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = TestRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let v = (2usize..=10).sample(&mut rng);
            assert!((2..=10).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 10;
            let w = (0u8..3).sample(&mut rng);
            assert!(w < 3);
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn vec_of_strategies_is_a_strategy() {
        let mut rng = TestRng::new(5);
        let strategies: Vec<_> = (0..4).map(Just).collect();
        assert_eq!(strategies.sample(&mut rng), vec![0, 1, 2, 3]);
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = TestRng::new(6);
        for _ in 0..500 {
            let v = (-3650i64..3650).sample(&mut rng);
            assert!((-3650..3650).contains(&v));
        }
    }
}
