//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, regex-character-class string strategies,
//! `collection::vec`, `option::of`, `char::any`, `num::*::ANY`,
//! `prop_oneof!`, [`Just`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate: failing cases are *not* shrunk (the
//! failing panic message reports the case seed instead), and string
//! strategies support exactly the pattern shapes the tests use —
//! `\PC{m,n}` and a single `[...]{m,n}` character class.
//!
//! Sampling is deterministic per test (seeded from the test name), so
//! CI runs are reproducible. `PROPTEST_CASES` overrides the case count.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing a `Vec` whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `None` about a quarter of the time and
    /// `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `proptest::char` — strategies for `char`.
pub mod char {
    use crate::strategy::CharAny;

    /// Any valid `char`, biased towards ASCII like the real crate.
    pub fn any() -> CharAny {
        CharAny
    }
}

/// `proptest::num` — `ANY` strategies for the primitive integers.
pub mod num {
    macro_rules! any_mod {
        ($($m:ident: $t:ty),+ $(,)?) => {
            $(
                /// `ANY` strategy for the primitive of the same name.
                pub mod $m {
                    /// The full-range strategy for this integer type.
                    pub const ANY: crate::strategy::NumAny<$t> =
                        crate::strategy::NumAny(core::marker::PhantomData);
                }
            )+
        };
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, i8: i8, i16: i16, i32: i32, i64: i64);
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
