//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this crate provides
//! the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`],
//! `criterion_group!`/`criterion_main!` and [`black_box`] — backed by a
//! simple wall-clock sampler. Each bench runs one warm-up call plus
//! `sample_size` timed calls and prints mean/min/max; there is no
//! statistical analysis, plotting, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` when grouped).
    pub id: String,
    /// Per-call wall-clock samples, in seconds.
    pub samples: Vec<f64>,
}

impl BenchResult {
    /// Mean of the samples, seconds.
    pub fn mean_s(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one(id: String, sample_size: usize, f: impl FnMut(&mut Bencher)) -> BenchResult {
    let mut f = f;
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let result = BenchResult {
        id,
        samples: bencher.samples,
    };
    if result.samples.is_empty() {
        println!("{:<44} (no samples)", result.id);
    } else {
        let mean = result.mean_s();
        let min = result.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = result.samples.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<44} time: [{} {} {}]  ({} samples)",
            result.id,
            format_seconds(min),
            format_seconds(mean),
            format_seconds(max),
            result.samples.len(),
        );
    }
    result
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Parse CLI options — accepted for API compatibility, ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<I: fmt::Display>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let result = run_one(id.to_string(), DEFAULT_SAMPLE_SIZE, f);
        self.results.push(result);
        self
    }

    /// Start a named group whose benches share settings.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// All results measured so far (stub extension, used by reporting).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Default timed calls per bench — far below the real crate's 100 to
/// keep `cargo bench` tolerable on the heavier paper sweeps.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// A group of benches sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed calls per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<I: fmt::Display>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let result = run_one(full, self.sample_size, f);
        self.criterion.results.push(result);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (consumes it; nothing to flush in the stub).
    pub fn finish(self) {}
}

/// Identifier for a parameterised bench: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// One warm-up call, then `sample_size` timed calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Bundle bench target functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_samples_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].samples.len(), DEFAULT_SAMPLE_SIZE);
        assert!(c.results()[0].mean_s() >= 0.0);
    }

    #[test]
    fn groups_prefix_ids_and_respect_sample_size() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
            g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, n| {
                b.iter(|| black_box(n * n))
            });
            g.finish();
        }
        assert_eq!(c.results()[0].id, "grp/inner");
        assert_eq!(c.results()[0].samples.len(), 3);
        assert_eq!(c.results()[1].id, "grp/param/7");
    }

    criterion_group!(smoke, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("macro_smoke", |b| b.iter(|| black_box(0u8)));
    }

    #[test]
    fn macro_generated_group_runs() {
        smoke();
    }
}
