//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`].
//!
//! The keystream is the standard ChaCha stream cipher with 8 rounds, a
//! 64-bit block counter starting at zero and a 64-bit stream id of zero —
//! the exact configuration of `rand_chacha` 0.3. Output buffering follows
//! `rand_core`'s `BlockRng` discipline (a 4-block, 64-word buffer with
//! its straddling `next_u64` rules), so the `u32`/`u64` sequences are bit
//! for bit those of the real crate. Combined with the vendored `rand`'s
//! `seed_from_u64` expansion, every `ChaCha8Rng::seed_from_u64(s)` in the
//! workspace reproduces the streams the corpus generator was calibrated
//! against.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// `rand_core::block::BlockRng` buffers 4 ChaCha blocks per refill.
const BUFFER_WORDS: usize = 4 * BLOCK_WORDS;

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12), little-endian from the seed.
    key: [u32; 8],
    /// 64-bit block counter of the *next* block to generate.
    counter: u64,
    /// Buffered keystream words.
    results: [u32; BUFFER_WORDS],
    /// Next unread index into `results`.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// One ChaCha8 block for block-counter `counter`.
    fn block(&self, counter: u64) -> [u32; BLOCK_WORDS] {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u32; BLOCK_WORDS];
        for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = s.wrapping_add(*i);
        }
        out
    }

    /// Refill the 4-block buffer and position the read index at `index`.
    fn generate_and_set(&mut self, index: usize) {
        for b in 0..4 {
            let block = self.block(self.counter + b as u64);
            self.results[b * BLOCK_WORDS..(b + 1) * BLOCK_WORDS].copy_from_slice(&block);
        }
        self.counter += 4;
        self.index = index;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            results: [0; BUFFER_WORDS],
            // Empty buffer: first use triggers a refill.
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core BlockRng semantics, including the buffer straddle.
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            u64::from(self.results[index + 1]) << 32 | u64::from(self.results[index])
        } else if index >= BUFFER_WORDS {
            self.generate_and_set(2);
            u64::from(self.results[1]) << 32 | u64::from(self.results[0])
        } else {
            let x = u64::from(self.results[BUFFER_WORDS - 1]);
            self.generate_and_set(1);
            u64::from(self.results[0]) << 32 | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2020);
        let mut b = ChaCha8Rng::seed_from_u64(2020);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(2021);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_is_chacha8_not_a_counter() {
        // The first block of ChaCha8 with an all-zero key must differ from
        // the raw initial state and from the next block.
        let rng = ChaCha8Rng::from_seed([0u8; 32]);
        let b0 = rng.block(0);
        let b1 = rng.block(1);
        assert_ne!(b0, b1);
        assert_ne!(b0[0], 0x6170_7865, "rounds must scramble the constant");
    }

    #[test]
    fn next_u64_straddles_like_block_rng() {
        // Draw 63 u32s, then a u64: the low half must be the final word of
        // the old buffer and the high half the first word of the new one.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut reference = ChaCha8Rng::seed_from_u64(7);
        let mut words = Vec::new();
        for _ in 0..BUFFER_WORDS {
            words.push(reference.next_u32());
        }
        let mut next_buffer_first = None;
        for _ in 0..1 {
            next_buffer_first = Some(reference.next_u32());
        }
        for _ in 0..BUFFER_WORDS - 1 {
            rng.next_u32();
        }
        let straddled = rng.next_u64();
        let expect =
            u64::from(next_buffer_first.unwrap()) << 32 | u64::from(words[BUFFER_WORDS - 1]);
        assert_eq!(straddled, expect);
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
