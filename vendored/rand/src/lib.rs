//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the *exact API subset it uses* with semantics that
//! match `rand` 0.8 / `rand_core` 0.6 bit for bit:
//!
//! * [`RngCore`] — the raw 32/64-bit generator interface;
//! * [`SeedableRng`] — including the `seed_from_u64` seed expansion,
//!   which uses the same PCG-XSH-RR 64/32 sequence as `rand_core` 0.6 so
//!   that `ChaCha8Rng::seed_from_u64(seed)` produces the same stream as
//!   the real crates;
//! * [`Rng::gen`] for `f64` — the `Standard` distribution's 53-bit
//!   mantissa construction (`next_u64() >> 11` scaled into `[0, 1)`).
//!
//! Anything the workspace does not call is deliberately absent.

#![forbid(unsafe_code)]

/// The core trait every random-number generator implements.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// `rand`'s `Standard` for `f64`: 53 random mantissa bits scaled into
    /// `[0, 1)` — identical to the real crate.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        (rng.next_u32() >> 31) == 1
    }
}

/// Convenience extension trait, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array (e.g. `[u8; 32]` for ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed and construct.
    ///
    /// Matches `rand_core` 0.6: a PCG-XSH-RR 64/32 sequence seeded at
    /// `state`, emitting one little-endian `u32` per 4-byte chunk.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);

    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 — just for exercising the trait plumbing.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counting(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_uses_53_bits() {
        // 2^53 - 1 in the top 53 bits must map to just below 1.0.
        struct Max;
        impl RngCore for Max {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                dest.fill(0xFF);
            }
        }
        let x: f64 = Max.gen();
        assert!(x < 1.0);
        assert!(x > 0.9999999999999997);
    }

    #[test]
    fn seed_from_u64_expansion_is_stable() {
        struct SeedGrabber([u8; 32]);
        impl SeedableRng for SeedGrabber {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                SeedGrabber(seed)
            }
        }
        // The PCG expansion is deterministic and distinct per input.
        let a = SeedGrabber::seed_from_u64(0).0;
        let b = SeedGrabber::seed_from_u64(0).0;
        let c = SeedGrabber::seed_from_u64(1).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 32]);
    }
}
