//! Cross-crate integration tests: determinism, serialization round trips
//! through every format, and reconstruction consistency across the
//! flat-file boundary.

use hftnetview::prelude::*;
use hftnetview::report;
use std::sync::OnceLock;

fn eco() -> &'static report::Analysis<'static> {
    static ECO: OnceLock<hft_corridor::GeneratedEcosystem> = OnceLock::new();
    static ANALYSIS: OnceLock<report::Analysis<'static>> = OnceLock::new();
    ANALYSIS
        .get_or_init(|| report::Analysis::new(ECO.get_or_init(|| generate(&chicago_nj(), 2020))))
}

#[test]
fn generation_is_deterministic_and_seed_sensitive() {
    let a = generate(&chicago_nj(), 7);
    let b = generate(&chicago_nj(), 7);
    assert_eq!(a.db.licenses(), b.db.licenses());
    let c = generate(&chicago_nj(), 8);
    assert_ne!(a.db.licenses(), c.db.licenses(), "different seeds differ");
    // ...but both seeds still satisfy the calibration targets.
    for e in [&a, &c] {
        let nln = {
            let lics = e.db.licensee_search("New Line Networks");
            reconstruct(
                &lics,
                "New Line Networks",
                Date::new(2020, 4, 1).unwrap(),
                &Default::default(),
            )
        };
        let r = route(&nln, &corridor::CME, &corridor::EQUINIX_NY4).unwrap();
        assert!((r.latency_ms - 3.96171).abs() < 0.0001);
    }
}

#[test]
fn flat_file_round_trip_preserves_analysis() {
    let text = hft_uls::flatfile::encode(eco().eco.db.licenses());
    let back = hft_uls::flatfile::decode(&text).expect("own output parses");
    assert_eq!(back.len(), eco().eco.db.len());
    let db2 = UlsDatabase::from_licenses(back);

    // The Table-1 ranking must survive the text round trip (coordinates
    // are stored as DMS with ~3 m resolution — well under ranking gaps).
    let asof = Date::new(2020, 4, 1).unwrap();
    for (name, expect_ms) in [
        ("New Line Networks", 3.96171),
        ("Pierce Broadband", 3.96209),
        ("Webline Holdings", 3.97157),
    ] {
        let lics = db2.licensee_search(name);
        let net = reconstruct(&lics, name, asof, &Default::default());
        let r = route(&net, &corridor::CME, &corridor::EQUINIX_NY4).expect("still connected");
        assert!(
            (r.latency_ms - expect_ms).abs() < 0.0002,
            "{name} after round trip: {} vs {expect_ms}",
            r.latency_ms
        );
    }
}

#[test]
fn yaml_round_trip_preserves_route() {
    let net = report::network_of(eco(), "Jefferson Microwave", report::snapshot_date());
    let yaml = hft_core::yaml::to_yaml(&net);
    let back = hft_core::yaml::from_yaml(&yaml).expect("own dialect parses");
    assert_eq!(back.tower_count(), net.tower_count());
    assert_eq!(back.link_count(), net.link_count());
    let r1 = route(&net, &corridor::CME, &corridor::EQUINIX_NY4).unwrap();
    let r2 = route(&back, &corridor::CME, &corridor::EQUINIX_NY4).unwrap();
    assert!((r1.latency_ms - r2.latency_ms).abs() < 1e-6);
    assert_eq!(r1.towers, r2.towers);
}

#[test]
fn geojson_and_svg_artifacts_well_formed() {
    let net = report::network_of(eco(), "Webline Holdings", report::snapshot_date());
    let gj = hft_viz::geojson::network_to_geojson(&net);
    assert_eq!(gj.matches('{').count(), gj.matches('}').count());
    assert_eq!(
        gj.matches("\"type\":\"Feature\"").count(),
        net.tower_count() + net.link_count()
    );
    let svg = hft_viz::svgmap::network_to_svg(&net, &[("CME", corridor::CME.position())]);
    assert_eq!(svg.matches("<circle").count(), net.tower_count());
    assert_eq!(svg.matches("<line").count(), net.link_count());
}

#[test]
fn reconstruction_is_date_monotone_for_archived_network() {
    // National Tower Company: exists in 2014-2017, empty before and after.
    let lics = eco().eco.db.licensee_search("National Tower Company");
    let count_at = |y: i32| {
        reconstruct(
            &lics,
            "National Tower Company",
            Date::new(y, 6, 1).unwrap(),
            &Default::default(),
        )
        .link_count()
    };
    assert_eq!(count_at(2011), 0);
    assert!(count_at(2014) > 20);
    assert_eq!(count_at(2020), 0);
}

#[test]
fn scrape_then_reconstruct_equals_direct_reconstruct() {
    // The paper's pipeline: scrape -> per-licensee licenses -> networks.
    let (shortlist, _) = hft_uls::scrape::run_pipeline(
        &eco().eco.db,
        &corridor::CME.position(),
        &hft_uls::scrape::ScrapeConfig::default(),
    );
    let asof = Date::new(2020, 4, 1).unwrap();
    let (name, lics) = shortlist
        .iter()
        .find(|(n, _)| n == "New Line Networks")
        .expect("NLN shortlisted");
    let via_scrape = reconstruct(lics, name, asof, &Default::default());
    let direct = report::network_of(eco(), "New Line Networks", asof);
    assert_eq!(via_scrape.tower_count(), direct.tower_count());
    assert_eq!(via_scrape.link_count(), direct.link_count());
}

#[test]
fn all_connected_networks_within_five_percent_bound_or_not() {
    // The 1.05 × c-bound separates the APA>0-capable networks (Table 1:
    // everything at or under ~4.15 ms) from GTT and SW.
    let bound_ms = hft_geodesy::one_way_ms(
        corridor::CME
            .position()
            .geodesic_distance_m(&corridor::EQUINIX_NY4.position()),
        Medium::Air,
    ) * 1.05;
    let rows = report::table1(eco());
    for r in &rows {
        let within = r.latency_ms <= bound_ms;
        if !within {
            assert_eq!(
                r.apa, 0.0,
                "{} beyond the bound must have APA 0",
                r.licensee
            );
        }
    }
    assert!(
        rows.iter().any(|r| r.latency_ms > bound_ms),
        "GTT/SW exceed the bound"
    );
}

#[test]
fn cli_binary_smoke() {
    // Run the actual binary for one light command.
    let exe = env!("CARGO_BIN_EXE_hftnetview");
    let out = std::process::Command::new(exe)
        .args(["funnel", "--seed", "2020"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("57"), "{stdout}");
    assert!(stdout.contains("29"), "{stdout}");
}

#[test]
fn table1_ranking_is_seed_robust() {
    // The calibration is closed-loop, so the Table-1 ordering must hold
    // for any seed, not just the published one.
    let expected = [
        "New Line Networks",
        "Pierce Broadband",
        "Jefferson Microwave",
        "Blueline Comm",
        "Webline Holdings",
        "AQ2AT",
        "Wireless Internetwork",
        "GTT Americas",
        "SW Networks",
    ];
    for seed in [1u64, 31337] {
        let alt = generate(&chicago_nj(), seed);
        let rows = report::table1(&report::Analysis::new(&alt));
        let names: Vec<&str> = rows.iter().map(|r| r.licensee.as_str()).collect();
        assert_eq!(names, expected, "seed {seed}");
        for r in &rows {
            // Latencies remain pinned to the paper across seeds.
            assert!(
                (3.9..4.5).contains(&r.latency_ms),
                "seed {seed}: {} at {}",
                r.licensee,
                r.latency_ms
            );
        }
    }
}
