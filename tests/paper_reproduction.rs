//! End-to-end reproduction tests: every table and figure of the paper,
//! asserted on the *shapes* the paper reports — rankings, gaps,
//! crossovers and funnel counts — plus absolute latencies where the
//! generator is calibrated to match.

use hftnetview::prelude::*;
use hftnetview::report;
use std::sync::OnceLock;

fn eco() -> &'static report::Analysis<'static> {
    static ECO: OnceLock<hft_corridor::GeneratedEcosystem> = OnceLock::new();
    static ANALYSIS: OnceLock<report::Analysis<'static>> = OnceLock::new();
    ANALYSIS
        .get_or_init(|| report::Analysis::new(ECO.get_or_init(|| generate(&chicago_nj(), 2020))))
}

/// Paper Table 1, transcribed.
const TABLE1: [(&str, f64, f64, usize); 9] = [
    ("New Line Networks", 3.96171, 0.54, 25),
    ("Pierce Broadband", 3.96209, 0.07, 29),
    ("Jefferson Microwave", 3.96597, 0.73, 22),
    ("Blueline Comm", 3.96940, 0.00, 29),
    ("Webline Holdings", 3.97157, 0.85, 27),
    ("AQ2AT", 4.01101, 0.00, 29),
    ("Wireless Internetwork", 4.12246, 0.00, 33),
    ("GTT Americas", 4.24241, 0.00, 28),
    ("SW Networks", 4.44530, 0.00, 74),
];

#[test]
fn table1_matches_paper() {
    let rows = report::table1(eco());
    assert_eq!(rows.len(), 9, "nine connected networks");
    for (row, (name, lat, apa, towers)) in rows.iter().zip(TABLE1) {
        assert_eq!(row.licensee, name);
        assert!(
            (row.latency_ms - lat).abs() < 0.0001,
            "{name}: latency {} vs paper {lat}",
            row.latency_ms
        );
        assert!(
            (row.apa - apa).abs() < 0.08,
            "{name}: APA {} vs paper {apa}",
            row.apa
        );
        assert_eq!(row.towers, towers, "{name}: tower count");
    }
}

#[test]
fn table1_sub_microsecond_gaps_preserved() {
    let rows = report::table1(eco());
    // NLN beats PB by ~0.4 µs — the paper's headline margin.
    let gap_us = (rows[1].latency_ms - rows[0].latency_ms) * 1000.0;
    assert!((gap_us - 0.38).abs() < 0.15, "NLN-PB gap {gap_us} µs");
}

#[test]
#[allow(clippy::type_complexity)]
fn table2_matches_paper() {
    let t = report::table2(eco());
    let expect: [(&str, f64, [(&str, f64); 3]); 3] = [
        (
            "CME-NY4",
            1186.0,
            [
                ("New Line Networks", 3.96171),
                ("Pierce Broadband", 3.96209),
                ("Jefferson Microwave", 3.96597),
            ],
        ),
        (
            "CME-NYSE",
            1174.0,
            [
                ("New Line Networks", 3.93209),
                ("Jefferson Microwave", 3.94021),
                ("Blueline Comm", 3.95866),
            ],
        ),
        (
            "CME-NASDAQ",
            1176.0,
            [
                ("New Line Networks", 3.92728),
                ("Webline Holdings", 3.92805),
                ("Jefferson Microwave", 3.92828),
            ],
        ),
    ];
    for ((path, geo, ranks), (epath, egeo, eranks)) in t
        .paths
        .iter()
        .map(|(p, g, r)| (p.clone(), *g, r.clone()))
        .zip(expect)
    {
        assert_eq!(path, epath);
        assert!((geo - egeo).abs() < 0.5, "{path} geodesic {geo}");
        for ((name, ms), (ename, ems)) in ranks.iter().zip(eranks) {
            assert_eq!(name, ename, "{path} ranking");
            assert!((ms - ems).abs() < 0.0002, "{path} {name}: {ms} vs {ems}");
        }
    }
}

#[test]
fn table3_matches_paper() {
    let rows = report::table3(eco());
    let paper = [
        ("New Line Networks", [0.54, 0.58, 0.30]),
        ("Webline Holdings", [0.85, 0.92, 0.80]),
    ];
    for ((name, apas), (ename, eapas)) in rows.iter().zip(paper) {
        assert_eq!(name, ename);
        for (i, (apa, eapa)) in apas.iter().zip(eapas).enumerate() {
            let apa = apa.expect("both networks serve all three paths");
            assert!(
                (apa - eapa).abs() < 0.08,
                "{name} path {i}: {apa} vs {eapa}"
            );
        }
    }
}

#[test]
fn section5_lags_match() {
    // §5: WH lags NLN by 10 µs, 117 µs, 0.8 µs on NY4/NYSE/NASDAQ.
    let asof = report::snapshot_date();
    let nln = report::network_of(eco(), "New Line Networks", asof);
    let wh = report::network_of(eco(), "Webline Holdings", asof);
    let lag = |dc| {
        let a = route(&nln, &corridor::CME, dc).unwrap().latency_ms;
        let b = route(&wh, &corridor::CME, dc).unwrap().latency_ms;
        (b - a) * 1000.0
    };
    let ny4 = lag(&corridor::EQUINIX_NY4);
    let nyse = lag(&corridor::NYSE);
    let nasdaq = lag(&corridor::NASDAQ);
    assert!((ny4 - 10.0).abs() < 1.0, "NY4 lag {ny4} µs vs paper 10 µs");
    assert!(
        (nyse - 117.0).abs() < 3.0,
        "NYSE lag {nyse} µs vs paper 117 µs"
    );
    assert!(
        (nasdaq - 0.8).abs() < 0.3,
        "NASDAQ lag {nasdaq} µs vs paper 0.8 µs"
    );
}

#[test]
fn fig1_narrative() {
    let series = report::evolution(eco());
    // "decreased from 4.00 ms in 2013 to 3.962 ms in 2020".
    let best_at = |idx: usize| {
        series
            .iter()
            .filter_map(|s| s.points[idx].1)
            .fold(f64::INFINITY, f64::min)
    };
    assert!(
        (best_at(0) - 4.000).abs() < 0.003,
        "2013 best {}",
        best_at(0)
    );
    assert!(
        (best_at(8) - 3.96171).abs() < 0.0005,
        "2020 best {}",
        best_at(8)
    );
    // Latencies never materially regress for any surviving network
    // (sub-µs wobble from tower-move quantization between equal-target
    // eras is allowed).
    for s in &series {
        let mut last = f64::INFINITY;
        for (_, lat, _) in &s.points {
            if let Some(ms) = lat {
                assert!(
                    *ms <= last + 0.001,
                    "{}: latency regressed {last} -> {ms}",
                    s.licensee
                );
                last = *ms;
            }
        }
    }
    // NLN achieves the overall lead by 2018.
    let at =
        |name: &str, idx: usize| series.iter().find(|s| s.licensee == name).unwrap().points[idx].1;
    let nln_2018 = at("New Line Networks", 5).unwrap();
    for other in ["Webline Holdings", "Jefferson Microwave"] {
        assert!(
            nln_2018 < at(other, 5).unwrap(),
            "NLN leads {other} in 2018"
        );
    }
}

#[test]
fn fig2_narrative() {
    let series = report::evolution(eco());
    let get = |name: &str| series.iter().find(|s| s.licensee == name).unwrap();
    // NLN: 95 active licenses on 2016-01-01 (55 granted during 2015).
    let nln = get("New Line Networks");
    assert_eq!(nln.points[3].2, 95, "NLN license count on 2016-01-01");
    assert!(nln.points[2].2 <= 45, "NLN barely present on 2015-01-01");
    // NTC: ramps, then cancels ~71 licenses across 2017-18 and dies.
    let ntc = get("National Tower Company");
    let peak = ntc.points.iter().map(|p| p.2).max().unwrap();
    assert!(peak >= 90, "NTC peak {peak}");
    assert_eq!(ntc.points[6].2, 0, "NTC gone by 2019");
    let cancelled_17_18 = ntc.points[4].2 - ntc.points[6].2;
    assert!(
        (60..=100).contains(&cancelled_17_18),
        "NTC cancelled {cancelled_17_18}"
    );
    // PB: smallest active count among the 2020 players, by far.
    let pb_2020 = get("Pierce Broadband").points[8].2;
    assert!(pb_2020 < 50);
    for other in [
        "New Line Networks",
        "Webline Holdings",
        "Jefferson Microwave",
    ] {
        assert!(
            get(other).points[8].2 > 2 * pb_2020,
            "{other} has far more licenses than PB"
        );
    }
}

#[test]
fn fig4_contrasts() {
    let lens = report::fig4a(eco());
    let wh = &lens
        .iter()
        .find(|(n, _)| n == "Webline Holdings")
        .unwrap()
        .1;
    let nln = &lens
        .iter()
        .find(|(n, _)| n == "New Line Networks")
        .unwrap()
        .1;
    // Paper: WH median 36 km, NLN 48.5 km (26% shorter).
    assert!(
        (wh.median() - 36.0).abs() < 4.0,
        "WH median {}",
        wh.median()
    );
    assert!(
        (nln.median() - 48.5).abs() < 4.0,
        "NLN median {}",
        nln.median()
    );

    let freqs = report::fig4b(eco());
    let wh_f = &freqs[0].1;
    let nln_f = &freqs[1].1;
    let alt_f = &freqs[2].1;
    assert!(wh_f.fraction_below(7.0) > 0.94, "WH >94% under 7 GHz");
    assert!(
        nln_f.median() > 10.0 && nln_f.median() < 12.0,
        "NLN rides the 11 GHz band"
    );
    assert!(
        alt_f.fraction_below(7.0) >= 0.18,
        "NLN alternates ≥18% in the 6 GHz band"
    );
}

#[test]
fn funnel_matches_section_2_2() {
    let f = report::funnel(eco());
    assert_eq!(f.service_filtered, 57, "57 candidate licensees");
    assert_eq!(f.shortlisted, 29, "29 shortlisted");
    assert!(
        f.geographic_candidates > 57,
        "non-MG licensees exist near CME"
    );
    // All nine connected networks are on the shortlist.
    for name in &eco().eco.connected_2020 {
        assert!(f.shortlist.contains(name), "{name} missing from shortlist");
    }
}

#[test]
fn fig5_winners() {
    let rows = report::fig5();
    assert_eq!(rows[0].winner(), "microwave", "Chicago-NJ: MW wins");
    assert_eq!(rows[1].winner(), "LEO", "Frankfurt-DC: LEO wins");
    assert_eq!(rows[2].winner(), "LEO", "Tokyo-NY: LEO wins");
    // And LEO never beats the straight-line c bound.
    for r in &rows {
        if let Some(leo) = r.leo_ms {
            assert!(leo > r.c_bound_ms);
        }
    }
}

#[test]
fn extension_entity_resolution_finds_the_hidden_pair() {
    // §2.4 blind spot / §6 future work: the corpus hides one physical
    // network filed under two shells; the complementary-link scan must
    // find exactly that pair and nothing else.
    let candidates = report::entity_scan(eco());
    let joint_only: Vec<_> = candidates
        .iter()
        .filter(|c| c.jointly_connected_only())
        .collect();
    assert_eq!(joint_only.len(), 1, "exactly one hidden split entity");
    let c = joint_only[0];
    let mut names = [c.a.as_str(), c.b.as_str()];
    names.sort_unstable();
    assert_eq!(
        names,
        ["Lakefront Route Holdings", "Seaboard Route Holdings"]
    );
    assert!(
        c.shared_towers >= 20,
        "shells interleave on the same towers"
    );
    // The merged entity would have been a mid-table player.
    assert!(
        c.joint_latency_ms > 3.9617 && c.joint_latency_ms < 4.01,
        "{}",
        c.joint_latency_ms
    );
}

#[test]
fn extension_per_tower_overhead_crossover_matches_section3() {
    // §3: "If both NLN and JM were using the same radios, and the
    // per-tower added latency was higher than 1.4 µs, JM would offer
    // lower end-end latency."
    let asof = report::snapshot_date();
    let nln = report::network_of(eco(), "New Line Networks", asof);
    let jm = report::network_of(eco(), "Jefferson Microwave", asof);
    let o = hft_core::overhead::crossover_overhead_us(
        &nln,
        &jm,
        &corridor::CME,
        &corridor::EQUINIX_NY4,
    )
    .expect("JM has fewer towers, so a crossover exists");
    assert!(
        (o - 1.42).abs() < 0.1,
        "crossover at {o} µs, paper implies ~1.4 µs"
    );

    // Below the crossover the Table-1 order holds; above it, JM leads.
    let nets = vec![
        ("New Line Networks".to_string(), &nln),
        ("Jefferson Microwave".to_string(), &jm),
    ];
    let below =
        hft_core::overhead::rank_with_overhead(&nets, &corridor::CME, &corridor::EQUINIX_NY4, 1.0);
    assert_eq!(below[0].licensee, "New Line Networks");
    let above =
        hft_core::overhead::rank_with_overhead(&nets, &corridor::CME, &corridor::EQUINIX_NY4, 2.0);
    assert_eq!(above[0].licensee, "Jefferson Microwave");
}
