//! Golden-file regression test: the generator is fully deterministic in
//! its seed, so the flat-file encoding of the canonical corpus (seed
//! 2020) must match the committed snapshot byte for byte. Any change to
//! the generator, calibration, RNG streams, coordinate formatting or the
//! codec shows up here first.
//!
//! When a change is *intentional*, regenerate the snapshot:
//! `cargo run --release -p hft-bench --bin repro` and re-dump the head —
//! then re-verify EXPERIMENTS.md, since the published numbers may move.

use hftnetview::prelude::*;

#[test]
fn corpus_head_matches_golden_snapshot() {
    let eco = generate(&chicago_nj(), 2020);
    let text = hft_uls::flatfile::encode(eco.db.licenses());
    let head: String = text.lines().take(60).collect::<Vec<_>>().join("\n");
    let golden = include_str!("data/corpus_head.golden");
    assert_eq!(
        head,
        golden.trim_end(),
        "generator output drifted from the golden snapshot"
    );
}

#[test]
fn corpus_size_is_stable() {
    let eco = generate(&chicago_nj(), 2020);
    // The exact license count is part of the published dataset identity.
    assert_eq!(
        eco.db.len(),
        2801,
        "corpus size changed — update EXPERIMENTS.md if intentional"
    );
}
