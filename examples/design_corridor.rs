//! The §6 design takeaways, executed: synthesize corridor networks with
//! varying redundancy and link lengths, then measure them with the same
//! metrics the paper applies to the HFT incumbents — latency, APA,
//! disjoint-standby penalty, tower count, and annual availability from
//! the radio models.
//!
//! ```text
//! cargo run --release --example design_corridor
//! ```

use hft_core::corridor::{CME, EQUINIX_NY4};
use hft_core::design::{design_corridor, evaluate, DesignSpec};
use hft_radio::{link_annual_availability, LinkOutageModel, RainClimate};

fn annual_availability(net: &hft_core::Network) -> f64 {
    let climate = RainClimate::continental_temperate();
    // Worst-path proxy: product over the shortest route's links.
    let r = hft_core::route(net, &CME, &EQUINIX_NY4).expect("connected");
    r.mw_edges
        .iter()
        .map(|e| {
            let l = net.graph.edge(*e);
            let model = LinkOutageModel::typical(l.length_m / 1000.0, l.frequencies_ghz[0]);
            link_annual_availability(&model, &climate)
        })
        .product()
}

fn main() {
    println!("Designing CME->NY4 corridors per the paper's §6 lessons:\n");
    println!(
        "{:<34} {:>8} {:>8} {:>7} {:>8} {:>10} {:>10}",
        "design", "latency", "stretch", "APA", "towers", "standby", "route avail"
    );

    let candidates: Vec<(&str, DesignSpec)> = vec![
        (
            "bare chain (no redundancy)",
            DesignSpec {
                protected_fraction: 0.0,
                ..Default::default()
            },
        ),
        (
            "half protected",
            DesignSpec {
                protected_fraction: 0.5,
                ..Default::default()
            },
        ),
        ("fully protected, 6 GHz rails", DesignSpec::default()),
        (
            "fully protected, short rails",
            DesignSpec {
                rail_hop_km: 25.0,
                ..Default::default()
            },
        ),
        (
            "lean: 15 towers, long hops",
            DesignSpec {
                primary_towers: 15,
                protected_fraction: 0.0,
                ..Default::default()
            },
        ),
        (
            "dense: 40 towers, short hops",
            DesignSpec {
                primary_towers: 40,
                protected_fraction: 0.0,
                ..Default::default()
            },
        ),
    ];

    for (name, spec) in candidates {
        let net = design_corridor(&CME, &EQUINIX_NY4, &spec);
        let rep = evaluate(&net, &CME, &EQUINIX_NY4).expect("connected");
        let standby = rep
            .disjoint_standby_penalty_ms
            .map(|p| format!("+{:.0} µs", p * 1000.0))
            .unwrap_or_else(|| "none".into());
        println!(
            "{:<34} {:>7.4} {:>8.4} {:>6.0}% {:>8} {:>10} {:>9.4}%",
            name,
            rep.latency_ms,
            rep.stretch,
            rep.apa * 100.0,
            rep.towers,
            standby,
            annual_availability(&net) * 100.0,
        );
    }

    println!(
        "\nLessons made visible: redundancy buys APA (and a disjoint standby) at\n\
         roughly 1.4x the towers; short hops buy availability at the same price;\n\
         latency is indifferent — the corridor is straight either way."
    );
}
