//! The §2.2 data pipeline end-to-end: search the (simulated) ULS portal,
//! funnel to the shortlist, reconstruct a network at two dates, and
//! round-trip the corpus through the flat-file codec and a network
//! through the YAML dump.
//!
//! ```text
//! cargo run --release --example uls_pipeline
//! ```

use hft_uls::flatfile;
use hft_uls::scrape::{run_pipeline, ScrapeConfig};
use hftnetview::prelude::*;
use hftnetview::report;

fn main() -> std::io::Result<()> {
    let eco = generate(&chicago_nj(), 2020);
    let analysis = report::Analysis::new(&eco);

    // --- The four ULS search interfaces. ---
    let cme = corridor::CME.position();
    let near = eco.db.geographic_search(&cme, 10.0);
    println!(
        "geographic search (10 km around CME): {} licenses",
        near.len()
    );
    let mg_fxo = eco
        .db
        .site_search(&hft_uls::RadioService::MG, &hft_uls::StationClass::FXO);
    println!(
        "site search (MG/FXO):                 {} licenses",
        mg_fxo.len()
    );
    let nln = eco.db.licensee_search("New Line Networks");
    println!(
        "licensee search (New Line Networks):  {} licenses",
        nln.len()
    );
    let first = eco.db.license_detail(nln[0].id).expect("detail page");
    println!(
        "license detail {}: {} granted {}, {} path(s)",
        first.id,
        first.call_sign,
        first.grant_date,
        first.paths.len()
    );

    // --- The funnel. ---
    let (shortlist, funnel) = run_pipeline(&eco.db, &cme, &ScrapeConfig::default());
    println!(
        "\nfunnel: {} candidates -> {} MG/FXO -> {} shortlisted",
        funnel.geographic_candidates, funnel.service_filtered, funnel.shortlisted
    );
    println!("first five shortlisted: {:?}", &funnel.shortlist[..5]);
    let total_filings: usize = shortlist.iter().map(|(_, l)| l.len()).sum();
    println!("total filings across the shortlist: {total_filings}");

    // --- Reconstruction at two dates (the Fig. 3 pair). ---
    for date in [
        Date::new(2016, 1, 1).unwrap(),
        Date::new(2020, 4, 1).unwrap(),
    ] {
        let net = report::network_of(&analysis, "New Line Networks", date);
        println!(
            "\nNLN as of {date}: {} towers, {} links, {:.0} km of microwave",
            net.tower_count(),
            net.link_count(),
            net.total_link_km()
        );
    }

    // --- Flat-file round trip. ---
    std::fs::create_dir_all("out")?;
    let text = flatfile::encode(eco.db.licenses());
    std::fs::write("out/corpus.uls", &text)?;
    let back = flatfile::decode(&text).expect("own dialect parses");
    assert_eq!(back.len(), eco.db.len());
    println!(
        "\nflat file: {} licenses -> {:.1} MiB -> parsed back identically",
        back.len(),
        text.len() as f64 / (1024.0 * 1024.0)
    );

    // --- YAML dump of the 2020 network. ---
    let net = report::network_of(&analysis, "New Line Networks", report::snapshot_date());
    let yaml = hft_core::yaml::to_yaml(&net);
    std::fs::write("out/nln_2020.yaml", &yaml)?;
    let parsed = hft_core::yaml::from_yaml(&yaml).expect("own dialect parses");
    assert_eq!(parsed.tower_count(), net.tower_count());
    println!(
        "yaml dump: out/nln_2020.yaml ({} towers round-tripped)",
        parsed.tower_count()
    );
    Ok(())
}
