//! The longitudinal race (§4 of the paper): latency and license-count
//! trajectories for the five headline networks, 2013 → 2020, written out
//! as the Fig. 1 / Fig. 2 SVG charts plus CSV data.
//!
//! ```text
//! cargo run --release --example latency_race
//! ```

use hftnetview::prelude::*;
use hftnetview::report;

fn main() -> std::io::Result<()> {
    let eco = generate(&chicago_nj(), 2020);
    let analysis = report::Analysis::new(&eco);
    let series = report::evolution(&analysis);

    println!("CME->NY4 latency evolution (ms), January 1 samples (2020: April 1):");
    print!("{:<24}", "Licensee");
    for (d, _, _) in &series[0].points {
        print!(" {:>7}", d.year());
    }
    println!();
    for s in &series {
        print!("{:<24}", s.licensee);
        for (_, latency, _) in &s.points {
            match latency {
                Some(ms) => print!(" {:>7.4}", ms),
                None => print!(" {:>7}", "-"),
            }
        }
        println!();
    }

    println!("\nActive licenses:");
    for s in &series {
        print!("{:<24}", s.licensee);
        for (_, _, n) in &s.points {
            print!(" {:>7}", n);
        }
        println!();
    }

    // The headline observations of §4, asserted on the fly.
    let best_2013 = series
        .iter()
        .filter_map(|s| s.points[0].1)
        .fold(f64::INFINITY, f64::min);
    let best_2020 = series
        .iter()
        .filter_map(|s| s.points.last().unwrap().1)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nBest latency fell from {best_2013:.3} ms (2013) to {best_2020:.3} ms (2020); \
         the c-bound of 3.956 ms has still not been reached."
    );

    std::fs::create_dir_all("out")?;
    let (svg1, csv1) = report::fig1_render(&series);
    std::fs::write("out/fig1.svg", svg1)?;
    std::fs::write("out/fig1.csv", csv1.to_csv())?;
    let (svg2, csv2) = report::fig2_render(&series);
    std::fs::write("out/fig2.svg", svg2)?;
    std::fs::write("out/fig2.csv", csv2.to_csv())?;
    println!("wrote out/fig1.svg, out/fig1.csv, out/fig2.svg, out/fig2.csv");
    Ok(())
}
