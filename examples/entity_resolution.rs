//! The §6 future-work item, implemented: uncover networks that file
//! under multiple shell entities by testing which shortlisted licensees
//! have *complementary links* — filings that only form an end-to-end
//! path when merged (§2.4 lists this as a blind spot of the paper's
//! per-licensee methodology).
//!
//! The synthetic corpus hides one such network: a complete CME→NY4 chain
//! whose odd hops are filed by one shell and even hops by another.
//! Neither shell is connected on its own, so Table 1 never shows them —
//! exactly how the real blind spot behaves.
//!
//! ```text
//! cargo run --release --example entity_resolution
//! ```

use hftnetview::prelude::*;
use hftnetview::report;

fn main() {
    let eco = generate(&chicago_nj(), 2020);
    let analysis = report::Analysis::new(&eco);

    // Table 1 sees nine connected networks...
    let table1 = report::table1(&analysis);
    println!("Table 1 shows {} connected networks.", table1.len());

    // ...but the complementary-link scan over all 29 shortlisted
    // licensees finds filings that only work together.
    let candidates = report::entity_scan(&analysis);
    println!("\ncomplementary-link scan over the shortlist:");
    for c in &candidates {
        let fmt = |v: Option<f64>| {
            v.map(|x| format!("{x:.5} ms"))
                .unwrap_or_else(|| "not connected".into())
        };
        println!("  {} + {}", c.a, c.b);
        println!("    alone: {} / {}", fmt(c.a_alone_ms), fmt(c.b_alone_ms));
        println!(
            "    merged: {:.5} ms via {} shared towers",
            c.joint_latency_ms, c.shared_towers
        );
        if c.jointly_connected_only() {
            println!("    -> connected ONLY jointly: almost certainly one operator");
        }
    }
    assert!(
        candidates.iter().any(|c| c.jointly_connected_only()),
        "the hidden split-entity network must be discovered"
    );

    // Where would the merged entity have ranked?
    if let Some(c) = candidates.first() {
        let better_than = table1
            .iter()
            .filter(|r| r.latency_ms > c.joint_latency_ms)
            .count();
        println!(
            "\nmerged, {} + {} would rank #{} of {} in Table 1 at {:.5} ms",
            c.a,
            c.b,
            table1.len() - better_than + 1,
            table1.len() + 1,
            c.joint_latency_ms,
        );
    }
}
