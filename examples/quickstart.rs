//! Quickstart: generate the corridor ecosystem, run the paper's scrape
//! pipeline, and print the Table-1 leaderboard.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hftnetview::prelude::*;
use hftnetview::report;

fn main() {
    // 1. A deterministic license corpus standing in for the FCC ULS.
    let eco = generate(&chicago_nj(), 2020);
    let analysis = report::Analysis::new(&eco);
    println!(
        "generated {} licenses across {} licensees\n",
        eco.db.len(),
        eco.db.licensees().len()
    );

    // 2. The §2.2 funnel: geographic search -> MG/FXO filter -> ≥11 filings.
    let report_funnel = report::funnel(&analysis);
    print!("{}", report::funnel_render(&report_funnel));

    // 3. Reconstruct every network as of 2020-04-01 and rank them.
    let rows = report::table1(&analysis);
    let (text, _) = report::table1_render(&rows);
    print!("\n{text}");

    // 4. Zoom into the winner.
    let nln = report::network_of(&analysis, "New Line Networks", report::snapshot_date());
    let r = route(&nln, &corridor::CME, &corridor::EQUINIX_NY4).expect("NLN is connected");
    println!(
        "\nNew Line Networks: {} towers, {} links, {:.1} km of microwave;",
        nln.tower_count(),
        nln.link_count(),
        nln.total_link_km()
    );
    println!(
        "CME->NY4 route: {:.5} ms over {} towers ({:.2} km fiber tails), {:.4}x the c-bound",
        r.latency_ms,
        r.towers,
        r.fiber_m / 1000.0,
        r.stretch_vs_c(
            corridor::CME
                .position()
                .geodesic_distance_m(&corridor::EQUINIX_NY4.position())
        ),
    );
}
