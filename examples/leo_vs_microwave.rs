//! Fig 5, made quantitative: a Starlink-like LEO shell versus terrestrial
//! microwave versus fiber on the paper's three segments, plus a sweep
//! over segment length to find the crossover distance.
//!
//! ```text
//! cargo run --release --example leo_vs_microwave
//! ```

use hft_leo::{
    compare, fiber_latency_ms, mw_latency_ms, paper_segments, Constellation, GroundStation, Segment,
};

fn main() {
    let shell = Constellation::starlink_like();
    println!(
        "Constellation: {} planes x {} sats at {:.0} km, {}° inclination\n",
        shell.shell.planes,
        shell.shell.sats_per_plane,
        shell.shell.altitude_m / 1000.0,
        shell.shell.inclination_deg,
    );

    let rows = compare(&shell, &paper_segments(), 8);
    println!(
        "{:<25} {:>9} {:>9} {:>9} {:>9} {:>9}  winner",
        "Segment", "km", "c-bound", "MW", "fiber", "LEO"
    );
    for r in &rows {
        let fmt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<25} {:>9.0} {:>9.3} {:>9} {:>9.3} {:>9}  {}",
            r.name,
            r.geodesic_km,
            r.c_bound_ms,
            fmt(r.microwave_ms),
            r.fiber_ms,
            fmt(r.leo_ms),
            r.winner(),
        );
    }

    // Where does LEO start beating hypothetical terrestrial microwave?
    // Sweep eastward from Chicago at constant latitude.
    println!("\nLEO vs idealized MW by segment length (eastward from Chicago):");
    let origin = GroundStation::new("CHI", 41.7625, -88.1712).unwrap();
    for lon_offset in [10.0, 25.0, 40.0, 60.0, 90.0, 130.0] {
        let lon = -88.1712 + lon_offset;
        let lon = if lon > 180.0 { lon - 360.0 } else { lon };
        let dest = GroundStation::new("X", 41.7625, lon).unwrap();
        let seg = Segment {
            from: origin.clone(),
            to: dest.clone(),
            terrestrial_feasible: true,
        };
        let r = &compare(&shell, &[seg], 6)[0];
        let leo = r
            .leo_ms
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:>6.0} km: MW {:>8.3} ms, LEO {:>8} ms, fiber {:>8.3} ms -> {}",
            r.geodesic_km,
            r.microwave_ms.unwrap(),
            leo,
            r.fiber_ms,
            r.winner(),
        );
    }
    println!(
        "\nThe up/down overhead (~2x{:.0} km) keeps microwave ahead on land at any\n\
         distance; LEO's niche is where towers cannot stand — oceans (and fiber).",
        shell.shell.altitude_m / 1000.0
    );
    let _ = (mw_latency_ms(1.0), fiber_latency_ms(1.0));
}
