//! The §5 reliability story: why does Webline Holdings survive while
//! being microseconds slower than New Line Networks?
//!
//! Reproduces Table 3 (APA), Fig 4a (link lengths), Fig 4b (operating
//! frequencies), and then runs the weather Monte Carlo that the paper
//! only argues qualitatively.
//!
//! ```text
//! cargo run --release --example reliability
//! ```

use hft_radio::WeatherSampler;
use hftnetview::prelude::*;
use hftnetview::{report, weather};

fn main() {
    let eco = generate(&chicago_nj(), 2020);
    let analysis = report::Analysis::new(&eco);

    // Table 3: alternate path availability.
    let (text, _) = report::table3_render(&report::table3(&analysis));
    print!("{text}");

    // Fig 4a: link lengths on ≤5%-stretch paths.
    println!("\nLink lengths on low-latency CME->NY4 paths:");
    for (name, cdf) in report::fig4a(&analysis) {
        println!(
            "  {:<20} median {:>5.1} km  (p10 {:>5.1}, p90 {:>5.1}, n={})",
            name,
            cdf.median(),
            cdf.quantile(0.1),
            cdf.quantile(0.9),
            cdf.len()
        );
    }

    // Fig 4b: operating frequencies.
    println!("\nOperating frequencies (GHz):");
    for (name, cdf) in report::fig4b(&analysis) {
        println!(
            "  {:<20} median {:>6.2} GHz, {:>3.0}% under 7 GHz",
            name,
            cdf.median(),
            cdf.fraction_below(7.0) * 100.0
        );
    }

    // The payoff: conditional latency under convective-season weather.
    println!("\nConditional CME->NY4 latency across 5000 weather states:");
    println!(
        "  {:<20} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "Licensee", "clear", "p50", "p95", "p99", "avail"
    );
    let sampler = WeatherSampler::stormy_season();
    for name in ["New Line Networks", "Webline Holdings"] {
        let net = report::network_of(&analysis, name, report::snapshot_date());
        let o = weather::conditional_latency(
            &net,
            &corridor::CME,
            &corridor::EQUINIX_NY4,
            &sampler,
            5000,
            2020,
        )
        .expect("connected");
        let p = |v: f64| {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "down".into()
            }
        };
        println!(
            "  {:<20} {:>9} {:>9} {:>9} {:>9} {:>6.2}%",
            name,
            p(o.clear_ms),
            p(o.p50_ms),
            p(o.p95_ms),
            p(o.p99_ms),
            o.availability * 100.0
        );
    }
    // §5's closing thought: run both networks as a portfolio.
    let nln = report::network_of(&analysis, "New Line Networks", report::snapshot_date());
    let wh = report::network_of(&analysis, "Webline Holdings", report::snapshot_date());
    let combo = weather::portfolio_latency(
        &[&nln, &wh],
        &corridor::CME,
        &corridor::EQUINIX_NY4,
        &sampler,
        5000,
        2020,
    )
    .expect("portfolio connected");
    println!(
        "  {:<20} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>6.2}%",
        "NLN + WH portfolio",
        combo.clear_ms,
        combo.p50_ms,
        combo.p95_ms,
        combo.p99_ms,
        combo.availability * 100.0
    );
    println!(
        "\nIn fair weather NLN wins by ~10 µs; in the worst percentile of weather\n\
         states NLN is dark while WH still delivers — the §5 crossover. Running\n\
         both (as the paper suggests competitive firms do) gets NLN's median AND\n\
         WH's availability."
    );
}
