//! # hft-leo
//!
//! A low-Earth-orbit mega-constellation latency simulator for the
//! paper's Fig. 5 discussion (§6): can LEO constellations beat
//! terrestrial microwave or fiber on HFT-relevant segments?
//!
//! The paper's figure is a schematic; this crate makes it quantitative,
//! following the modeling of the cited HotNets'18 work:
//!
//! * a Walker-delta shell ([`Constellation`]) of circular orbits —
//!   defaults match Starlink's first shell (72 planes × 22 satellites,
//!   550 km, 53°);
//! * `+Grid` inter-satellite laser links (each satellite links to its
//!   in-plane neighbors and the same slot in adjacent planes), at `c`;
//! * ground-to-satellite visibility by minimum elevation angle;
//! * snapshot shortest-path latency between ground sites via Dijkstra
//!   ([`Constellation::latency_ms`]);
//! * side-by-side comparisons against idealized terrestrial microwave
//!   and fiber ([`compare`]).
//!
//! ```
//! use hft_leo::{Constellation, GroundStation};
//!
//! let shell = Constellation::starlink_like();
//! let chicago = GroundStation::new("CME", 41.7625, -88.1712).unwrap();
//! let ny = GroundStation::new("NY4", 40.7930, -74.0576).unwrap();
//! let lat = shell.latency_ms(&chicago, &ny, 0.0).unwrap();
//! // Up/down plus ISL hops: strictly worse than straight-line c.
//! assert!(lat > 3.96 && lat < 15.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod constellation;
mod orbit;

pub use compare::{compare, fiber_latency_ms, mw_latency_ms, paper_segments, Comparison, Segment};
pub use constellation::{Constellation, GroundStation, LatencyStats, LeoRoute};
pub use orbit::{OrbitalShellParams, SatellitePosition};
