//! Circular-orbit propagation for Walker shells.

use hft_geodesy::{Ecef, WGS84};

/// Standard gravitational parameter of the Earth, m³/s².
const MU_EARTH: f64 = 3.986_004_418e14;

/// Parameters of one Walker-delta orbital shell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitalShellParams {
    /// Number of orbital planes.
    pub planes: usize,
    /// Satellites per plane.
    pub sats_per_plane: usize,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Altitude above the (spherical-radius) Earth surface, meters.
    pub altitude_m: f64,
    /// Walker phasing factor `F` (inter-plane phase offset is
    /// `F × 360° / (planes × sats_per_plane)`).
    pub phase_factor: usize,
}

impl OrbitalShellParams {
    /// Orbital radius from the Earth's center, meters.
    pub fn radius_m(&self) -> f64 {
        WGS84.a + self.altitude_m
    }

    /// Mean motion, radians per second.
    pub fn mean_motion_rad_s(&self) -> f64 {
        (MU_EARTH / self.radius_m().powi(3)).sqrt()
    }

    /// Orbital period, seconds.
    pub fn period_s(&self) -> f64 {
        core::f64::consts::TAU / self.mean_motion_rad_s()
    }

    /// Total satellites in the shell.
    pub fn count(&self) -> usize {
        self.planes * self.sats_per_plane
    }
}

/// A satellite's instantaneous position (Earth-centered frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatellitePosition {
    /// Plane index, `0..planes`.
    pub plane: usize,
    /// Slot index within the plane, `0..sats_per_plane`.
    pub slot: usize,
    /// Position in the Earth-centered frame, meters.
    pub ecef: Ecef,
}

/// Propagate every satellite of the shell to time `t_s` (seconds from an
/// arbitrary epoch).
///
/// Orbits are ideal circles; positions are computed in an Earth-centered
/// inertial frame which we treat as Earth-fixed for snapshot latency
/// computations (ground stations are fixed at their epoch positions;
/// Earth rotation merely re-phases which satellites are overhead and does
/// not change the latency statistics of a symmetric shell).
pub fn propagate(shell: &OrbitalShellParams, t_s: f64) -> Vec<SatellitePosition> {
    let r = shell.radius_m();
    let n = shell.mean_motion_rad_s();
    let inc = shell.inclination_deg.to_radians();
    let (sin_inc, cos_inc) = inc.sin_cos();
    let total = shell.count() as f64;
    let mut out = Vec::with_capacity(shell.count());
    for plane in 0..shell.planes {
        // Walker delta: RAANs spread over the full 360°.
        let raan = core::f64::consts::TAU * plane as f64 / shell.planes as f64;
        let (sin_raan, cos_raan) = raan.sin_cos();
        for slot in 0..shell.sats_per_plane {
            let phase = core::f64::consts::TAU
                * (slot as f64 / shell.sats_per_plane as f64
                    + shell.phase_factor as f64 * plane as f64 / total);
            let theta = phase + n * t_s;
            let (sin_th, cos_th) = theta.sin_cos();
            // Position in the orbital plane, then rotate by inclination
            // (about x) and RAAN (about z).
            let x_orb = r * cos_th;
            let y_orb = r * sin_th;
            let x = x_orb * cos_raan - y_orb * cos_inc * sin_raan;
            let y = x_orb * sin_raan + y_orb * cos_inc * cos_raan;
            let z = y_orb * sin_inc;
            out.push(SatellitePosition {
                plane,
                slot,
                ecef: Ecef::new(x, y, z),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> OrbitalShellParams {
        OrbitalShellParams {
            planes: 72,
            sats_per_plane: 22,
            inclination_deg: 53.0,
            altitude_m: 550_000.0,
            phase_factor: 39,
        }
    }

    #[test]
    fn starlink_period_about_95_minutes() {
        let p = shell().period_s() / 60.0;
        assert!((95.0..97.0).contains(&p), "got {p} min");
    }

    #[test]
    fn all_satellites_at_orbital_radius() {
        let sats = propagate(&shell(), 0.0);
        assert_eq!(sats.len(), 72 * 22);
        let r = shell().radius_m();
        for s in &sats {
            assert!(
                (s.ecef.norm_m() - r).abs() < 1.0,
                "sat {}/{}",
                s.plane,
                s.slot
            );
        }
    }

    #[test]
    fn inclination_bounds_latitude() {
        let sats = propagate(&shell(), 1234.0);
        for s in &sats {
            let (geo, _) = s.ecef.to_geodetic();
            assert!(
                geo.lat_deg().abs() <= 53.5,
                "latitude {} exceeds inclination",
                geo.lat_deg()
            );
        }
    }

    #[test]
    fn motion_over_time() {
        let a = propagate(&shell(), 0.0);
        let b = propagate(&shell(), 60.0);
        // One minute at ~7.6 km/s ≈ 456 km of along-track motion.
        let d = a[0].ecef.distance_m(&b[0].ecef);
        assert!((d - 456_000.0).abs() < 20_000.0, "got {d}");
    }

    #[test]
    fn full_period_returns_home() {
        let p = shell().period_s();
        let a = propagate(&shell(), 0.0);
        let b = propagate(&shell(), p);
        let d = a[17].ecef.distance_m(&b[17].ecef);
        assert!(d < 1.0, "got {d}");
    }

    #[test]
    fn in_plane_neighbors_evenly_spaced() {
        let sats = propagate(&shell(), 0.0);
        let per = shell().sats_per_plane;
        let chord = |i: usize, j: usize| sats[i].ecef.distance_m(&sats[j].ecef);
        // Consecutive slots in plane 0.
        let d01 = chord(0, 1);
        let d12 = chord(1, 2);
        assert!((d01 - d12).abs() < 1.0);
        // Expected chord for 22 evenly spaced satellites.
        let expect = 2.0 * shell().radius_m() * (core::f64::consts::PI / per as f64).sin();
        assert!((d01 - expect).abs() < 1.0, "got {d01} want {expect}");
    }
}
