//! Fig. 5 made quantitative: LEO vs terrestrial microwave vs fiber on
//! HFT-relevant segments.

use crate::constellation::{Constellation, GroundStation};
use hft_geodesy::{latency_seconds, Medium};

/// A corridor segment to compare technologies on.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Origin site.
    pub from: GroundStation,
    /// Destination site.
    pub to: GroundStation,
    /// Whether a terrestrial line-of-sight microwave chain is buildable
    /// (false for transoceanic segments).
    pub terrestrial_feasible: bool,
}

/// One-way latency estimates (ms) for a segment.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Segment description `FROM-TO`.
    pub name: String,
    /// Geodesic distance, km.
    pub geodesic_km: f64,
    /// The c-latency lower bound along the geodesic, ms.
    pub c_bound_ms: f64,
    /// Best-case terrestrial microwave (geodesic × small stretch at `c`),
    /// `None` when infeasible (ocean in the way).
    pub microwave_ms: Option<f64>,
    /// Great-circle fiber with a typical route stretch, at `2c/3`.
    pub fiber_ms: f64,
    /// Mean LEO latency over constellation phases, `None` if unroutable.
    pub leo_ms: Option<f64>,
}

impl Comparison {
    /// The winning technology's name.
    pub fn winner(&self) -> &'static str {
        let mw = self.microwave_ms.unwrap_or(f64::INFINITY);
        let leo = self.leo_ms.unwrap_or(f64::INFINITY);
        if mw <= leo && mw <= self.fiber_ms {
            "microwave"
        } else if leo <= self.fiber_ms {
            "LEO"
        } else {
            "fiber"
        }
    }
}

/// Path stretch of a mature terrestrial HFT microwave network relative
/// to the geodesic (the Table 1 leaders sit at ~1.0014).
pub const MW_STRETCH: f64 = 1.0015;
/// Route stretch of good long-haul fiber relative to the geodesic
/// (terrestrial fiber rights-of-way are circuitous; submarine cables are
/// straighter — 1.2 is a *charitable* blended figure).
pub const FIBER_STRETCH: f64 = 1.2;

/// Idealized terrestrial-microwave one-way latency, ms.
pub fn mw_latency_ms(geodesic_m: f64) -> f64 {
    latency_seconds(geodesic_m * MW_STRETCH, Medium::Air) * 1e3
}

/// Idealized fiber one-way latency, ms.
pub fn fiber_latency_ms(geodesic_m: f64) -> f64 {
    latency_seconds(geodesic_m * FIBER_STRETCH, Medium::Fiber) * 1e3
}

/// Compare technologies on each segment (LEO averaged over `samples`
/// constellation phases).
pub fn compare(
    constellation: &Constellation,
    segments: &[Segment],
    samples: usize,
) -> Vec<Comparison> {
    segments
        .iter()
        .map(|seg| {
            let geodesic_m = seg.from.position.geodesic_distance_m(&seg.to.position);
            Comparison {
                name: format!("{}-{}", seg.from.name, seg.to.name),
                geodesic_km: geodesic_m / 1000.0,
                c_bound_ms: latency_seconds(geodesic_m, Medium::Air) * 1e3,
                microwave_ms: seg.terrestrial_feasible.then(|| mw_latency_ms(geodesic_m)),
                fiber_ms: fiber_latency_ms(geodesic_m),
                leo_ms: constellation.mean_latency_ms(&seg.from, &seg.to, samples),
            }
        })
        .collect()
}

/// The three segments discussed in §6 of the paper.
pub fn paper_segments() -> Vec<Segment> {
    let gs = |name: &str, lat: f64, lon: f64| GroundStation::new(name, lat, lon).expect("static");
    vec![
        Segment {
            from: gs("CME", 41.7625, -88.171233),
            to: gs("NY4", 40.7930, -74.0576),
            terrestrial_feasible: true,
        },
        Segment {
            from: gs("Frankfurt", 50.1109, 8.6821),
            to: gs("WashingtonDC", 38.9072, -77.0369),
            terrestrial_feasible: false,
        },
        Segment {
            from: gs("Tokyo", 35.6762, 139.6503),
            to: gs("NewYork", 40.7128, -74.0060),
            terrestrial_feasible: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_holds() {
        let c = Constellation::starlink_like();
        let results = compare(&c, &paper_segments(), 6);
        assert_eq!(results.len(), 3);

        // Chicago–NJ: terrestrial microwave wins (Fig. 5's message).
        let chi = &results[0];
        assert_eq!(chi.winner(), "microwave");
        let mw = chi.microwave_ms.unwrap();
        let leo = chi.leo_ms.expect("CONUS is covered");
        assert!(mw < leo, "mw {mw} vs leo {leo}");

        // Frankfurt–DC: LEO beats fiber (the HotNets'18 result the paper
        // cites).
        let fra = &results[1];
        assert_eq!(fra.winner(), "LEO");
        assert!(fra.leo_ms.unwrap() < fra.fiber_ms);

        // Tokyo–NY: same story on the longer segment.
        let tyo = &results[2];
        assert_eq!(tyo.winner(), "LEO");
        assert!(tyo.leo_ms.unwrap() < tyo.fiber_ms);
    }

    #[test]
    fn nothing_beats_c_bound() {
        let c = Constellation::starlink_like();
        for r in compare(&c, &paper_segments(), 4) {
            if let Some(mw) = r.microwave_ms {
                assert!(mw >= r.c_bound_ms);
            }
            if let Some(leo) = r.leo_ms {
                assert!(leo >= r.c_bound_ms);
            }
            assert!(r.fiber_ms >= r.c_bound_ms);
        }
    }

    #[test]
    fn fiber_slower_than_mw_everywhere() {
        for km in [500.0, 1186.0, 6000.0, 10_000.0] {
            let m = km * 1000.0;
            assert!(fiber_latency_ms(m) > mw_latency_ms(m) * 1.7);
        }
    }

    #[test]
    fn chicago_nj_mw_matches_table1_scale() {
        // 1186 km with the leaders' stretch lands at ~3.96 ms.
        let ms = mw_latency_ms(1_186_000.0);
        assert!((ms - 3.962).abs() < 0.002, "got {ms}");
    }
}
