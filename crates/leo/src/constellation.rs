//! Constellation graph: +Grid ISLs, ground visibility, snapshot routing.

use crate::orbit::{propagate, OrbitalShellParams, SatellitePosition};
use hft_geodesy::{CoordError, Ecef, LatLon, C_VACUUM_M_PER_S};
use hft_netgraph::{dijkstra, Graph, NodeId};

/// A ground site participating in the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundStation {
    /// Short name for reports.
    pub name: String,
    /// Position.
    pub position: LatLon,
}

impl GroundStation {
    /// Construct from decimal-degree coordinates.
    pub fn new(name: &str, lat_deg: f64, lon_deg: f64) -> Result<GroundStation, CoordError> {
        Ok(GroundStation {
            name: name.to_string(),
            position: LatLon::new(lat_deg, lon_deg)?,
        })
    }
}

/// A LEO shell with routing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constellation {
    /// Orbital shell geometry.
    pub shell: OrbitalShellParams,
    /// Minimum elevation angle for a usable ground-satellite link, degrees.
    pub min_elevation_deg: f64,
}

impl Constellation {
    /// The Starlink first-shell work-alike used in the Fig. 5 analysis:
    /// 72 planes × 22 satellites at 550 km, 53° inclination, 25° minimum
    /// elevation.
    pub fn starlink_like() -> Constellation {
        Constellation {
            shell: OrbitalShellParams {
                planes: 72,
                sats_per_plane: 22,
                inclination_deg: 53.0,
                altitude_m: 550_000.0,
                phase_factor: 39,
            },
            min_elevation_deg: 25.0,
        }
    }

    /// Maximum slant range at the minimum elevation angle, meters
    /// (law-of-cosines on the Earth-center / ground / satellite triangle).
    pub fn max_slant_range_m(&self) -> f64 {
        let re = hft_geodesy::WGS84.a;
        let rs = self.shell.radius_m();
        let e = self.min_elevation_deg.to_radians();
        // Slant range s solves s² + 2·s·re·sin(e) + re² − rs² = 0.
        let b = re * e.sin();
        (b * b + rs * rs - re * re).sqrt() - b
    }

    /// Snapshot satellite positions at time `t_s`.
    pub fn satellites_at(&self, t_s: f64) -> Vec<SatellitePosition> {
        propagate(&self.shell, t_s)
    }

    /// One-way latency (ms) between two ground stations through the
    /// constellation at snapshot time `t_s`: up/down links plus `+Grid`
    /// ISLs, all at `c`. `None` when either station sees no satellite.
    pub fn latency_ms(&self, a: &GroundStation, b: &GroundStation, t_s: f64) -> Option<f64> {
        let route = self.route(a, b, t_s)?;
        Some(route.latency_ms)
    }

    /// Full route information between two ground stations.
    pub fn route(&self, a: &GroundStation, b: &GroundStation, t_s: f64) -> Option<LeoRoute> {
        let sats = self.satellites_at(t_s);
        let per = self.shell.sats_per_plane;
        let planes = self.shell.planes;
        let mut graph: Graph<(), f64> = Graph::new();
        // Satellite nodes, indexed plane*per + slot.
        let sat_nodes: Vec<NodeId> = (0..sats.len()).map(|_| graph.add_node(())).collect();
        // +Grid ISLs: in-plane ring + same-slot link to the next plane.
        for (i, s) in sats.iter().enumerate() {
            let next_in_plane = s.plane * per + (s.slot + 1) % per;
            graph.add_edge(sat_nodes[i], sat_nodes[next_in_plane], {
                sats[i].ecef.distance_m(&sats[next_in_plane].ecef)
            });
            let next_plane = ((s.plane + 1) % planes) * per + s.slot;
            graph.add_edge(sat_nodes[i], sat_nodes[next_plane], {
                sats[i].ecef.distance_m(&sats[next_plane].ecef)
            });
        }
        // Ground nodes + visibility edges.
        let max_slant = self.max_slant_range_m();
        let ground_a = graph.add_node(());
        let ground_b = graph.add_node(());
        let mut up_a = 0usize;
        let mut up_b = 0usize;
        for (gs, gnode, count) in [(a, ground_a, &mut up_a), (b, ground_b, &mut up_b)] {
            let e = Ecef::from_geodetic(&gs.position, 0.0);
            for (i, s) in sats.iter().enumerate() {
                let slant = e.distance_m(&s.ecef);
                if slant <= max_slant {
                    graph.add_edge(gnode, sat_nodes[i], slant);
                    *count += 1;
                }
            }
        }
        if up_a == 0 || up_b == 0 {
            return None;
        }
        let sp = dijkstra(&graph, ground_a, |_, w| *w, |_| true);
        let dist_m = sp.distance(ground_b)?;
        let hops = sp.path_edges(ground_b)?.len();
        Some(LeoRoute {
            latency_ms: dist_m / C_VACUUM_M_PER_S * 1e3,
            path_m: dist_m,
            isl_hops: hops.saturating_sub(2),
            visible_from_a: up_a,
            visible_from_b: up_b,
        })
    }

    /// Average latency over `samples` snapshots spread across one orbital
    /// period — smooths out constellation phase luck. `None` if any
    /// snapshot is unroutable.
    pub fn mean_latency_ms(
        &self,
        a: &GroundStation,
        b: &GroundStation,
        samples: usize,
    ) -> Option<f64> {
        self.latency_stats(a, b, samples).map(|s| s.mean_ms)
    }

    /// Latency statistics across constellation phases. Unlike a fixed
    /// terrestrial chain, a LEO path's length *changes as the satellites
    /// move* — jitter that HFT applications care about as much as the
    /// mean. `None` if any snapshot is unroutable.
    pub fn latency_stats(
        &self,
        a: &GroundStation,
        b: &GroundStation,
        samples: usize,
    ) -> Option<LatencyStats> {
        if samples == 0 {
            return None;
        }
        let period = self.shell.period_s();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut total = 0.0;
        for k in 0..samples {
            let ms = self.latency_ms(a, b, period * k as f64 / samples as f64)?;
            min = min.min(ms);
            max = max.max(ms);
            total += ms;
        }
        Some(LatencyStats {
            min_ms: min,
            mean_ms: total / samples as f64,
            max_ms: max,
        })
    }
}

/// Latency spread across constellation phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Best phase, ms.
    pub min_ms: f64,
    /// Mean over phases, ms.
    pub mean_ms: f64,
    /// Worst phase, ms.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Peak-to-peak jitter, ms.
    pub fn jitter_ms(&self) -> f64 {
        self.max_ms - self.min_ms
    }
}

/// A routed path through the constellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeoRoute {
    /// One-way latency, ms.
    pub latency_ms: f64,
    /// Total path length (up + ISLs + down), meters.
    pub path_m: f64,
    /// Number of inter-satellite hops.
    pub isl_hops: usize,
    /// Satellites visible from the origin.
    pub visible_from_a: usize,
    /// Satellites visible from the destination.
    pub visible_from_b: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::{latency_seconds, Medium};

    fn gs(name: &str, lat: f64, lon: f64) -> GroundStation {
        GroundStation::new(name, lat, lon).unwrap()
    }

    #[test]
    fn slant_range_at_25_degrees() {
        let c = Constellation::starlink_like();
        let s = c.max_slant_range_m() / 1000.0;
        // 550 km shell at 25° elevation: ~1120 km slant.
        assert!((1000.0..1300.0).contains(&s), "got {s}");
    }

    #[test]
    fn midwest_sees_many_satellites() {
        let c = Constellation::starlink_like();
        let route = c
            .route(
                &gs("CME", 41.7625, -88.1712),
                &gs("NY4", 40.7930, -74.0576),
                0.0,
            )
            .expect("routable");
        assert!(route.visible_from_a >= 3, "got {}", route.visible_from_a);
        assert!(route.visible_from_b >= 3);
    }

    #[test]
    fn latency_beats_nothing_physical() {
        let c = Constellation::starlink_like();
        let a = gs("CME", 41.7625, -88.1712);
        let b = gs("NY4", 40.7930, -74.0576);
        let geodesic = a.position.geodesic_distance_m(&b.position);
        let bound_ms = latency_seconds(geodesic, Medium::Air) * 1e3;
        let lat = c.latency_ms(&a, &b, 0.0).unwrap();
        assert!(
            lat > bound_ms,
            "satellite path cannot beat the surface straight line"
        );
    }

    #[test]
    fn chicago_nj_overhead_is_large() {
        // The Fig. 5 claim: up/down overhead makes LEO slower than MW on
        // a ~1200 km land corridor.
        let c = Constellation::starlink_like();
        let a = gs("CME", 41.7625, -88.1712);
        let b = gs("NY4", 40.7930, -74.0576);
        let lat = c.mean_latency_ms(&a, &b, 8).unwrap();
        // MW gets ~3.96 ms; LEO must pay ≥ 2×550 km of altitude.
        assert!(lat > 3.956 + 2.0 * 550.0 / 299_792.458, "got {lat}");
    }

    #[test]
    fn transatlantic_beats_fiber() {
        let c = Constellation::starlink_like();
        let fra = gs("FRA", 50.1109, 8.6821);
        let dc = gs("DC", 38.9072, -77.0369);
        let lat = c
            .mean_latency_ms(&fra, &dc, 8)
            .expect("transatlantic routable");
        let geodesic = fra.position.geodesic_distance_m(&dc.position);
        // Idealized straight-line fiber at 2c/3.
        let fiber_ms = latency_seconds(geodesic, Medium::Fiber) * 1e3;
        assert!(
            lat < fiber_ms,
            "LEO {lat} must beat even straight fiber {fiber_ms}"
        );
    }

    #[test]
    fn high_latitude_unroutable() {
        // 53°-inclination shell leaves the poles uncovered at 25° elevation.
        let c = Constellation::starlink_like();
        let pole = gs("North Pole", 89.0, 0.0);
        let ny = gs("NY", 40.79, -74.06);
        assert!(c.route(&pole, &ny, 0.0).is_none());
    }

    #[test]
    fn deterministic_snapshot() {
        let c = Constellation::starlink_like();
        let a = gs("A", 48.0, 11.0);
        let b = gs("B", 35.6, 139.7);
        assert_eq!(c.latency_ms(&a, &b, 100.0), c.latency_ms(&a, &b, 100.0));
    }

    #[test]
    fn latency_jitter_is_material() {
        // A LEO path's latency varies with constellation phase — unlike a
        // terrestrial chain, whose towers do not move. For HFT this
        // jitter is a first-class cost.
        let c = Constellation::starlink_like();
        let a = gs("CME", 41.7625, -88.1712);
        let b = gs("NY4", 40.7930, -74.0576);
        let stats = c.latency_stats(&a, &b, 12).unwrap();
        assert!(stats.min_ms <= stats.mean_ms && stats.mean_ms <= stats.max_ms);
        assert!(stats.jitter_ms() > 0.05, "phases differ: {:?}", stats);
        assert!(stats.jitter_ms() < 5.0, "but not absurdly: {:?}", stats);
        assert!(c.latency_stats(&a, &b, 0).is_none());
    }

    #[test]
    fn longer_segments_have_more_isl_hops() {
        let c = Constellation::starlink_like();
        let chicago = gs("CHI", 41.76, -88.17);
        let nj = gs("NJ", 40.79, -74.06);
        let tokyo = gs("TYO", 35.68, 139.69);
        let short = c.route(&chicago, &nj, 0.0).unwrap();
        let long = c.route(&chicago, &tokyo, 0.0).unwrap();
        assert!(long.isl_hops > short.isl_hops);
        assert!(long.latency_ms > short.latency_ms);
    }
}
