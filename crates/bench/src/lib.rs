//! # hft-bench
//!
//! Benchmark harness for the workspace. The crate itself is thin: the
//! interesting contents are
//!
//! * `benches/paper.rs` — one Criterion benchmark per table and figure
//!   of the paper (E1–E10 in `DESIGN.md`), timing the full analysis
//!   pipeline behind each artifact on the pre-generated corpus;
//! * `benches/substrates.rs` — micro-benchmarks and ablations for the
//!   substrate design choices (Vincenty vs haversine, potential-pruned
//!   path enumeration vs naive DFS, codec throughput, Dijkstra);
//! * `src/bin/repro.rs` — the reproduction binary: regenerates every
//!   table/figure, prints paper-vs-measured deltas, and writes the
//!   artifacts consumed by `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

/// The ecosystem seed used for all published numbers.
pub const REPRO_SEED: u64 = 2020;
