//! `raceload` — the latency-race acceptance harness: serve a sharded
//! corpus behind a [`hft_serve::ShardRouter`] fleet and hammer it with
//! repeated [`Request::Race`] / [`Request::StretchSweep`] queries over
//! *both* wire protocols, byte-verifying every answer against a direct
//! single-corpus [`hft_serve::Service`] over the same corpus. Writes
//! `BENCH_race.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p hft-bench --bin raceload
//! cargo run --release -p hft-bench --bin raceload -- --seconds 1 --shards 3
//! ```
//!
//! The workload is deliberately repetitive: a handful of distinct
//! (licensee, pair, samples, seed) races asked over and over, which is
//! the race engine's design point — the §5 weather Monte Carlo runs
//! once per distinct key and every repeat is a cache hit. The harness
//! snapshots the `race.mc_cache{outcome=...}` counters around the
//! serving window and fails unless the hit rate clears 80%, alongside
//! the hard failure on any byte mismatch. Latency percentiles are
//! reported per protocol so the JSON-vs-binary codec gap on the
//! race-heavy mix is measured in the same run.

use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate};
use hft_ingest::ShardedStore;
use hft_obs::HistogramShard;
use hft_serve::api::{Request, Response};
use hft_serve::{Client, Proto, ServeConfig, Server, Service, ShardRouter};
use hft_time::Date;
use hft_uls::shard::ShardStrategy;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

struct Args {
    seconds: f64,
    shards: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        seconds: 2.0,
        shards: 2,
        seed: REPRO_SEED,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--seconds" => {
                parsed.seconds = need("--seconds")?
                    .parse()
                    .map_err(|_| "bad --seconds".to_string())?
            }
            "--shards" => {
                parsed.shards = need("--shards")?
                    .parse()
                    .map_err(|_| "bad --shards".to_string())?
            }
            "--seed" => {
                parsed.seed = need("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--out" => parsed.out = Some(need("--out")?),
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: raceload [--seconds S] [--shards N] \
                     [--seed N] [--out PATH]"
                ))
            }
        }
    }
    if parsed.shards == 0 {
        return Err("--shards must be positive".into());
    }
    Ok(parsed)
}

/// The race mix: every licensee races every corridor pair with the same
/// (samples, seed), so the distinct Monte-Carlo population is small and
/// the serving window is dominated by cache hits. One stretch sweep per
/// licensee rides along to exercise the multi-pair panorama path.
fn workload(licensees: &[String]) -> Vec<Request> {
    let d2020 = Date::new(2020, 4, 1).unwrap();
    let pairs = [("CME", "NY4"), ("CME", "NYSE"), ("CME", "NASDAQ")];
    let mut distinct = Vec::new();
    for name in licensees {
        for (from, to) in pairs {
            distinct.push(Request::Race {
                licensee: name.clone(),
                date: d2020,
                from: from.into(),
                to: to.into(),
                constellation: "starlink".into(),
                samples: 20_000,
                seed: 7,
            });
        }
        distinct.push(Request::StretchSweep {
            licensee: name.clone(),
            date: d2020,
            constellation: "starlink".into(),
        });
    }
    // Repeat the distinct population so even a short serving window is
    // repeats-heavy; the timed loops then cycle the mix indefinitely.
    let mut mix = Vec::new();
    for i in 0..distinct.len() * 4 {
        mix.push(distinct[i % distinct.len()].clone());
    }
    mix
}

fn connect_retry(addr: &SocketAddr, proto: Proto, patience: Duration) -> Result<Client, String> {
    let deadline = Instant::now() + patience;
    loop {
        match Client::connect_with(addr, proto) {
            Ok(client) => return Ok(client),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("could not connect to {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
}

#[derive(Default)]
struct ProtoReport {
    completed: u64,
    overloaded_retries: u64,
    wrong: u64,
    first_mismatch: Option<String>,
    latencies: HistogramShard,
    elapsed_s: f64,
}

impl ProtoReport {
    fn rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        self.latencies.snapshot().percentile(q) as f64 / 1e6
    }

    fn max_ms(&self) -> f64 {
        self.latencies.snapshot().max as f64 / 1e6
    }
}

/// One serial client over one protocol: cycle the mix until the
/// deadline, byte-comparing every decoded answer (re-encoded with the
/// canonical JSON codec) against the in-process reference — the
/// verification is wire-format independent, so a wrong answer cannot
/// hide behind the binary codec.
fn drive(
    addr: &SocketAddr,
    proto: Proto,
    mix: &[Request],
    expected: &[Vec<u8>],
    seconds: f64,
) -> Result<ProtoReport, String> {
    let mut client = connect_retry(addr, proto, Duration::from_secs(180))?;
    let mut report = ProtoReport::default();
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(seconds);
    let mut next = 0usize;
    while Instant::now() < deadline {
        let idx = next;
        next = (next + 1) % mix.len();
        let sent = Instant::now();
        let response = client
            .call(&mix[idx])
            .map_err(|e| format!("raceload IO: {e}"))?;
        if response == Response::Overloaded {
            report.overloaded_retries += 1;
            continue;
        }
        report.latencies.record(sent.elapsed().as_nanos() as u64);
        report.completed += 1;
        let got = response.encode();
        if got != expected[idx] {
            report.wrong += 1;
            if report.first_mismatch.is_none() {
                report.first_mismatch = Some(format!(
                    "[{}] request {:?}\n  want {}\n  got  {}",
                    proto.name(),
                    mix[idx],
                    String::from_utf8_lossy(&expected[idx]),
                    String::from_utf8_lossy(&got),
                ));
            }
        }
    }
    report.elapsed_s = started.elapsed().as_secs_f64();
    Ok(report)
}

fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    eprintln!("generating corpus (seed {})...", args.seed);
    let eco = generate(&chicago_nj(), args.seed);
    let mut licensees = eco.connected_2020.clone();
    licensees.sort();
    licensees.truncate(3);
    if licensees.is_empty() {
        return Err("corpus has no connected 2020 licensees".into());
    }
    let mix = workload(&licensees);

    // Ground truth: the same requests answered by a direct in-process
    // single-corpus service. Computing these warms the *reference*
    // engine's caches; the fleet's counters are measured from a snapshot
    // taken afterwards so the reference run never inflates the hit rate.
    eprintln!("computing {} expected answers locally...", mix.len());
    let reference = Service::new(&eco.db);
    let expected: Vec<Vec<u8>> = mix.iter().map(|r| reference.handle(r).encode()).collect();

    let fleet = ShardedStore::seeded(&eco.db, args.shards, ShardStrategy::LicenseeHash, None);
    let router = ShardRouter::over(&fleet);
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 8,
        queue_depth: 64,
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "fleet n={} (licensee-hash): serving {} distinct race queries on {addr}...",
        args.shards,
        mix.len() / 4,
    );

    let hit_name = hft_obs::registry::labeled("race.mc_cache", "outcome", "hit");
    let miss_name = hft_obs::registry::labeled("race.mc_cache", "outcome", "miss");
    let before = hft_obs::global().snapshot();
    let reports = std::thread::scope(|scope| {
        let server_handle = scope.spawn(|| server.run_with(&router));
        let phases = || -> Result<Vec<(Proto, ProtoReport)>, String> {
            // Warm pass: every distinct request once, so the timed
            // windows measure the cached steady state on a warm fleet.
            let mut warm = connect_retry(&addr, Proto::Json, Duration::from_secs(180))?;
            for request in &mix[..mix.len() / 4] {
                loop {
                    let response = warm.call(request).map_err(|e| format!("warmup: {e}"))?;
                    if response != Response::Overloaded {
                        break;
                    }
                }
            }
            let mut reports = Vec::new();
            for proto in [Proto::Json, Proto::Binary] {
                eprintln!("[{}] racing for {:.1}s...", proto.name(), args.seconds);
                reports.push((proto, drive(&addr, proto, &mix, &expected, args.seconds)?));
            }
            Ok(reports)
        };
        let reports = phases();
        let mut c = connect_retry(&addr, Proto::Json, Duration::from_secs(30))?;
        let ack = c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
        if ack != Response::ShuttingDown {
            return Err(format!("shutdown not acknowledged: {ack:?}"));
        }
        server_handle
            .join()
            .expect("server thread")
            .map_err(|e| e.to_string())?;
        reports
    })?;
    let after = hft_obs::global().snapshot();
    let delta = hft_obs::registry::delta(&before, &after);
    let (hits, misses) = (delta.counter(&hit_name), delta.counter(&miss_name));
    let mc_total = hits + misses;
    let hit_rate = if mc_total > 0 {
        hits as f64 / mc_total as f64
    } else {
        0.0
    };

    for (proto, r) in &reports {
        println!(
            "{:<4} {:>8} requests  {:>9.0} rps  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  \
             max {:.3} ms  ({} overloaded retries, {} wrong)",
            proto.name(),
            r.completed,
            r.rps(),
            r.percentile_ms(0.50),
            r.percentile_ms(0.90),
            r.percentile_ms(0.99),
            r.max_ms(),
            r.overloaded_retries,
            r.wrong,
        );
    }
    println!(
        "mc cache: {hits} hits / {misses} misses = {:.1}% hit rate",
        hit_rate * 100.0
    );

    let runs: Vec<String> = reports
        .iter()
        .map(|(proto, r)| {
            format!(
                "{{\"proto\": \"{}\", \"requests\": {}, \"seconds\": {}, \"rps\": {}, \
                 \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}, \
                 \"overloaded_retries\": {}, \"wrong_answers\": {}}}",
                proto.name(),
                r.completed,
                fmt(r.elapsed_s),
                fmt(r.rps()),
                fmt(r.percentile_ms(0.50)),
                fmt(r.percentile_ms(0.90)),
                fmt(r.percentile_ms(0.99)),
                fmt(r.max_ms()),
                r.overloaded_retries,
                r.wrong,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"workload\": {{\"distinct_requests\": {}, \"pairs\": 3, \"licensees\": {}, \
         \"seed\": {}}},\n\"shards\": {},\n\"runs\": [\n  {}\n],\n\"mc_cache\": \
         {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}\n}}\n",
        mix.len() / 4,
        licensees.len(),
        args.seed,
        args.shards,
        runs.join(",\n  "),
        hits,
        misses,
        fmt(hit_rate),
    );
    let path = args
        .out
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_race.json").into());
    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");

    let wrong_total: u64 = reports.iter().map(|(_, r)| r.wrong).sum();
    if wrong_total > 0 {
        let detail = reports
            .iter()
            .find_map(|(_, r)| r.first_mismatch.clone())
            .unwrap_or_default();
        return Err(format!(
            "race answers through the shard router diverge from the single-corpus \
             reference:\n{detail}"
        ));
    }
    if reports.iter().any(|(_, r)| r.completed == 0) {
        return Err("a protocol phase completed zero requests".into());
    }
    if mc_total == 0 {
        return Err("no weather Monte Carlo ran — the corpus has no microwave routes?".into());
    }
    if hit_rate <= 0.80 {
        return Err(format!(
            "mc cache hit rate {:.1}% below the 80% acceptance floor on a repeats-heavy mix",
            hit_rate * 100.0
        ));
    }
    Ok(())
}
