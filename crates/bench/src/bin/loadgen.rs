//! `loadgen` — the hft-serve load harness: replay a mixed analysis
//! workload against a running server (or a self-hosted one) at
//! configurable concurrency, verify every answer byte-for-byte against
//! direct `AnalysisSession` computation, and write latency percentiles +
//! throughput to `BENCH_serve.json` at the workspace root.
//!
//! ```text
//! # self-hosted (binds its own server on a free port):
//! cargo run --release -p hft-bench --bin loadgen
//!
//! # full protocol/io matrix (json/bin x threaded/evented):
//! cargo run --release -p hft-bench --bin loadgen -- --matrix
//!
//! # against an external `hftnetview serve` (seeds must match):
//! cargo run --release -p hft-bench --bin loadgen -- \
//!     --connect 127.0.0.1:4710 --seconds 1 --concurrency 4 --shutdown-server
//! ```
//!
//! Two timed phases over the same workload: a single-threaded serial
//! client loop (one request in flight, ever), then the concurrent phase
//! (`--concurrency` connections, `--window` pipelined requests each).
//! The speedup between them is what the serving layer buys: batched
//! syscalls, back-to-back worker dispatch, and single-flight coalescing
//! of identical in-flight computations (weather Monte Carlo requests are
//! not session-cached, so the serial loop pays them every time while
//! concurrent duplicates share one evaluation).
//!
//! `--proto bin` negotiates the compact binary codec over the same
//! frames; verification still byte-compares the *decoded* response
//! re-encoded with the canonical JSON codec, so a wrong answer cannot
//! hide behind a different wire format. `--matrix` self-hosts a fresh
//! server per combo and reports all four (proto, io) cells plus the
//! speedup of bin/evented over the json/threaded baseline measured in
//! the same run at the same settings.
//!
//! `Overloaded` rejections are retried (and counted): backpressure is
//! a protocol answer, not an error. A byte mismatch is a hard failure —
//! the harness exits non-zero. Any latency bucket whose p90/p50 ratio
//! exceeds 10x gets a loud `TAIL ALERT` line so queueing regressions
//! fail visibly in CI smoke output.

use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate};
use hft_obs::{HistogramShard, RegistrySnapshot};
use hft_serve::api::{Request, Response};
use hft_serve::{Client, IoMode, Proto, ServeConfig, Server, Service};
use hft_time::Date;
use hft_uls::shard::shard_of_licensee;
use std::collections::VecDeque;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

struct Args {
    connect: Option<String>,
    seconds: f64,
    concurrency: usize,
    window: usize,
    seed: u64,
    shutdown_server: bool,
    out: Option<String>,
    shards: usize,
    proto: Proto,
    io: IoMode,
    matrix: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        connect: None,
        seconds: 5.0,
        concurrency: 32,
        window: 8,
        seed: REPRO_SEED,
        shutdown_server: false,
        out: None,
        shards: 0,
        proto: Proto::Json,
        io: IoMode::default(),
        matrix: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--connect" => parsed.connect = Some(need("--connect")?),
            "--seconds" => {
                parsed.seconds = need("--seconds")?
                    .parse()
                    .map_err(|_| "bad --seconds".to_string())?
            }
            "--concurrency" => {
                parsed.concurrency = need("--concurrency")?
                    .parse()
                    .map_err(|_| "bad --concurrency".to_string())?
            }
            "--window" => {
                parsed.window = need("--window")?
                    .parse()
                    .map_err(|_| "bad --window".to_string())?
            }
            "--seed" => {
                parsed.seed = need("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--shutdown-server" => parsed.shutdown_server = true,
            "--out" => parsed.out = Some(need("--out")?),
            "--shards" => {
                parsed.shards = need("--shards")?
                    .parse()
                    .map_err(|_| "bad --shards".to_string())?
            }
            "--proto" => {
                let v = need("--proto")?;
                parsed.proto = Proto::parse(&v).ok_or(format!("bad proto {v:?} (json|bin)"))?;
            }
            "--io" => {
                let v = need("--io")?;
                parsed.io =
                    IoMode::parse(&v).ok_or(format!("bad io mode {v:?} (evented|threaded)"))?;
            }
            "--matrix" => parsed.matrix = true,
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: loadgen [--connect ADDR] [--seconds S] \
                     [--concurrency N] [--window N] [--seed N] [--shutdown-server] [--out PATH] \
                     [--shards N] [--proto json|bin] [--io evented|threaded] [--matrix]"
                ))
            }
        }
    }
    if parsed.concurrency == 0 || parsed.window == 0 {
        return Err("--concurrency and --window must be positive".into());
    }
    if parsed.matrix && parsed.connect.is_some() {
        return Err(
            "--matrix self-hosts a server per combo; it cannot be used with --connect".into(),
        );
    }
    Ok(parsed)
}

/// The mixed workload: the paper's query surface with hot-spot
/// duplication (many clients asking the same things), which is what the
/// single-flight layer exists for.
fn workload(licensees: &[String]) -> Vec<Request> {
    let d2020 = Date::new(2020, 4, 1).unwrap();
    let d2019 = Date::new(2019, 1, 1).unwrap();
    let pairs = [("CME", "NY4"), ("CME", "NYSE"), ("CME", "NASDAQ")];
    let mut mix = Vec::new();
    for name in licensees {
        for date in [d2020, d2019] {
            mix.push(Request::Network {
                licensee: name.clone(),
                date,
            });
        }
        for (from, to) in pairs {
            mix.push(Request::Route {
                licensee: name.clone(),
                date: d2020,
                from: from.into(),
                to: to.into(),
            });
        }
        mix.push(Request::Apa {
            licensee: name.clone(),
            date: d2020,
            from: "CME".into(),
            to: "NY4".into(),
        });
    }
    for i in 0..6 {
        mix.push(Request::Geographic {
            lat_deg: 41.7625 + 0.02 * i as f64,
            lon_deg: -88.1712 + 0.4 * i as f64,
            radius_km: 10.0,
        });
    }
    for _ in 0..4 {
        mix.push(Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        });
        mix.push(Request::Shortlist {
            lat_deg: 41.7625,
            lon_deg: -88.1712,
            radius_km: 10.0,
            min_filings: 11,
        });
    }
    // Hot weather queries: few distinct computations, many repeats. The
    // Monte Carlo is the one expensive, non-session-cached request.
    let weather: Vec<Request> = licensees
        .iter()
        .take(2)
        .flat_map(|name| {
            [("CME", "NY4"), ("CME", "NYSE")].map(|(from, to)| Request::Weather {
                licensee: name.clone(),
                date: d2020,
                from: from.into(),
                to: to.into(),
                samples: 60_000,
                seed: 7,
            })
        })
        .collect();
    for i in 0..24 {
        mix.push(weather[i % weather.len()].clone());
    }
    // Hot race queries: the cross-substrate latency race rides the same
    // weather Monte Carlo, but behind the race engine's per-(pair, seed)
    // cache — repeats after the first are cache hits, so the tail
    // attribution shows where the cold computation lands.
    let races: Vec<Request> = licensees
        .iter()
        .take(2)
        .flat_map(|name| {
            [("CME", "NY4"), ("CME", "NYSE")].map(|(from, to)| Request::Race {
                licensee: name.clone(),
                date: d2020,
                from: from.into(),
                to: to.into(),
                constellation: "starlink".into(),
                samples: 20_000,
                seed: 7,
            })
        })
        .collect();
    for i in 0..12 {
        mix.push(races[i % races.len()].clone());
    }
    if let Some(name) = licensees.first() {
        mix.push(Request::StretchSweep {
            licensee: name.clone(),
            date: d2020,
            constellation: "starlink".into(),
        });
    }
    mix
}

fn connect_retry(addr: &SocketAddr, proto: Proto, patience: Duration) -> Result<Client, String> {
    let deadline = Instant::now() + patience;
    loop {
        match Client::connect_with(addr, proto) {
            Ok(client) => return Ok(client),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("could not connect to {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
}

/// Which latency bucket a request lands in when `--shards N` breakout
/// is on: single-licensee requests belong to the owning shard under the
/// fleet's licensee-hash routing; everything else is scatter-gathered
/// across all shards and lands in the final "broadcast" bucket.
fn attribution(mix: &[Request], shards: usize) -> Vec<usize> {
    mix.iter()
        .map(|req| match req {
            Request::Network { licensee, .. }
            | Request::Route { licensee, .. }
            | Request::Apa { licensee, .. }
            | Request::Weather { licensee, .. }
            | Request::Race { licensee, .. }
            | Request::StretchSweep { licensee, .. } => {
                shard_of_licensee(licensee, shards) as usize
            }
            _ => shards,
        })
        .collect()
}

/// Label of attribution bucket `b` among `shards` shards.
fn bucket_label(b: usize, shards: usize) -> String {
    if b == shards {
        "broadcast".to_string()
    } else {
        format!("shard{b}")
    }
}

#[derive(Default)]
struct PhaseResult {
    completed: u64,
    overloaded_retries: u64,
    wrong: u64,
    first_mismatch: Option<String>,
    /// Per-connection latency shard (ns); shards merge across
    /// connections with no loss versus single-shard recording.
    latencies: HistogramShard,
    /// Latency breakout by attribution bucket (`shards + 1` buckets,
    /// the last one broadcast); empty when breakout is off.
    by_bucket: Vec<HistogramShard>,
    elapsed_s: f64,
}

impl PhaseResult {
    fn rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    fn merge(&mut self, other: PhaseResult) {
        self.completed += other.completed;
        self.overloaded_retries += other.overloaded_retries;
        self.wrong += other.wrong;
        if self.first_mismatch.is_none() {
            self.first_mismatch = other.first_mismatch;
        }
        self.latencies.merge(&other.latencies);
        if self.by_bucket.is_empty() {
            self.by_bucket = other.by_bucket;
        } else {
            for (mine, theirs) in self.by_bucket.iter_mut().zip(&other.by_bucket) {
                mine.merge(theirs);
            }
        }
        self.elapsed_s = self.elapsed_s.max(other.elapsed_s);
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        self.latencies.snapshot().percentile(q) as f64 / 1e6
    }

    fn max_ms(&self) -> f64 {
        self.latencies.snapshot().max as f64 / 1e6
    }
}

/// Emit a loud alert when the p90/p50 ratio of a latency population
/// exceeds 10x — the tail is no longer a tail, it's a queueing or
/// skew pathology, and it should jump out of CI smoke output.
fn tail_alert(label: &str, snapshot: &hft_obs::HistogramSnapshot) {
    if snapshot.count == 0 {
        return;
    }
    let p50 = snapshot.percentile(0.50) as f64 / 1e6;
    let p90 = snapshot.percentile(0.90) as f64 / 1e6;
    if p50 > 0.0 && p90 / p50 > 10.0 {
        println!(
            "TAIL ALERT [{label}]: p90/p50 = {:.1}x exceeds 10x (p50 {p50:.3} ms, p90 {p90:.3} ms)",
            p90 / p50
        );
    }
}

/// Drive one connection: keep up to `window` requests in flight, cycle
/// the workload starting at `offset`, stop issuing at the deadline, then
/// drain. Every non-`Overloaded` answer is decoded and byte-compared to
/// `expected` after re-encoding with the canonical JSON codec — the
/// verification is wire-format independent.
fn drive(
    client: &mut Client,
    mix: &[Request],
    expected: &[Vec<u8>],
    attr: Option<&[usize]>,
    offset: usize,
    window: usize,
    deadline: Instant,
) -> Result<PhaseResult, String> {
    let mut result = PhaseResult::default();
    if let Some(attr) = attr {
        let buckets = attr.iter().max().map_or(0, |m| m + 1);
        result.by_bucket = (0..buckets).map(|_| HistogramShard::default()).collect();
    }
    let mut next = offset % mix.len();
    let mut resend: VecDeque<usize> = VecDeque::new();
    let mut pending: VecDeque<(usize, Instant)> = VecDeque::new();
    let io = |e: std::io::Error| format!("loadgen IO: {e}");
    loop {
        let now = Instant::now();
        let mut queued = false;
        while pending.len() < window && now < deadline {
            let idx = resend.pop_front().unwrap_or_else(|| {
                let idx = next;
                next = (next + 1) % mix.len();
                idx
            });
            client.send(&mix[idx]).map_err(io)?;
            pending.push_back((idx, Instant::now()));
            queued = true;
        }
        if queued {
            client.flush().map_err(io)?;
        }
        let Some((idx, sent)) = pending.pop_front() else {
            break; // past the deadline with nothing in flight
        };
        let response = client.recv().map_err(io)?;
        if response == Response::Overloaded {
            result.overloaded_retries += 1;
            resend.push_back(idx);
            continue;
        }
        let latency_ns = sent.elapsed().as_nanos() as u64;
        result.latencies.record(latency_ns);
        if let Some(attr) = attr {
            result.by_bucket[attr[idx]].record(latency_ns);
        }
        result.completed += 1;
        let got = response.encode();
        if got != expected[idx] {
            result.wrong += 1;
            if result.first_mismatch.is_none() {
                result.first_mismatch = Some(format!(
                    "request {:?}\n  want {}\n  got  {}",
                    mix[idx],
                    String::from_utf8_lossy(&expected[idx]),
                    String::from_utf8_lossy(&got),
                ));
            }
        }
    }
    Ok(result)
}

fn run_serial(
    addr: &SocketAddr,
    proto: Proto,
    mix: &[Request],
    expected: &[Vec<u8>],
    attr: Option<&[usize]>,
    seconds: f64,
) -> Result<PhaseResult, String> {
    let mut client = connect_retry(addr, proto, Duration::from_secs(180))?;
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(seconds);
    let mut result = drive(&mut client, mix, expected, attr, 0, 1, deadline)?;
    result.elapsed_s = started.elapsed().as_secs_f64();
    Ok(result)
}

#[allow(clippy::too_many_arguments)]
fn run_concurrent(
    addr: &SocketAddr,
    proto: Proto,
    mix: &[Request],
    expected: &[Vec<u8>],
    attr: Option<&[usize]>,
    seconds: f64,
    concurrency: usize,
    window: usize,
) -> Result<PhaseResult, String> {
    // Connect everyone first so the timed window measures serving, not
    // connection setup.
    let mut clients: Vec<Client> = Vec::with_capacity(concurrency);
    for _ in 0..concurrency {
        clients.push(connect_retry(addr, proto, Duration::from_secs(180))?);
    }
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(seconds);
    let outcomes: Vec<Result<PhaseResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .enumerate()
            .map(|(i, client)| {
                scope.spawn(move || drive(client, mix, expected, attr, i * 13, window, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = PhaseResult::default();
    for outcome in outcomes {
        merged.merge(outcome?);
    }
    merged.elapsed_s = started.elapsed().as_secs_f64();
    Ok(merged)
}

/// Where the wire time went during one self-hosted combo: deltas of the
/// server's `serve.decode_ns`/`serve.encode_ns`/`serve.poll_wake_ns`
/// histograms and buffer-pool counters between two registry snapshots
/// (the registry is process-global and cumulative, so each combo is the
/// after-minus-before difference).
#[derive(Default, Clone, Copy)]
struct WireSample {
    decode_count: u64,
    decode_mean_ns: f64,
    encode_count: u64,
    encode_mean_ns: f64,
    poll_wake_count: u64,
    poll_wake_mean_ns: f64,
    bufpool_hits: u64,
    bufpool_misses: u64,
}

impl WireSample {
    fn delta(before: &RegistrySnapshot, after: &RegistrySnapshot) -> WireSample {
        let d = hft_obs::registry::delta(before, after);
        let hist = |name: &str| {
            let h = d.histogram(name);
            (h.count, h.mean())
        };
        let (decode_count, decode_mean_ns) = hist("serve.decode_ns");
        let (encode_count, encode_mean_ns) = hist("serve.encode_ns");
        let (poll_wake_count, poll_wake_mean_ns) = hist("serve.poll_wake_ns");
        WireSample {
            decode_count,
            decode_mean_ns,
            encode_count,
            encode_mean_ns,
            poll_wake_count,
            poll_wake_mean_ns,
            bufpool_hits: d.counter("serve.bufpool_hits"),
            bufpool_misses: d.counter("serve.bufpool_misses"),
        }
    }

    fn bufpool_hit_rate(&self) -> f64 {
        let total = self.bufpool_hits + self.bufpool_misses;
        if total > 0 {
            self.bufpool_hits as f64 / total as f64
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"decode_count\": {}, \"decode_mean_ns\": {}, \"encode_count\": {}, \
             \"encode_mean_ns\": {}, \"poll_wake_count\": {}, \"poll_wake_mean_ns\": {}, \
             \"bufpool_hits\": {}, \"bufpool_misses\": {}}}",
            self.decode_count,
            fmt(self.decode_mean_ns),
            self.encode_count,
            fmt(self.encode_mean_ns),
            self.poll_wake_count,
            fmt(self.poll_wake_mean_ns),
            self.bufpool_hits,
            self.bufpool_misses,
        )
    }
}

/// One (proto, io) cell of the benchmark matrix.
struct ComboResult {
    proto: Proto,
    io: IoMode,
    /// True when the server is external (`--connect`): its I/O plane is
    /// whatever the operator launched, not our `--io` default.
    remote: bool,
    serial: PhaseResult,
    concurrent: PhaseResult,
    /// Server-side wire attribution; only available when the server
    /// shares this process (self-hosted runs).
    wire: Option<WireSample>,
    /// The slowest captured traces, pulled from the server's flight
    /// recorder after the concurrent phase — the waterfall behind any
    /// `TAIL ALERT` this cell prints.
    traces: Vec<hft_serve::WireTrace>,
}

impl ComboResult {
    fn io_name(&self) -> &'static str {
        if self.remote {
            "remote"
        } else {
            self.io.name()
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.proto.name(), self.io_name())
    }

    fn print(&self) {
        let serial = &self.serial;
        let concurrent = &self.concurrent;
        println!("=== {} ===", self.label());
        println!(
            "serial:     {:>8} requests  {:>9.0} rps  p50 {:.3} ms  max {:.3} ms",
            serial.completed,
            serial.rps(),
            serial.percentile_ms(0.50),
            serial.max_ms(),
        );
        println!(
            "concurrent: {:>8} requests  {:>9.0} rps  p50 {:.3} ms  p90 {:.3} ms  p95 {:.3} ms  \
             p99 {:.3} ms  p999 {:.3} ms  max {:.3} ms",
            concurrent.completed,
            concurrent.rps(),
            concurrent.percentile_ms(0.50),
            concurrent.percentile_ms(0.90),
            concurrent.percentile_ms(0.95),
            concurrent.percentile_ms(0.99),
            concurrent.percentile_ms(0.999),
            concurrent.max_ms(),
        );
        let speedup = if serial.rps() > 0.0 {
            concurrent.rps() / serial.rps()
        } else {
            0.0
        };
        println!(
            "speedup {speedup:.1}x, {} overloaded retries, {} wrong answers",
            serial.overloaded_retries + concurrent.overloaded_retries,
            serial.wrong + concurrent.wrong
        );
        if let Some(wire) = &self.wire {
            println!(
                "wire: decode {:.1} us mean (n={}), encode {:.1} us mean (n={}), poll wake \
                 {:.1} us mean (n={}), bufpool {:.1}% hit",
                wire.decode_mean_ns / 1e3,
                wire.decode_count,
                wire.encode_mean_ns / 1e3,
                wire.encode_count,
                wire.poll_wake_mean_ns / 1e3,
                wire.poll_wake_count,
                wire.bufpool_hit_rate() * 100.0,
            );
        }
        tail_alert(
            &format!("{} concurrent", self.label()),
            &concurrent.latencies.snapshot(),
        );
        if !self.traces.is_empty() {
            println!("slowest captured traces:");
            for t in &self.traces {
                print!("{}", t.render());
            }
        }
    }

    fn json(&self, args: &Args) -> String {
        let serial = &self.serial;
        let concurrent = &self.concurrent;
        let wire = self
            .wire
            .as_ref()
            .map(|w| format!(", \"wire\": {}", w.json()))
            .unwrap_or_default();
        format!(
            "{{\"proto\": \"{}\", \"io\": \"{}\", \
             \"serial\": {{\"requests\": {}, \"seconds\": {}, \"rps\": {}, \"p50_ms\": {}, \
             \"max_ms\": {}}}, \
             \"concurrent\": {{\"concurrency\": {}, \"window\": {}, \"requests\": {}, \
             \"seconds\": {}, \"rps\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p95_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {}, \"max_ms\": {}, \"overloaded_retries\": {}, \
             \"wrong_answers\": {}}}{wire}}}",
            self.proto.name(),
            self.io_name(),
            serial.completed,
            fmt(serial.elapsed_s),
            fmt(serial.rps()),
            fmt(serial.percentile_ms(0.50)),
            fmt(serial.max_ms()),
            args.concurrency,
            args.window,
            concurrent.completed,
            fmt(concurrent.elapsed_s),
            fmt(concurrent.rps()),
            fmt(concurrent.percentile_ms(0.50)),
            fmt(concurrent.percentile_ms(0.90)),
            fmt(concurrent.percentile_ms(0.95)),
            fmt(concurrent.percentile_ms(0.99)),
            fmt(concurrent.percentile_ms(0.999)),
            fmt(concurrent.max_ms()),
            concurrent.overloaded_retries,
            serial.wrong + concurrent.wrong,
        )
    }
}

fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    eprintln!("generating corpus (seed {})...", args.seed);
    let eco = generate(&chicago_nj(), args.seed);
    let mut licensees = eco.connected_2020.clone();
    licensees.sort();
    let mix = workload(&licensees);

    // Ground truth: the same requests answered by a direct in-process
    // session, encoded with the same canonical codec.
    eprintln!("computing {} expected answers locally...", mix.len());
    let reference = Service::new(&eco.db);
    let expected: Vec<Vec<u8>> = mix.iter().map(|r| reference.handle(r).encode()).collect();

    // Optional per-shard latency breakout: attribute each request to the
    // shard a licensee-hash fleet would route it to (last bucket =
    // broadcast). This is client-side bookkeeping — it works against any
    // server and lets the p90-vs-p50 queueing gap be pinned on a shard.
    let attr = (args.shards > 0).then(|| attribution(&mix, args.shards));
    let attr = attr.as_deref();

    // Warm + serial + concurrent against one server, optionally asking
    // it to shut down afterwards.
    let run_phases = |addr: &SocketAddr,
                      proto: Proto,
                      shutdown: bool|
     -> Result<(PhaseResult, PhaseResult, Vec<hft_serve::WireTrace>), String> {
        // Warm pass: every distinct request once, so both timed phases
        // hit a warm server (the acceptance setup).
        let mut warm = connect_retry(addr, proto, Duration::from_secs(180))?;
        for request in &mix {
            loop {
                let response = warm.call(request).map_err(|e| format!("warmup: {e}"))?;
                if response != Response::Overloaded {
                    break;
                }
            }
        }
        eprintln!("warm; serial phase ({:.1}s)...", args.seconds);
        let serial = run_serial(addr, proto, &mix, &expected, attr, args.seconds)?;
        eprintln!(
            "serial: {} requests in {:.2}s = {:.0} rps; concurrent phase ({} conns, window {})...",
            serial.completed,
            serial.elapsed_s,
            serial.rps(),
            args.concurrency,
            args.window
        );
        let concurrent = run_concurrent(
            addr,
            proto,
            &mix,
            &expected,
            attr,
            args.seconds,
            args.concurrency,
            args.window,
        )?;
        // Pull the slowest captured traces before (optionally) shutting
        // the server down, so a TAIL ALERT is followed by the actual
        // waterfalls behind the tail. Best-effort: a pre-tracing server
        // answering an error just means no waterfalls.
        let mut c = connect_retry(addr, proto, Duration::from_secs(30))?;
        let traces = match c.call(&Request::Traces {
            limit: 3,
            trace_id: None,
        }) {
            Ok(Response::Traces { traces }) => traces,
            _ => Vec::new(),
        };
        if shutdown {
            let ack = c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
            if ack != Response::ShuttingDown {
                return Err(format!("shutdown not acknowledged: {ack:?}"));
            }
        }
        Ok((serial, concurrent, traces))
    };

    // Self-host one (proto, io) combo on a fresh server and fresh port;
    // the worker pool is sized identically for every combo so cells are
    // comparable.
    let self_host = |proto: Proto, io: IoMode| -> Result<ComboResult, String> {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: (args.concurrency * args.window).clamp(8, 256),
            queue_depth: (args.concurrency * args.window).max(64),
            io,
            ..ServeConfig::default()
        })
        .map_err(|e| e.to_string())?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        eprintln!("[{}/{}] self-hosting on {addr}", proto.name(), io.name());
        let before = hft_obs::global().snapshot();
        let (serial, concurrent, traces) = std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&eco.db));
            let phases = run_phases(&addr, proto, true);
            let stats = handle.join().expect("server thread");
            stats.map_err(|e| e.to_string())?;
            phases
        })?;
        let wire = WireSample::delta(&before, &hft_obs::global().snapshot());
        Ok(ComboResult {
            proto,
            io,
            remote: false,
            serial,
            concurrent,
            wire: Some(wire),
            traces,
        })
    };

    let combos: Vec<ComboResult> = match &args.connect {
        Some(spec) => {
            let addr = spec
                .to_socket_addrs()
                .map_err(|e| format!("bad --connect {spec:?}: {e}"))?
                .next()
                .ok_or(format!("--connect {spec:?} resolved to nothing"))?;
            let (serial, concurrent, traces) = run_phases(&addr, args.proto, args.shutdown_server)?;
            vec![ComboResult {
                proto: args.proto,
                io: args.io,
                remote: true,
                serial,
                concurrent,
                wire: None,
                traces,
            }]
        }
        None if args.matrix => {
            // The matrix baseline cell (json/threaded) runs first, the
            // acceptance cell (bin/evented) last; every cell gets a
            // fresh server at identical settings.
            let cells = [
                (Proto::Json, IoMode::Threaded),
                (Proto::Binary, IoMode::Threaded),
                (Proto::Json, IoMode::Evented),
                (Proto::Binary, IoMode::Evented),
            ];
            let mut combos = Vec::with_capacity(cells.len());
            for (proto, io) in cells {
                combos.push(self_host(proto, io)?);
            }
            combos
        }
        None => vec![self_host(args.proto, args.io)?],
    };

    for combo in &combos {
        combo.print();
    }

    // The cell that headlines the top-level summary: bin/evented when
    // the matrix ran, otherwise the single cell that was measured.
    let primary = combos
        .iter()
        .find(|c| c.proto == Proto::Binary && c.io == IoMode::Evented)
        .unwrap_or(&combos[0]);
    let baseline = combos
        .iter()
        .find(|c| c.proto == Proto::Json && c.io == IoMode::Threaded);
    let matrix_speedup = baseline.and_then(|b| {
        (args.matrix && b.concurrent.rps() > 0.0)
            .then(|| primary.concurrent.rps() / b.concurrent.rps())
    });
    if let Some(speedup) = matrix_speedup {
        println!(
            "matrix: bin/evented {:.0} rps vs json/threaded {:.0} rps = {speedup:.2}x",
            primary.concurrent.rps(),
            baseline.unwrap().concurrent.rps(),
        );
    }

    // Per-shard breakout of the primary cell's concurrent phase: where
    // does the tail live? The bucket with the widest p90-p50 gap is the
    // queueing culprit — a shard, or the broadcast fan-out.
    let mut per_shard_json = String::new();
    if args.shards > 0 {
        let mut worst: Option<(String, f64)> = None;
        let entries: Vec<String> = primary
            .concurrent
            .by_bucket
            .iter()
            .enumerate()
            .map(|(b, shard)| {
                let snap = shard.snapshot();
                let label = bucket_label(b, args.shards);
                let p50 = snap.percentile(0.50) as f64 / 1e6;
                let p90 = snap.percentile(0.90) as f64 / 1e6;
                let p99 = snap.percentile(0.99) as f64 / 1e6;
                let p999 = snap.percentile(0.999) as f64 / 1e6;
                let max = snap.max as f64 / 1e6;
                let gap = p90 - p50;
                if shard.count() > 0 && worst.as_ref().is_none_or(|(_, g)| gap > *g) {
                    worst = Some((label.clone(), gap));
                }
                println!(
                    "  {label:<10} {:>8} requests  p50 {p50:.3} ms  p90 {p90:.3} ms  \
                     p99 {p99:.3} ms  p999 {p999:.3} ms  max {max:.3} ms",
                    shard.count(),
                );
                tail_alert(&label, &snap);
                format!(
                    "{{\"label\": \"{label}\", \"requests\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \
                     \"p99_ms\": {}, \"p999_ms\": {}, \"max_ms\": {}}}",
                    shard.count(),
                    fmt(p50),
                    fmt(p90),
                    fmt(p99),
                    fmt(p999),
                    fmt(max),
                )
            })
            .collect();
        if let Some((label, gap)) = &worst {
            println!("  widest p90-p50 gap: {label} ({gap:.3} ms)");
        }
        per_shard_json = format!(",\n\"per_shard\": [{}]", entries.join(", "));
    }

    let speedup = if primary.serial.rps() > 0.0 {
        primary.concurrent.rps() / primary.serial.rps()
    } else {
        0.0
    };
    let wrong_total: u64 = combos
        .iter()
        .map(|c| c.serial.wrong + c.concurrent.wrong)
        .sum();
    let runs_json: Vec<String> = combos.iter().map(|c| c.json(&args)).collect();
    let matrix_json = matrix_speedup
        .map(|s| format!(",\n\"speedup_bin_evented_vs_json_threaded\": {}", fmt(s)))
        .unwrap_or_default();

    // Top-level serial/concurrent mirror the primary cell so existing
    // consumers of BENCH_serve.json keep working; "runs" carries every
    // measured (proto, io) cell.
    let json = format!(
        "{{\n\
         \"workload\": {{\"distinct_requests\": {}, \"seed\": {}}},\n\
         \"proto\": \"{}\", \"io\": \"{}\",\n\
         \"serial\": {{\"requests\": {}, \"seconds\": {}, \"rps\": {}, \"p50_ms\": {}, \
         \"max_ms\": {}}},\n\
         \"concurrent\": {{\"concurrency\": {}, \"window\": {}, \"requests\": {}, \"seconds\": {}, \
         \"rps\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
         \"p999_ms\": {}, \"max_ms\": {}, \"overloaded_retries\": {}, \"wrong_answers\": {}}},\n\
         \"speedup\": {},\n\
         \"runs\": [{}]{}{}\n}}\n",
        mix.len(),
        args.seed,
        primary.proto.name(),
        primary.io_name(),
        primary.serial.completed,
        fmt(primary.serial.elapsed_s),
        fmt(primary.serial.rps()),
        fmt(primary.serial.percentile_ms(0.50)),
        fmt(primary.serial.max_ms()),
        args.concurrency,
        args.window,
        primary.concurrent.completed,
        fmt(primary.concurrent.elapsed_s),
        fmt(primary.concurrent.rps()),
        fmt(primary.concurrent.percentile_ms(0.50)),
        fmt(primary.concurrent.percentile_ms(0.90)),
        fmt(primary.concurrent.percentile_ms(0.95)),
        fmt(primary.concurrent.percentile_ms(0.99)),
        fmt(primary.concurrent.percentile_ms(0.999)),
        fmt(primary.concurrent.max_ms()),
        primary.concurrent.overloaded_retries,
        wrong_total,
        fmt(speedup),
        runs_json.join(",\n"),
        matrix_json,
        per_shard_json,
    );
    let path = args
        .out
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").into());
    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");

    if wrong_total > 0 {
        let detail = combos
            .iter()
            .flat_map(|c| {
                c.serial
                    .first_mismatch
                    .clone()
                    .into_iter()
                    .chain(c.concurrent.first_mismatch.clone())
            })
            .next()
            .unwrap_or_default();
        return Err(format!("byte mismatch against direct session:\n{detail}"));
    }
    Ok(())
}
