//! `fleetload` — the shard-router fleet bench: serve a sharded corpus
//! behind a [`hft_serve::ShardRouter`] while the corpus history ingests
//! underneath it, byte-verifying every scatter-gathered answer against
//! a direct single-corpus [`hft_serve::Service`] over the same
//! generation. Writes `BENCH_fleet.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p hft-bench --bin fleetload
//! cargo run --release -p hft-bench --bin fleetload -- --shards 4 --seconds 1
//! ```
//!
//! For each fleet size N the harness seeds an [`Applier`] with the
//! first half of the rendered dump history, partitions the corpus into
//! an N-shard [`ShardedStore`], and serves it with `Server::run_with`
//! over a [`ShardRouter`]. A publisher thread replays the remaining
//! batches, republishing the fleet (every shard, in lockstep) every few
//! batches, while client threads hammer the server with a mixed
//! point-to-point + scatter-gather workload.
//!
//! Correctness is the headline number, latency second: each answer is
//! *generation-vector bracketed* — the client reads every shard's
//! generation before sending and after receiving. When both vectors are
//! uniform and equal, the answer is attributable to exactly one
//! full-corpus generation and must byte-match a reference service over
//! that generation's unsharded corpus; a mismatch is a hard failure.
//! When a fleet publish lands mid-flight (mixed or advanced vector) the
//! answer counts as `unpinned`.
//!
//! Latencies are attributed client-side: under the licensee-hash
//! strategy a licensee-bearing request's owning shard is a pure
//! function of the name, so each request lands in a per-shard bucket
//! (scatter-gather requests land in a final `broadcast` bucket), and
//! the report breaks out p50/p90/p99 per bucket next to the merged
//! percentiles.

use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate};
use hft_ingest::{render_history, Applier, ShardedStore};
use hft_obs::HistogramShard;
use hft_serve::api::{Request, Response};
use hft_serve::{Client, ServeConfig, Server, Service, ShardRouter, WireTrace};
use hft_time::Date;
use hft_uls::shard::{shard_of_licensee, ShardStrategy};
use hft_uls::UlsDatabase;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    shards: Vec<usize>,
    seconds: f64,
    concurrency: usize,
    publish_every: usize,
    strategy: ShardStrategy,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        shards: vec![1, 4, 8],
        seconds: 2.0,
        concurrency: 8,
        publish_every: 4,
        strategy: ShardStrategy::LicenseeHash,
        seed: REPRO_SEED,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--shards" => {
                parsed.shards = need("--shards")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --shards (comma-separated sizes)".to_string())?
            }
            "--seconds" => {
                parsed.seconds = need("--seconds")?
                    .parse()
                    .map_err(|_| "bad --seconds".to_string())?
            }
            "--concurrency" => {
                parsed.concurrency = need("--concurrency")?
                    .parse()
                    .map_err(|_| "bad --concurrency".to_string())?
            }
            "--publish-every" => {
                parsed.publish_every = need("--publish-every")?
                    .parse()
                    .map_err(|_| "bad --publish-every".to_string())?
            }
            "--strategy" => {
                parsed.strategy = ShardStrategy::parse(&need("--strategy")?)
                    .ok_or("bad --strategy (licensee|spatial)".to_string())?
            }
            "--seed" => {
                parsed.seed = need("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--out" => parsed.out = Some(need("--out")?),
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: fleetload [--shards N,N,...] \
                     [--seconds S] [--concurrency N] [--publish-every N] \
                     [--strategy licensee|spatial] [--seed N] [--out PATH]"
                ))
            }
        }
    }
    if parsed.shards.is_empty() || parsed.shards.contains(&0) {
        return Err("--shards must list positive fleet sizes".into());
    }
    if parsed.concurrency == 0 || parsed.publish_every == 0 {
        return Err("--concurrency and --publish-every must be positive".into());
    }
    Ok(parsed)
}

/// The query mix: point-to-point analysis per licensee plus
/// scatter-gather geographic/site/funnel queries — every request
/// answerable (if only emptily) at every corpus generation.
fn workload(licensees: &[String]) -> Vec<Request> {
    let d2020 = Date::new(2020, 4, 1).unwrap();
    let d2016 = Date::new(2016, 6, 1).unwrap();
    let mut mix = Vec::new();
    for name in licensees {
        for date in [d2020, d2016] {
            mix.push(Request::Network {
                licensee: name.clone(),
                date,
            });
        }
        mix.push(Request::Route {
            licensee: name.clone(),
            date: d2020,
            from: "CME".into(),
            to: "NY4".into(),
        });
    }
    for i in 0..4 {
        mix.push(Request::Geographic {
            lat_deg: 41.7625 + 0.02 * i as f64,
            lon_deg: -88.1712 + 0.5 * i as f64,
            radius_km: 10.0,
        });
    }
    mix.push(Request::SiteSearch {
        service: "MG".into(),
        class: "FXO".into(),
    });
    mix.push(Request::Shortlist {
        lat_deg: 41.7625,
        lon_deg: -88.1712,
        radius_km: 500.0,
        min_filings: 2,
    });
    mix
}

/// Client-side latency attribution: bucket index per mix entry. Under a
/// name-routed strategy, licensee-bearing requests belong to their
/// owning shard's bucket; everything else (and every request under a
/// corpus-dependent strategy) lands in the final `broadcast` bucket.
fn attribution(mix: &[Request], shards: usize, strategy: ShardStrategy) -> Vec<usize> {
    mix.iter()
        .map(|req| match req {
            Request::Network { licensee, .. }
            | Request::Route { licensee, .. }
            | Request::Apa { licensee, .. }
            | Request::Weather { licensee, .. }
                if strategy.routes_by_name() =>
            {
                shard_of_licensee(licensee, shards) as usize
            }
            _ => shards,
        })
        .collect()
}

fn bucket_label(bucket: usize, shards: usize) -> String {
    if bucket == shards {
        "broadcast".into()
    } else {
        format!("shard{bucket}")
    }
}

/// Per-generation reference corpora and lazily built single-corpus
/// engines. The publisher registers each generation's *full* corpus
/// before publishing it to the fleet, so any client that observes a
/// uniform generation vector can find the matching unsharded corpus.
struct FleetBook {
    corpora: Mutex<HashMap<u64, Arc<UlsDatabase>>>,
    engines: Mutex<HashMap<u64, Arc<Service<'static>>>>,
}

impl FleetBook {
    fn new() -> FleetBook {
        FleetBook {
            corpora: Mutex::new(HashMap::new()),
            engines: Mutex::new(HashMap::new()),
        }
    }

    fn register(&self, generation: u64, db: Arc<UlsDatabase>) {
        self.corpora
            .lock()
            .expect("fleet book corpora")
            .insert(generation, db);
    }

    fn engine(&self, generation: u64) -> Option<Arc<Service<'static>>> {
        let mut engines = self.engines.lock().expect("fleet book engines");
        if let Some(engine) = engines.get(&generation) {
            return Some(Arc::clone(engine));
        }
        let db = Arc::clone(
            self.corpora
                .lock()
                .expect("fleet book corpora")
                .get(&generation)?,
        );
        let engine = Arc::new(Service::over_snapshot(
            db,
            generation,
            Arc::new(hft_serve::ServeStats::default()),
        ));
        engines.insert(generation, Arc::clone(&engine));
        Some(engine)
    }
}

#[derive(Default)]
struct ClientOutcome {
    completed: u64,
    verified: u64,
    unpinned: u64,
    wrong: u64,
    overloaded_retries: u64,
    first_mismatch: Option<String>,
    /// Merged end-to-end latency shard (ns).
    latencies: HistogramShard,
    /// Per-bucket latency shards (ns): one per shard + broadcast.
    by_bucket: Vec<HistogramShard>,
}

/// One serial client: round-trip requests until `done`, bracketing each
/// answer between fleet generation vectors and byte-verifying pinned
/// answers against the generation's single-corpus reference.
fn drive(
    addr: &SocketAddr,
    fleet: &ShardedStore,
    book: &FleetBook,
    mix: &[Request],
    attr: &[usize],
    offset: usize,
    done: &AtomicBool,
) -> Result<ClientOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut outcome = ClientOutcome {
        by_bucket: (0..=fleet.shard_count())
            .map(|_| HistogramShard::default())
            .collect(),
        ..ClientOutcome::default()
    };
    let mut next = offset % mix.len();
    while !done.load(Ordering::Relaxed) {
        let idx = next;
        let request = &mix[idx];
        next = (next + 1) % mix.len();
        let before = fleet.generation_vector();
        let sent = Instant::now();
        let response = client
            .call(request)
            .map_err(|e| format!("fleetload IO: {e}"))?;
        if response == Response::Overloaded {
            outcome.overloaded_retries += 1;
            continue;
        }
        let latency_ns = sent.elapsed().as_nanos() as u64;
        outcome.latencies.record(latency_ns);
        outcome.by_bucket[attr[idx]].record(latency_ns);
        outcome.completed += 1;
        let after = fleet.generation_vector();
        let uniform = before == after && before.windows(2).all(|w| w[0] == w[1]);
        if !uniform {
            // A fleet publish landed mid-flight: some shard answered at
            // a different generation than the bracket can pin.
            outcome.unpinned += 1;
            continue;
        }
        let Some(reference) = book.engine(before[0]) else {
            outcome.unpinned += 1;
            continue;
        };
        let want = reference.handle(request).encode();
        let got = response.encode();
        if got == want {
            outcome.verified += 1;
        } else {
            outcome.wrong += 1;
            if outcome.first_mismatch.is_none() {
                outcome.first_mismatch = Some(format!(
                    "generation {} request {:?}\n  want {}\n  got  {}",
                    before[0],
                    request,
                    String::from_utf8_lossy(&want),
                    String::from_utf8_lossy(&got),
                ));
            }
        }
    }
    Ok(outcome)
}

fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

struct RunReport {
    shards: usize,
    seconds: f64,
    completed: u64,
    rps: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    per_bucket: Vec<(String, u64, f64, f64, f64)>,
    generations: u64,
    generation_swaps: u64,
    verified: u64,
    unpinned: u64,
    wrong: u64,
    overloaded_retries: u64,
    /// The slowest captured traces pulled from the fleet's flight
    /// recorder just before shutdown — the cross-shard waterfalls
    /// behind this run's tail.
    traces: Vec<WireTrace>,
}

/// Serve one fleet size under concurrent ingest and report.
fn run_fleet(
    args: &Args,
    shards: usize,
    batches: &[hft_ingest::DumpBatch],
    licensees: &[String],
) -> Result<RunReport, String> {
    let mix = workload(licensees);
    let attr = attribution(&mix, shards, args.strategy);
    let half = batches.len() / 2;
    let mut applier = Applier::new(UlsDatabase::new());
    for batch in &batches[..half] {
        let conflicts = applier.apply(batch);
        if !conflicts.is_empty() {
            return Err(format!("seed ingest conflict: {}", conflicts[0]));
        }
    }
    let fleet = ShardedStore::seeded(applier.db(), shards, args.strategy, applier.last_date());
    let router = ShardRouter::over(&fleet);
    let book = FleetBook::new();
    book.register(0, Arc::new(applier.rebuild()));
    let done = AtomicBool::new(false);
    let pace = Duration::from_secs_f64(args.seconds / (batches.len() - half).max(1) as f64);

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: args.concurrency.clamp(4, 64),
        queue_depth: (args.concurrency * 4).max(64),
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "fleet n={shards} ({}): serving generation vector {:?} on {addr}; \
         ingesting {} batches behind it...",
        args.strategy.name(),
        fleet.generation_vector(),
        batches.len() - half,
    );

    let served = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let server_handle = scope.spawn(|| server.run_with(&router));
        let publisher = scope.spawn(|| {
            let mut generation = 0u64;
            let mut publish = |applier: &Applier| {
                // Register the full corpus *before* the fleet can serve
                // it, so a uniform bracket always finds its reference.
                book.register(generation + 1, Arc::new(applier.rebuild()));
                generation = applier.publish_sharded(&fleet);
            };
            for (i, batch) in batches[half..].iter().enumerate() {
                let conflicts = applier.apply(batch);
                assert!(conflicts.is_empty(), "ingest conflict: {}", conflicts[0]);
                if (i + 1) % args.publish_every == 0 {
                    publish(&applier);
                }
                std::thread::sleep(pace);
            }
            publish(&applier);
            done.store(true, Ordering::Relaxed);
            generation
        });
        let clients: Vec<_> = (0..args.concurrency)
            .map(|i| {
                let fleet = &fleet;
                let book = &book;
                let mix = &mix;
                let attr = attr.as_slice();
                let done = &done;
                scope.spawn(move || drive(&addr, fleet, book, mix, attr, i * 7, done))
            })
            .collect();
        let outcomes: Vec<Result<ClientOutcome, String>> =
            clients.into_iter().map(|h| h.join().unwrap()).collect();
        let generations = publisher.join().unwrap();
        let mut c = Client::connect(&addr).map_err(|e| e.to_string())?;
        // Pull the slowest captured traces before the fleet goes down.
        let traces = match c.call(&Request::Traces {
            limit: 3,
            trace_id: None,
        }) {
            Ok(Response::Traces { traces }) => traces,
            _ => Vec::new(),
        };
        let ack = c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
        if ack != Response::ShuttingDown {
            return Err(format!("shutdown not acknowledged: {ack:?}"));
        }
        server_handle
            .join()
            .expect("server thread")
            .map_err(|e| e.to_string())?;
        Ok::<_, String>((outcomes, generations, traces))
    });
    let (outcomes, generations, traces) = outcomes?;
    let serve_s = served.elapsed().as_secs_f64();
    let generation_swaps: u64 = router
        .shards()
        .iter()
        .map(|s| s.stats().snapshot().generation_swaps)
        .sum();

    let mut total = ClientOutcome {
        by_bucket: (0..=shards).map(|_| HistogramShard::default()).collect(),
        ..ClientOutcome::default()
    };
    for outcome in outcomes {
        let outcome = outcome?;
        total.completed += outcome.completed;
        total.verified += outcome.verified;
        total.unpinned += outcome.unpinned;
        total.wrong += outcome.wrong;
        total.overloaded_retries += outcome.overloaded_retries;
        if total.first_mismatch.is_none() {
            total.first_mismatch = outcome.first_mismatch;
        }
        total.latencies.merge(&outcome.latencies);
        for (mine, theirs) in total.by_bucket.iter_mut().zip(&outcome.by_bucket) {
            mine.merge(theirs);
        }
    }
    if total.wrong > 0 {
        return Err(format!(
            "fleet n={shards}: scatter-gathered bytes diverge from the \
             single-corpus reference:\n{}",
            total.first_mismatch.unwrap_or_default()
        ));
    }
    if total.verified == 0 {
        return Err(format!(
            "fleet n={shards}: no answer was ever generation-pinned — bracketing is broken"
        ));
    }

    let latencies = total.latencies.snapshot();
    let pct_ms = |snap: &hft_obs::HistogramSnapshot, q: f64| snap.percentile(q) as f64 / 1e6;
    let per_bucket: Vec<(String, u64, f64, f64, f64)> = total
        .by_bucket
        .iter()
        .enumerate()
        .map(|(b, shard)| {
            let snap = shard.snapshot();
            (
                bucket_label(b, shards),
                snap.count,
                pct_ms(&snap, 0.50),
                pct_ms(&snap, 0.90),
                pct_ms(&snap, 0.99),
            )
        })
        .collect();
    Ok(RunReport {
        shards,
        seconds: serve_s,
        completed: total.completed,
        rps: total.completed as f64 / serve_s.max(1e-9),
        p50: pct_ms(&latencies, 0.50),
        p90: pct_ms(&latencies, 0.90),
        p99: pct_ms(&latencies, 0.99),
        per_bucket,
        generations,
        generation_swaps,
        verified: total.verified,
        unpinned: total.unpinned,
        wrong: total.wrong,
        overloaded_retries: total.overloaded_retries,
        traces,
    })
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    eprintln!("generating corpus (seed {})...", args.seed);
    let eco = generate(&chicago_nj(), args.seed);
    let published = hft_uls::flatfile::decode(&hft_uls::flatfile::encode(eco.db.licenses()))
        .map_err(|e| format!("corpus round trip: {e}"))?;
    let published_db = UlsDatabase::from_licenses(published);
    let batches = render_history(published_db.licenses());
    eprintln!(
        "history: {} daily batches over {}..{}",
        batches.len(),
        batches.first().map(|b| b.date.to_iso()).unwrap_or_default(),
        batches.last().map(|b| b.date.to_iso()).unwrap_or_default(),
    );
    let mut licensees = eco.connected_2020.clone();
    // The connected-2020 mix alone can leave shards idle: with 8 shards
    // the paper's nine licensees hash onto only six residues, so two
    // shard workers never see a request and their per-shard percentiles
    // are vacuous. Widen the mix from the full corpus so every shard of
    // every benched fleet size owns at least one mix licensee.
    for &n in &args.shards {
        let mut covered = vec![false; n];
        for name in &licensees {
            covered[shard_of_licensee(name, n) as usize] = true;
        }
        for name in published_db.licensees() {
            let k = shard_of_licensee(name, n) as usize;
            if !covered[k] {
                covered[k] = true;
                licensees.push(name.to_string());
            }
        }
    }
    licensees.sort();
    licensees.dedup();

    let mut reports = Vec::new();
    for &n in &args.shards {
        reports.push(run_fleet(&args, n, &batches, &licensees)?);
    }

    for r in &reports {
        println!(
            "fleet n={:<2} {:>7} requests {:>9.0} rps  p50 {:.3} ms  p90 {:.3} ms  \
             p99 {:.3} ms  ({} generations, {} swaps)",
            r.shards, r.completed, r.rps, r.p50, r.p90, r.p99, r.generations, r.generation_swaps,
        );
        for (label, count, p50, p90, p99) in &r.per_bucket {
            if *count == 0 {
                continue;
            }
            println!(
                "  {label:<10} {count:>7} requests  p50 {p50:.3} ms  p90 {p90:.3} ms  \
                 p99 {p99:.3} ms"
            );
        }
        println!(
            "  answers: {} vector-verified, {} unpinned, {} wrong, {} overloaded retries",
            r.verified, r.unpinned, r.wrong, r.overloaded_retries,
        );
        if !r.traces.is_empty() {
            println!("  slowest captured traces:");
            for t in &r.traces {
                print!("{}", t.render());
            }
        }
    }

    let runs: Vec<String> = reports
        .iter()
        .map(|r| {
            let buckets: Vec<String> = r
                .per_bucket
                .iter()
                .map(|(label, count, p50, p90, p99)| {
                    format!(
                        "{{\"bucket\": \"{label}\", \"count\": {count}, \"p50_ms\": {}, \
                         \"p90_ms\": {}, \"p99_ms\": {}}}",
                        fmt(*p50),
                        fmt(*p90),
                        fmt(*p99),
                    )
                })
                .collect();
            format!(
                "{{\"shards\": {}, \"seconds\": {}, \"requests\": {}, \"rps\": {}, \
                 \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"generations\": {}, \
                 \"generation_swaps\": {}, \"verified\": {}, \"unpinned\": {}, \
                 \"wrong_answers\": {}, \"overloaded_retries\": {},\n    \"per_shard\": [{}]}}",
                r.shards,
                fmt(r.seconds),
                r.completed,
                fmt(r.rps),
                fmt(r.p50),
                fmt(r.p90),
                fmt(r.p99),
                r.generations,
                r.generation_swaps,
                r.verified,
                r.unpinned,
                r.wrong,
                r.overloaded_retries,
                buckets.join(", "),
            )
        })
        .collect();
    let json = format!(
        "{{\n\"strategy\": \"{}\", \"concurrency\": {}, \"publish_every\": {}, \"seed\": {},\n\
         \"runs\": [\n  {}\n]\n}}\n",
        args.strategy.name(),
        args.concurrency,
        args.publish_every,
        args.seed,
        runs.join(",\n  "),
    );
    let path = args
        .out
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json").into());
    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}
