//! `httpload` — the hft-http load harness: self-host a server with the
//! HTTP explorer on the evented loop, replay a mixed GET/POST workload
//! over keep-alive connections, and write per-route-class latency
//! percentiles to `BENCH_http.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p hft-bench --bin httpload -- --seconds 2 --concurrency 8
//! ```
//!
//! The mix spans every route class the explorer serves: licensee pages
//! (pooled network reconstruction + inline SVG render), the funnel page
//! (pooled scrape), the corpus index and `/metrics` (rendered on the
//! loop), and `POST /api` carrying wire requests. Every API answer is
//! byte-compared against the in-process `Service::handle` encoding of
//! the same request — the explorer's acceptance bar is that HTTP
//! answers are byte-identical to wire answers — and any mismatch fails
//! the run. `503` answers are backpressure, not errors: counted,
//! retried, excluded from latency.

use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate};
use hft_http::HttpExplorer;
use hft_obs::HistogramShard;
use hft_serve::evloop::ExtraListener;
use hft_serve::{Client, Request, Response, ServeConfig, Server, Service};
use hft_time::Date;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Route classes, in report order.
const ROUTES: [&str; 5] = ["index", "licensee", "funnel", "metrics", "api"];
const R_INDEX: usize = 0;
const R_LICENSEE: usize = 1;
const R_FUNNEL: usize = 2;
const R_METRICS: usize = 3;
const R_API: usize = 4;

struct Args {
    seconds: f64,
    concurrency: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        seconds: 3.0,
        concurrency: 8,
        seed: REPRO_SEED,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--seconds" => {
                parsed.seconds = need("--seconds")?
                    .parse()
                    .map_err(|_| "bad --seconds".to_string())?
            }
            "--concurrency" => {
                parsed.concurrency = need("--concurrency")?
                    .parse()
                    .map_err(|_| "bad --concurrency".to_string())?
            }
            "--seed" => {
                parsed.seed = need("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--out" => parsed.out = Some(need("--out")?),
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: httpload [--seconds S] \
                     [--concurrency N] [--seed N] [--out PATH]"
                ))
            }
        }
    }
    if parsed.concurrency == 0 {
        return Err("--concurrency must be at least 1".into());
    }
    Ok(parsed)
}

/// One workload entry: pre-rendered request bytes, its route class, and
/// (API only) the expected response body.
struct MixEntry {
    class: usize,
    raw: Vec<u8>,
    expected: Option<Vec<u8>>,
}

fn get_entry(class: usize, target: &str) -> MixEntry {
    MixEntry {
        class,
        raw: format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").into_bytes(),
        expected: None,
    }
}

/// Percent-encode a licensee name for a path segment.
fn encode_segment(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The workload: every route class, licensee pages and API requests
/// across the paper's connected-2020 networks. API expectations are
/// computed from the same in-process service the server answers with.
fn workload(service: &Service<'_>, licensees: &[String]) -> Vec<MixEntry> {
    let date = Date::new(2020, 4, 1).expect("valid date");
    let mut mix = vec![
        get_entry(R_INDEX, "/"),
        get_entry(R_METRICS, "/metrics"),
        get_entry(R_FUNNEL, "/funnel?radius_km=10&min_filings=11"),
        get_entry(R_FUNNEL, "/funnel?radius_km=25&min_filings=5"),
    ];
    let mut api_requests: Vec<Request> = vec![
        Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        },
        Request::Shortlist {
            lat_deg: 41.88,
            lon_deg: -87.63,
            radius_km: 15.0,
            min_filings: 11,
        },
    ];
    for name in licensees {
        mix.push(get_entry(
            R_LICENSEE,
            &format!("/licensee/{}", encode_segment(name)),
        ));
        api_requests.push(Request::Network {
            licensee: name.clone(),
            date,
        });
    }
    for request in api_requests {
        let body = request.encode();
        let mut raw = format!(
            "POST /api HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        mix.push(MixEntry {
            class: R_API,
            raw,
            expected: Some(service.handle(&request).encode()),
        });
    }
    mix
}

/// A buffering keep-alive HTTP client (pipeline-safe reply framing).
struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Write one request and read one full response; returns
    /// `(status, body)`.
    fn call(&mut self, raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
        let io = |e: std::io::Error| format!("httpload IO: {e}");
        self.stream.write_all(raw).map_err(io)?;
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            let n = self.stream.read(&mut chunk).map_err(io)?;
            if n == 0 {
                return Err("server closed mid-response".into());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| "non-utf8 response head".to_string())?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line: {head:?}"))?;
        let len: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .ok_or("missing content-length")?;
        while self.buf.len() < head_end + len {
            let n = self.stream.read(&mut chunk).map_err(io)?;
            if n == 0 {
                return Err("server closed mid-body".into());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[head_end..head_end + len].to_vec();
        self.buf.drain(..head_end + len);
        Ok((status, body))
    }
}

#[derive(Default)]
struct WorkerResult {
    by_route: Vec<HistogramShard>,
    completed: u64,
    api_verified: u64,
    overloaded_retries: u64,
    wrong: u64,
    first_mismatch: Option<String>,
}

/// One keep-alive connection replaying the mix until the deadline.
fn worker(
    addr: SocketAddr,
    mix: &[MixEntry],
    offset: usize,
    deadline: Instant,
) -> Result<WorkerResult, String> {
    let mut result = WorkerResult {
        by_route: (0..ROUTES.len()).map(|_| HistogramShard::new()).collect(),
        ..WorkerResult::default()
    };
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut next = offset % mix.len();
    while Instant::now() < deadline {
        let entry = &mix[next];
        let started = Instant::now();
        let (status, body) = client.call(&entry.raw)?;
        if status == 503 {
            // Backpressure is an answer, not an error: retry the entry.
            result.overloaded_retries += 1;
            continue;
        }
        result.by_route[entry.class].record(started.elapsed().as_nanos() as u64);
        result.completed += 1;
        if let Some(expected) = &entry.expected {
            if &body == expected {
                result.api_verified += 1;
            } else {
                result.wrong += 1;
                if result.first_mismatch.is_none() {
                    result.first_mismatch = Some(format!(
                        "request {next}: got {} bytes, want {} bytes",
                        body.len(),
                        expected.len()
                    ));
                }
            }
        } else if status >= 400 {
            result.wrong += 1;
            if result.first_mismatch.is_none() {
                result.first_mismatch = Some(format!("request {next}: unexpected status {status}"));
            }
        }
        next = (next + 1) % mix.len();
    }
    Ok(result)
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    eprintln!("generating corpus (seed {})...", args.seed);
    let eco = generate(&chicago_nj(), args.seed);
    let mut licensees = eco.connected_2020.clone();
    licensees.sort();
    let service = Service::new(&eco.db);
    let mix = workload(&service, &licensees);
    eprintln!(
        "mix: {} entries over {} routes, {} clients, {}s",
        mix.len(),
        ROUTES.len(),
        args.concurrency,
        args.seconds,
    );

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let wire_addr = server.local_addr().map_err(|e| format!("addr: {e}"))?;
    let explorer = HttpExplorer::new(&service);
    let extra = ExtraListener::bind("127.0.0.1:0", &explorer).map_err(|e| format!("bind: {e}"))?;
    let http_addr = extra.local_addr().map_err(|e| format!("addr: {e}"))?;

    let before = hft_obs::global().snapshot();
    let (results, elapsed) = std::thread::scope(|scope| {
        let server = &server;
        let service = &service;
        let extras = vec![extra];
        let server_thread = scope.spawn(move || server.run_with_extras(service, &extras));

        let started = Instant::now();
        let deadline = started + Duration::from_secs_f64(args.seconds);
        let mix = &mix;
        let workers: Vec<_> = (0..args.concurrency)
            .map(|i| {
                let stride = i * mix.len() / args.concurrency;
                scope.spawn(move || worker(http_addr, mix, stride, deadline))
            })
            .collect();
        let results: Vec<Result<WorkerResult, String>> = workers
            .into_iter()
            .map(|w| w.join().expect("worker"))
            .collect();
        let elapsed = started.elapsed().as_secs_f64();

        let mut wire = Client::connect(&wire_addr).expect("wire client");
        let down = wire.call(&Request::Shutdown).expect("shutdown");
        assert!(matches!(down, Response::ShuttingDown));
        server_thread
            .join()
            .expect("server thread")
            .expect("server result");
        (results, elapsed)
    });

    // Server-side RED, as the driver's own per-route instruments saw the
    // run: request/error counts and duration means from a registry delta
    // (the registry is process-global and cumulative).
    let red = hft_obs::registry::delta(&before, &hft_obs::global().snapshot());
    println!("server RED metrics (per route):");
    for (name, served) in &red.counters {
        let Some(route) = name
            .strip_prefix("http.requests{route=\"")
            .and_then(|r| r.strip_suffix("\"}"))
        else {
            continue;
        };
        if *served == 0 {
            continue;
        }
        let errors = red.counter(&hft_obs::registry::labeled("http.errors", "route", route));
        let dur = red.histogram(&hft_obs::registry::labeled(
            "http.duration_ns",
            "route",
            route,
        ));
        println!(
            "  {route:<9} {served:>7} served  {errors:>5} errors  mean {:.3} ms",
            dur.mean() / 1e6,
        );
    }

    let mut merged = WorkerResult {
        by_route: (0..ROUTES.len()).map(|_| HistogramShard::new()).collect(),
        ..WorkerResult::default()
    };
    for result in results {
        let r = result?;
        for (m, s) in merged.by_route.iter_mut().zip(&r.by_route) {
            m.merge(s);
        }
        merged.completed += r.completed;
        merged.api_verified += r.api_verified;
        merged.overloaded_retries += r.overloaded_retries;
        merged.wrong += r.wrong;
        if merged.first_mismatch.is_none() {
            merged.first_mismatch = r.first_mismatch;
        }
    }

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut route_rows = Vec::new();
    let mut total = HistogramShard::new();
    for (route, shard) in ROUTES.iter().zip(&merged.by_route) {
        total.merge(shard);
        let s = shard.snapshot();
        println!(
            "  {route:<9} {:>7} requests  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms",
            s.count,
            ms(s.percentile(0.50)),
            ms(s.percentile(0.90)),
            ms(s.percentile(0.99)),
            ms(s.percentile(0.999)),
        );
        route_rows.push(format!(
            "{{\"route\": \"{route}\", \"count\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {}}}",
            s.count,
            fmt(ms(s.percentile(0.50))),
            fmt(ms(s.percentile(0.90))),
            fmt(ms(s.percentile(0.99))),
            fmt(ms(s.percentile(0.999))),
        ));
    }
    let t = total.snapshot();
    let rps = if elapsed > 0.0 {
        merged.completed as f64 / elapsed
    } else {
        0.0
    };
    println!(
        "http: {} requests {:.0} rps  p50 {:.3} ms  p99 {:.3} ms  \
         ({} api answers byte-verified, {} wrong, {} overloaded retries)",
        merged.completed,
        rps,
        ms(t.percentile(0.50)),
        ms(t.percentile(0.99)),
        merged.api_verified,
        merged.wrong,
        merged.overloaded_retries,
    );

    let json = format!(
        "{{\n\"seconds\": {}, \"concurrency\": {}, \"seed\": {},\n\
         \"requests\": {}, \"rps\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \
         \"p999_ms\": {},\n\
         \"api_verified\": {}, \"wrong_answers\": {}, \"overloaded_retries\": {},\n\
         \"per_route\": [\n  {}\n]\n}}\n",
        fmt(elapsed),
        args.concurrency,
        args.seed,
        merged.completed,
        fmt(rps),
        fmt(ms(t.percentile(0.50))),
        fmt(ms(t.percentile(0.90))),
        fmt(ms(t.percentile(0.99))),
        fmt(ms(t.percentile(0.999))),
        merged.api_verified,
        merged.wrong,
        merged.overloaded_retries,
        route_rows.join(",\n  "),
    );
    let path = args
        .out
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_http.json").into());
    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");

    if merged.wrong > 0 {
        return Err(format!(
            "{} wrong answers (first: {})",
            merged.wrong,
            merged.first_mismatch.unwrap_or_default()
        ));
    }
    Ok(())
}
