//! `ingestload` — the hft-ingest bench harness: measure dump-replay
//! ingest throughput, then serve a live corpus while the rest of the
//! history ingests underneath it, verifying every generation-pinned
//! answer against a direct in-process session over the same generation.
//! Writes `BENCH_ingest.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p hft-bench --bin ingestload
//! cargo run --release -p hft-bench --bin ingestload -- --seconds 2 --concurrency 4
//! ```
//!
//! Phase A replays the corpus's full 2013–2020 event history (rendered
//! as daily transaction dumps, decoded from text like a real follower
//! would) through the incremental [`hft_ingest::Applier`], publishing
//! each batch, and reports events/second.
//!
//! Phase B seeds a [`hft_ingest::SnapshotStore`] with the first half of
//! the history, serves it with `Server::run_live`, and ingests the
//! remaining batches on a paced background thread while client threads
//! hammer the server. Each answer is *generation-bracketed*: the client
//! snapshots the store generation before sending and after receiving.
//! When the brackets agree the answer is attributable to exactly one
//! corpus generation and must byte-match a reference service over that
//! generation's snapshot — a wrong answer is a hard failure. When a
//! publish lands mid-flight the answer is counted `unpinned` (either
//! generation would be a correct answer; the bracket just can't tell
//! which one was used).

use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate};
use hft_ingest::{decode_batch, render_history, Applier, SnapshotStore};
use hft_obs::HistogramShard;
use hft_serve::api::{Request, Response};
use hft_serve::{Client, ServeConfig, Server, Service};
use hft_time::Date;
use hft_uls::UlsDatabase;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    seconds: f64,
    concurrency: usize,
    publish_every: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        seconds: 3.0,
        concurrency: 8,
        publish_every: 4,
        seed: REPRO_SEED,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--seconds" => {
                parsed.seconds = need("--seconds")?
                    .parse()
                    .map_err(|_| "bad --seconds".to_string())?
            }
            "--concurrency" => {
                parsed.concurrency = need("--concurrency")?
                    .parse()
                    .map_err(|_| "bad --concurrency".to_string())?
            }
            "--publish-every" => {
                parsed.publish_every = need("--publish-every")?
                    .parse()
                    .map_err(|_| "bad --publish-every".to_string())?
            }
            "--seed" => {
                parsed.seed = need("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--out" => parsed.out = Some(need("--out")?),
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: ingestload [--seconds S] \
                     [--concurrency N] [--publish-every N] [--seed N] [--out PATH]"
                ))
            }
        }
    }
    if parsed.concurrency == 0 || parsed.publish_every == 0 {
        return Err("--concurrency and --publish-every must be positive".into());
    }
    Ok(parsed)
}

/// The phase-B query mix: session-cached analysis over the modeled
/// networks plus index-backed searches — every request answerable (if
/// only emptily) at every corpus generation.
fn workload(licensees: &[String]) -> Vec<Request> {
    let d2020 = Date::new(2020, 4, 1).unwrap();
    let d2016 = Date::new(2016, 6, 1).unwrap();
    let mut mix = Vec::new();
    for name in licensees {
        for date in [d2020, d2016] {
            mix.push(Request::Network {
                licensee: name.clone(),
                date,
            });
        }
        mix.push(Request::Route {
            licensee: name.clone(),
            date: d2020,
            from: "CME".into(),
            to: "NY4".into(),
        });
    }
    for i in 0..4 {
        mix.push(Request::Geographic {
            lat_deg: 41.7625 + 0.02 * i as f64,
            lon_deg: -88.1712 + 0.5 * i as f64,
            radius_km: 10.0,
        });
    }
    mix.push(Request::SiteSearch {
        service: "MG".into(),
        class: "FXO".into(),
    });
    mix
}

/// Lazily built per-generation reference engines. Each holds the
/// generation's corpus `Arc` (kept alive by the map) and its own
/// session caches, so repeated verification of the same request against
/// the same generation costs one computation total.
struct ReferenceBook {
    engines: Mutex<HashMap<u64, Arc<Service<'static>>>>,
}

impl ReferenceBook {
    fn new() -> ReferenceBook {
        ReferenceBook {
            engines: Mutex::new(HashMap::new()),
        }
    }

    fn engine(&self, generation: u64, db: Arc<UlsDatabase>) -> Arc<Service<'static>> {
        let mut engines = self.engines.lock().expect("reference book");
        Arc::clone(engines.entry(generation).or_insert_with(|| {
            Arc::new(Service::over_snapshot(
                db,
                generation,
                Arc::new(hft_serve::ServeStats::default()),
            ))
        }))
    }
}

#[derive(Default)]
struct ClientOutcome {
    completed: u64,
    verified: u64,
    unpinned: u64,
    wrong: u64,
    overloaded_retries: u64,
    first_mismatch: Option<String>,
    /// Per-client latency shard (ns), merged losslessly at the end.
    latencies: HistogramShard,
}

/// One serial client: round-trip requests until `done`, bracketing each
/// answer between store generations and verifying pinned answers.
fn drive(
    addr: &SocketAddr,
    store: &SnapshotStore,
    book: &ReferenceBook,
    mix: &[Request],
    offset: usize,
    done: &AtomicBool,
) -> Result<ClientOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut outcome = ClientOutcome::default();
    let mut next = offset % mix.len();
    while !done.load(Ordering::Relaxed) {
        let request = &mix[next];
        next = (next + 1) % mix.len();
        let snap = store.current();
        let sent = Instant::now();
        let response = client
            .call(request)
            .map_err(|e| format!("ingestload IO: {e}"))?;
        if response == Response::Overloaded {
            outcome.overloaded_retries += 1;
            continue;
        }
        outcome.latencies.record(sent.elapsed().as_nanos() as u64);
        outcome.completed += 1;
        if store.generation() != snap.generation() {
            // A publish landed mid-flight: the answer came from one of
            // the bracketing generations, but we cannot tell which.
            outcome.unpinned += 1;
            continue;
        }
        let reference = book.engine(snap.generation(), snap.db_arc());
        let want = reference.handle(request).encode();
        let got = response.encode();
        if got == want {
            outcome.verified += 1;
        } else {
            outcome.wrong += 1;
            if outcome.first_mismatch.is_none() {
                outcome.first_mismatch = Some(format!(
                    "generation {} request {:?}\n  want {}\n  got  {}",
                    snap.generation(),
                    request,
                    String::from_utf8_lossy(&want),
                    String::from_utf8_lossy(&got),
                ));
            }
        }
    }
    Ok(outcome)
}

fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    eprintln!("generating corpus (seed {})...", args.seed);
    let eco = generate(&chicago_nj(), args.seed);
    // The dump-visible corpus: what the flat-file dialect can carry.
    let published = hft_uls::flatfile::decode(&hft_uls::flatfile::encode(eco.db.licenses()))
        .map_err(|e| format!("corpus round trip: {e}"))?;
    let published_db = UlsDatabase::from_licenses(published);
    let batches = render_history(published_db.licenses());
    let texts: Vec<String> = batches.iter().map(hft_ingest::encode_batch).collect();
    eprintln!(
        "history: {} daily batches over {}..{}",
        batches.len(),
        batches.first().map(|b| b.date.to_iso()).unwrap_or_default(),
        batches.last().map(|b| b.date.to_iso()).unwrap_or_default(),
    );

    // ---- Phase A: pure ingest throughput (decode + apply + publish).
    let store_a = SnapshotStore::new(UlsDatabase::new());
    let mut applier = Applier::new(UlsDatabase::new());
    let started = Instant::now();
    for (text, batch) in texts.iter().zip(&batches) {
        let (decoded, report) = decode_batch(text).map_err(|e| format!("decode: {e}"))?;
        if !report.is_clean() {
            return Err(format!("{} quarantined records", report.count()));
        }
        let conflicts = applier.apply(&decoded);
        if !conflicts.is_empty() {
            return Err(format!("ingest conflict: {}", conflicts[0]));
        }
        debug_assert_eq!(decoded.date, batch.date);
        applier.publish(&store_a);
    }
    let ingest_s = started.elapsed().as_secs_f64();
    let stats = applier.stats();
    applier.verify()?;
    // The replayed corpus is grant-date-ordered; compare license *sets*.
    let by_id = |licenses: &[hft_uls::License]| {
        let mut sorted = licenses.to_vec();
        sorted.sort_by_key(|l| l.id);
        sorted
    };
    if by_id(applier.db().licenses()) != by_id(published_db.licenses()) {
        return Err("replayed corpus differs from the published corpus".into());
    }
    let events_per_sec = stats.events() as f64 / ingest_s.max(1e-9);
    eprintln!(
        "ingest: {} events in {} batches in {:.3}s = {:.0} events/s",
        stats.events(),
        stats.batches,
        ingest_s,
        events_per_sec,
    );

    // ---- Phase B: serve under concurrent ingest.
    let mut licensees = eco.connected_2020.clone();
    licensees.sort();
    let mix = workload(&licensees);
    let half = batches.len() / 2;
    let mut applier = Applier::new(UlsDatabase::new());
    for batch in &batches[..half] {
        applier.apply(batch);
    }
    let store = Arc::new(SnapshotStore::new(UlsDatabase::new()));
    applier.publish(&store);
    let book = ReferenceBook::new();
    let done = AtomicBool::new(false);
    let pace = Duration::from_secs_f64(args.seconds / (batches.len() - half).max(1) as f64);

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: args.concurrency.clamp(4, 64),
        queue_depth: (args.concurrency * 4).max(64),
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "serving generation {} on {addr}; ingesting {} batches behind it...",
        store.generation(),
        batches.len() - half,
    );

    let served = Instant::now();
    let (outcomes, serve_stats) = std::thread::scope(|scope| {
        let server_handle = scope.spawn(|| server.run_live(&store));
        let ingester = scope.spawn(|| {
            for (i, batch) in batches[half..].iter().enumerate() {
                let conflicts = applier.apply(batch);
                assert!(conflicts.is_empty(), "ingest conflict: {}", conflicts[0]);
                if (i + 1) % args.publish_every == 0 {
                    applier.publish(&store);
                }
                std::thread::sleep(pace);
            }
            applier.publish(&store);
            done.store(true, Ordering::Relaxed);
        });
        let clients: Vec<_> = (0..args.concurrency)
            .map(|i| {
                let store = &store;
                let book = &book;
                let mix = &mix;
                let done = &done;
                scope.spawn(move || drive(&addr, store, book, mix, i * 7, done))
            })
            .collect();
        let outcomes: Vec<Result<ClientOutcome, String>> =
            clients.into_iter().map(|h| h.join().unwrap()).collect();
        ingester.join().unwrap();
        let mut c = Client::connect(&addr).map_err(|e| e.to_string())?;
        let ack = c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
        if ack != Response::ShuttingDown {
            return Err(format!("shutdown not acknowledged: {ack:?}"));
        }
        let serve_stats = server_handle
            .join()
            .expect("server thread")
            .map_err(|e| e.to_string())?;
        Ok::<_, String>((outcomes, serve_stats))
    })?;
    let serve_s = served.elapsed().as_secs_f64();

    let mut total = ClientOutcome::default();
    for outcome in outcomes {
        let outcome = outcome?;
        total.completed += outcome.completed;
        total.verified += outcome.verified;
        total.unpinned += outcome.unpinned;
        total.wrong += outcome.wrong;
        total.overloaded_retries += outcome.overloaded_retries;
        if total.first_mismatch.is_none() {
            total.first_mismatch = outcome.first_mismatch;
        }
        total.latencies.merge(&outcome.latencies);
    }
    let latencies = total.latencies.snapshot();
    let pct_ms = |q: f64| latencies.percentile(q) as f64 / 1e6;
    let p50 = pct_ms(0.50);
    let p90 = pct_ms(0.90);
    let p99 = pct_ms(0.99);
    let p999 = pct_ms(0.999);
    let rps = total.completed as f64 / serve_s.max(1e-9);
    let generations = store.generation();

    println!(
        "ingest:  {:>7} events  {:>9.0} events/s  ({} batches, {} conflicts)",
        stats.events(),
        events_per_sec,
        stats.batches,
        stats.conflicts,
    );
    println!(
        "serve:   {:>7} requests {:>9.0} rps  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  \
         p999 {:.3} ms  ({} generations, {} swaps observed)",
        total.completed, rps, p50, p90, p99, p999, generations, serve_stats.generation_swaps,
    );
    println!(
        "answers: {} generation-verified, {} unpinned, {} wrong, {} overloaded retries",
        total.verified, total.unpinned, total.wrong, total.overloaded_retries,
    );

    let json = format!(
        "{{\n\
         \"ingest\": {{\"batches\": {}, \"events\": {}, \"conflicts\": {}, \"seconds\": {}, \
         \"events_per_sec\": {}}},\n\
         \"serve_under_ingest\": {{\"concurrency\": {}, \"publish_every\": {}, \"seconds\": {}, \
         \"requests\": {}, \"rps\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \
         \"p999_ms\": {}, \
         \"generations\": {}, \"generation_swaps\": {}, \"verified\": {}, \"unpinned\": {}, \
         \"wrong_answers\": {}, \"overloaded_retries\": {}}},\n\
         \"seed\": {}\n}}\n",
        stats.batches,
        stats.events(),
        stats.conflicts,
        fmt(ingest_s),
        fmt(events_per_sec),
        args.concurrency,
        args.publish_every,
        fmt(serve_s),
        total.completed,
        fmt(rps),
        fmt(p50),
        fmt(p90),
        fmt(p99),
        fmt(p999),
        generations,
        serve_stats.generation_swaps,
        total.verified,
        total.unpinned,
        total.wrong,
        total.overloaded_retries,
        args.seed,
    );
    let path = args
        .out
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json").into());
    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");

    if total.wrong > 0 {
        return Err(format!(
            "generation-pinned byte mismatch:\n{}",
            total.first_mismatch.unwrap_or_default()
        ));
    }
    if total.verified == 0 {
        return Err("no answer was ever generation-pinned — bracketing is broken".into());
    }
    Ok(())
}
