//! `repro` — regenerate every table and figure of the paper and print
//! paper-vs-measured values side by side. Artifacts (CSV/SVG/GeoJSON)
//! are written under `out/repro/`.
//!
//! ```text
//! cargo run --release -p hft-bench --bin repro
//! ```

use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate};
use hft_radio::WeatherSampler;
use hftnetview::prelude::*;
use hftnetview::{report, weather};
use std::path::Path;

fn write(path: &str, contents: &str) {
    let p = Path::new(path);
    if let Some(dir) = p.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(p, contents).expect("write artifact");
}

fn main() {
    let out = "out/repro";
    let eco = generate(&chicago_nj(), REPRO_SEED);
    let analysis = report::Analysis::new(&eco);
    println!("ecosystem: {} licenses, seed {REPRO_SEED}\n", eco.db.len());

    // ---- E10: the §2.2 funnel. ----
    let funnel = report::funnel(&analysis);
    println!("E10 funnel          paper -> measured");
    println!("  candidates (MG/FXO): 57 -> {}", funnel.service_filtered);
    println!("  shortlisted (>=11):  29 -> {}", funnel.shortlisted);

    // ---- E1: Table 1. ----
    let paper_t1: [(&str, f64, f64, usize); 9] = [
        ("New Line Networks", 3.96171, 54.0, 25),
        ("Pierce Broadband", 3.96209, 7.0, 29),
        ("Jefferson Microwave", 3.96597, 73.0, 22),
        ("Blueline Comm", 3.96940, 0.0, 29),
        ("Webline Holdings", 3.97157, 85.0, 27),
        ("AQ2AT", 4.01101, 0.0, 29),
        ("Wireless Internetwork", 4.12246, 0.0, 33),
        ("GTT Americas", 4.24241, 0.0, 28),
        ("SW Networks", 4.44530, 0.0, 74),
    ];
    let rows = report::table1(&analysis);
    println!("\nE1 Table 1 (latency ms / APA % / towers), paper -> measured");
    for (r, (pname, plat, papa, ptow)) in rows.iter().zip(paper_t1) {
        println!(
            "  {:<22} {:.5} -> {:.5} | {:>3.0} -> {:>3.0} | {:>2} -> {:>2}{}",
            r.licensee,
            plat,
            r.latency_ms,
            papa,
            r.apa * 100.0,
            ptow,
            r.towers,
            if r.licensee == pname {
                ""
            } else {
                "  << ORDER MISMATCH"
            },
        );
    }
    let (_, csv) = report::table1_render(&rows);
    write(&format!("{out}/table1.csv"), &csv.to_csv());

    // ---- E2: Table 2. ----
    let t2 = report::table2(&analysis);
    let (text, csv) = report::table2_render(&t2);
    println!("\nE2 {text}");
    write(&format!("{out}/table2.csv"), &csv.to_csv());

    // ---- E3: Table 3. ----
    let t3 = report::table3(&analysis);
    let (text, csv) = report::table3_render(&t3);
    println!("E3 {text}");
    println!("   (paper: NLN 54/58/30, WH 85/92/80)");
    write(&format!("{out}/table3.csv"), &csv.to_csv());

    // ---- E4/E5: Figs 1 & 2. ----
    // The nine-date sweep rides the session's epoch cache: dates inside
    // one lifecycle epoch share a reconstruction, so the sweep must run
    // strictly fewer reconstructions than the naive networks x dates.
    let before_evolution = analysis.session.stats();
    let series = report::evolution(&analysis);
    let evolution_reconstructs =
        analysis.session.stats().reconstructions - before_evolution.reconstructions;
    let naive = (report::FIGURE_NETWORKS.len() * series[0].points.len()) as u64;
    assert!(
        evolution_reconstructs < naive,
        "epoch cache must beat the naive sweep: {evolution_reconstructs} vs {naive}"
    );
    eprintln!(
        "evolution sweep: {evolution_reconstructs} reconstructions for {naive} network-dates"
    );
    let (svg, csv) = report::fig1_render(&series);
    write(&format!("{out}/fig1.svg"), &svg);
    write(&format!("{out}/fig1.csv"), &csv.to_csv());
    let (svg, csv) = report::fig2_render(&series);
    write(&format!("{out}/fig2.svg"), &svg);
    write(&format!("{out}/fig2.csv"), &csv.to_csv());
    let best = |idx: usize| {
        series
            .iter()
            .filter_map(|s| s.points[idx].1)
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "E4 Fig 1: best latency 2013 {:.3} ms (paper 4.00), 2020 {:.5} ms (paper 3.962)",
        best(0),
        best(8)
    );
    let nln = series
        .iter()
        .find(|s| s.licensee == "New Line Networks")
        .unwrap();
    println!(
        "E5 Fig 2: NLN licenses on 2016-01-01: {} (paper 95); NTC gone by 2019: {}",
        nln.points[3].2,
        series
            .iter()
            .find(|s| s.licensee == "National Tower Company")
            .unwrap()
            .points[6]
            .2
            == 0,
    );

    // ---- E6: Fig 3. ----
    let (gj16, gj20, svg16, svg20) = report::fig3(&analysis);
    write(&format!("{out}/fig3_nln_2016.geojson"), &gj16);
    write(&format!("{out}/fig3_nln_2020.geojson"), &gj20);
    write(&format!("{out}/fig3_nln_2016.svg"), &svg16);
    write(&format!("{out}/fig3_nln_2020.svg"), &svg20);
    let n16 = report::network_of(
        &analysis,
        "New Line Networks",
        Date::new(2016, 1, 1).unwrap(),
    );
    let n20 = report::network_of(&analysis, "New Line Networks", report::snapshot_date());
    println!(
        "E6 Fig 3: NLN 2016 {} towers / {} links -> 2020 {} towers / {} links (augmentation visible)",
        n16.tower_count(),
        n16.link_count(),
        n20.tower_count(),
        n20.link_count(),
    );

    // ---- E7: Fig 4a. ----
    let lens = report::fig4a(&analysis);
    let (svg, csv) = report::cdf_render("Fig 4a: link lengths", "Distance (km)", &lens);
    write(&format!("{out}/fig4a.svg"), &svg);
    write(&format!("{out}/fig4a.csv"), &csv.to_csv());
    println!("E7 Fig 4a medians, paper -> measured:");
    for (name, cdf) in &lens {
        let paper = if name.starts_with("Webline") {
            36.0
        } else {
            48.5
        };
        println!("  {:<20} {:.1} -> {:.1} km", name, paper, cdf.median());
    }

    // ---- E8: Fig 4b. ----
    let freqs = report::fig4b(&analysis);
    let (svg, csv) = report::cdf_render("Fig 4b: operating frequencies", "Frequency (GHz)", &freqs);
    write(&format!("{out}/fig4b.svg"), &svg);
    write(&format!("{out}/fig4b.csv"), &csv.to_csv());
    println!("E8 Fig 4b (fraction under 7 GHz):");
    for (name, cdf) in &freqs {
        println!("  {:<20} {:.0}%", name, cdf.fraction_below(7.0) * 100.0);
    }

    // ---- E9: Fig 5 + weather ablation. ----
    let rows = report::fig5();
    let (text, csv) = report::fig5_render(&rows);
    print!("E9 {text}");
    write(&format!("{out}/fig5.csv"), &csv.to_csv());
    println!("E9b weather Monte Carlo (stormy season, 5000 states):");
    let sampler = WeatherSampler::stormy_season();
    for name in ["New Line Networks", "Webline Holdings"] {
        let asof = report::snapshot_date();
        let net = analysis.session.network(name, asof);
        let rg = analysis
            .session
            .routing_graph(name, asof, &corridor::CME, &corridor::EQUINIX_NY4);
        let o = weather::conditional_latency_on(
            &rg,
            &net,
            &corridor::CME,
            &corridor::EQUINIX_NY4,
            &sampler,
            5000,
            REPRO_SEED,
        )
        .expect("connected");
        let p = |v: f64| {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "down".into()
            }
        };
        println!(
            "  {:<22} clear {} | p99 {} | availability {:.2}%",
            name,
            p(o.clear_ms),
            p(o.p99_ms),
            o.availability * 100.0
        );
    }

    // ---- E11: entity resolution (§2.4 / §6 future work). ----
    let candidates = report::entity_scan(&analysis);
    println!("\nE11 entity resolution (complementary-link scan over the shortlist):");
    for c in &candidates {
        let fmt = |v: Option<f64>| v.map(|x| format!("{x:.5}")).unwrap_or_else(|| "-".into());
        println!(
            "  {} + {}: alone {} / {}, merged {:.5} ms, {} shared towers{}",
            c.a,
            c.b,
            fmt(c.a_alone_ms),
            fmt(c.b_alone_ms),
            c.joint_latency_ms,
            c.shared_towers,
            if c.jointly_connected_only() {
                "  << joint-only: one operator"
            } else {
                ""
            },
        );
    }

    // ---- E12: per-tower overhead crossover (§3). ----
    let nln = report::network_of(&analysis, "New Line Networks", report::snapshot_date());
    let jm = report::network_of(&analysis, "Jefferson Microwave", report::snapshot_date());
    if let Some(o) =
        hft_core::overhead::crossover_overhead_us(&nln, &jm, &corridor::CME, &corridor::EQUINIX_NY4)
    {
        println!(
            "\nE12 per-tower overhead: JM (22 towers) overtakes NLN (25 towers) above {o:.2} µs/tower (paper: ~1.4 µs)"
        );
    }

    println!("\nartifacts written under {out}/");
    eprintln!("session stats: {}", analysis.session.stats());
}
