//! Spatial query engine benchmark: the grid-indexed portal against the
//! retained linear-scan reference on the full synthetic corpus.
//!
//! Measures the paper's actual query mix — the §2.2 scrape funnel's
//! 10 km geographic search around CME, the MG/FXO site search, and a
//! multi-probe fan-out along the corridor through
//! `AnalysisSession::par_map` — and writes `BENCH_geo.json` at the
//! workspace root with an `indexed_over_linear_speedup` entry (the PR
//! acceptance floor is 10x). Set `HFT_BENCH_SAMPLES` to shrink the
//! sample count (CI smoke runs use 1).

use criterion::{black_box, Criterion};
use hft_bench::REPRO_SEED;
use hft_core::corridor::{CME, EQUINIX_NY4};
use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hft_geodesy::{gc_interpolate, LatLon};
use hft_uls::{RadioService, StationClass, UlsPortal};
use std::sync::OnceLock;

fn eco() -> &'static GeneratedEcosystem {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    ECO.get_or_init(|| generate(&chicago_nj(), REPRO_SEED))
}

/// Timed calls per bench: `HFT_BENCH_SAMPLES` when set (CI smoke passes
/// 1), otherwise 30 — the queries are cheap enough to afford it.
fn sample_size() -> usize {
    std::env::var("HFT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

/// Nine probe centers along the CME→NY4 great circle — the shape of the
/// evolution sweep's per-date lookups.
fn probes() -> Vec<LatLon> {
    let a = CME.position();
    let b = EQUINIX_NY4.position();
    (0..9)
        .map(|i| gc_interpolate(&a, &b, i as f64 / 8.0))
        .collect()
}

fn bench_geographic(c: &mut Criterion) {
    let db = &eco().db;
    let cme = CME.position();
    let mut g = c.benchmark_group("geo");
    g.sample_size(sample_size());
    g.bench_function("geographic_search_linear", |b| {
        b.iter(|| black_box(db.geographic_search_linear(black_box(&cme), 10.0).len()))
    });
    g.bench_function("geographic_search_indexed", |b| {
        b.iter(|| black_box(db.geographic_search(black_box(&cme), 10.0).len()))
    });
    g.finish();
}

fn bench_site_search(c: &mut Criterion) {
    let db = &eco().db;
    let mut g = c.benchmark_group("geo");
    g.sample_size(sample_size());
    g.bench_function("site_search_linear", |b| {
        b.iter(|| {
            black_box(
                db.site_search_linear(&RadioService::MG, &StationClass::FXO)
                    .len(),
            )
        })
    });
    g.bench_function("site_search_indexed", |b| {
        b.iter(|| black_box(db.site_search(&RadioService::MG, &StationClass::FXO).len()))
    });
    g.finish();
}

fn bench_par_fanout(c: &mut Criterion) {
    let eco = eco();
    let session = eco.session();
    let probes = probes();
    let mut g = c.benchmark_group("geo");
    g.sample_size(sample_size());
    g.bench_function("par_geographic_search_9probes", |b| {
        b.iter(|| {
            let hits = session
                .par_geographic_search(black_box(&probes), 10.0)
                .expect("session has a portal");
            black_box(hits.iter().map(Vec::len).sum::<usize>())
        })
    });
    g.finish();
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let db = &eco().db;
    println!(
        "corpus: {} licenses, {} tower sites in {} grid cells",
        db.len(),
        db.site_index().site_count(),
        db.site_index().cell_count()
    );

    let mut criterion = Criterion::default().configure_from_args();
    bench_geographic(&mut criterion);
    bench_site_search(&mut criterion);
    bench_par_fanout(&mut criterion);

    let results = criterion.results();
    let mut entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"id\": \"{}\", \"mean_s\": {:.9}, \"samples\": {}}}",
                json_escape(&r.id),
                r.mean_s(),
                r.samples.len()
            )
        })
        .collect();
    let linear = results
        .iter()
        .find(|r| r.id == "geo/geographic_search_linear")
        .map(|r| r.mean_s());
    let indexed = results
        .iter()
        .find(|r| r.id == "geo/geographic_search_indexed")
        .map(|r| r.mean_s());
    if let (Some(linear), Some(indexed)) = (linear, indexed) {
        if indexed > 0.0 {
            entries.push(format!(
                "  {{\"id\": \"geo/indexed_over_linear_speedup\", \"mean_s\": {:.3}, \"samples\": 0}}",
                linear / indexed
            ));
            println!(
                "geographic_search indexed/linear speedup: {:.1}x",
                linear / indexed
            );
        }
    }
    let json = format!("{{\n\"results\": [\n{}\n]\n}}\n", entries.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_geo.json");
    std::fs::write(path, json).expect("write BENCH_geo.json");
    println!("wrote {path}");
}
