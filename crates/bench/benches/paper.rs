//! One Criterion benchmark per paper artifact (tables 1–3, figures 1–5,
//! and the §2.2 funnel), timing the analysis pipeline that regenerates
//! it. The corpus is generated once outside the timing loops; what is
//! measured is the reconstruction/analysis work a user of the library
//! pays per query.

use criterion::{criterion_group, criterion_main, Criterion};
use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hftnetview::report;
use std::hint::black_box;
use std::sync::OnceLock;

fn eco() -> &'static report::Analysis<'static> {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    static ANALYSIS: OnceLock<report::Analysis<'static>> = OnceLock::new();
    ANALYSIS.get_or_init(|| {
        report::Analysis::new(ECO.get_or_init(|| generate(&chicago_nj(), REPRO_SEED)))
    })
}

fn bench_table1(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("table1_full_leaderboard", |b| {
        b.iter(|| black_box(report::table1(black_box(eco))))
    });
}

fn bench_table2(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("table2_per_path_rankings", |b| {
        b.iter(|| black_box(report::table2(black_box(eco))))
    });
}

fn bench_table3(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("table3_apa_nln_vs_wh", |b| {
        b.iter(|| black_box(report::table3(black_box(eco))))
    });
}

fn bench_fig1_fig2(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("fig1_fig2_evolution_series", |b| {
        b.iter(|| black_box(report::evolution(black_box(eco))))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("fig3_maps_geojson_svg", |b| {
        b.iter(|| black_box(report::fig3(black_box(eco))))
    });
}

fn bench_fig4a(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("fig4a_link_length_cdfs", |b| {
        b.iter(|| black_box(report::fig4a(black_box(eco))))
    });
}

fn bench_fig4b(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("fig4b_frequency_cdfs", |b| {
        b.iter(|| black_box(report::fig4b(black_box(eco))))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("fig5_leo_vs_terrestrial", |b| {
        b.iter(|| black_box(report::fig5()))
    });
    g.finish();
}

fn bench_funnel(c: &mut Criterion) {
    let eco = eco();
    c.bench_function("funnel_scrape_pipeline", |b| {
        b.iter(|| black_box(report::funnel(black_box(eco))))
    });
}

fn bench_weather(c: &mut Criterion) {
    let eco = eco();
    let net = report::network_of(eco, "New Line Networks", report::snapshot_date());
    let sampler = hft_radio::WeatherSampler::stormy_season();
    let mut g = c.benchmark_group("weather");
    g.sample_size(10);
    g.bench_function("weather_monte_carlo_500_states", |b| {
        b.iter(|| {
            black_box(hftnetview::weather::conditional_latency(
                black_box(&net),
                &hft_core::corridor::CME,
                &hft_core::corridor::EQUINIX_NY4,
                &sampler,
                500,
                7,
            ))
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    // Not a paper artifact per se, but the cost of standing up the whole
    // calibrated ecosystem is worth tracking.
    let spec = chicago_nj();
    let mut g = c.benchmark_group("generate");
    g.sample_size(10);
    g.bench_function("generate_full_ecosystem", |b| {
        b.iter(|| black_box(generate(black_box(&spec), REPRO_SEED)))
    });
    g.finish();
}

fn bench_entity_scan(c: &mut Criterion) {
    let eco = eco();
    let mut g = c.benchmark_group("entity");
    g.sample_size(10);
    g.bench_function("entity_scan_shortlist", |b| {
        b.iter(|| black_box(report::entity_scan(black_box(eco))))
    });
    g.finish();
}

fn bench_overhead(c: &mut Criterion) {
    let eco = eco();
    let asof = report::snapshot_date();
    let nln = report::network_of(eco, "New Line Networks", asof);
    let jm = report::network_of(eco, "Jefferson Microwave", asof);
    c.bench_function("overhead_crossover", |b| {
        b.iter(|| {
            black_box(hft_core::overhead::crossover_overhead_us(
                black_box(&nln),
                black_box(&jm),
                &hft_core::corridor::CME,
                &hft_core::corridor::EQUINIX_NY4,
            ))
        })
    });
}

fn bench_annual_availability(c: &mut Criterion) {
    let eco = eco();
    let net = report::network_of(eco, "Webline Holdings", report::snapshot_date());
    let climate = hft_radio::RainClimate::continental_temperate();
    let links: Vec<hft_radio::LinkOutageModel> = net
        .graph
        .edges()
        .map(|(_, _, _, l)| {
            hft_radio::LinkOutageModel::typical(
                l.length_m / 1000.0,
                l.frequencies_ghz.first().copied().unwrap_or(11.0),
            )
        })
        .collect();
    c.bench_function("annual_availability_whole_network", |b| {
        b.iter(|| {
            black_box(hft_radio::path_annual_availability(
                black_box(links.iter()),
                &climate,
            ))
        })
    });
}

criterion_group!(
    paper,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_fig1_fig2,
    bench_fig3,
    bench_fig4a,
    bench_fig4b,
    bench_fig5,
    bench_funnel,
    bench_weather,
    bench_generation,
    bench_entity_scan,
    bench_overhead,
    bench_annual_availability,
);
criterion_main!(paper);
