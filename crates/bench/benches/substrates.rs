//! Substrate micro-benchmarks and the ablations called out in DESIGN.md:
//!
//! * `ablate_pruning` — bounded loop-free path enumeration with exact
//!   reverse-Dijkstra potentials vs a deliberately unpruned DFS;
//! * `ablate_geodesic` — Vincenty (what the library uses) vs haversine;
//! * codec and routing micro-benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hft_geodesy::{gc_distance_m, vincenty_inverse, LatLon};
use hft_netgraph::{bounded_paths, dijkstra, yen_k_shortest, BoundedPathsConfig, Graph, NodeId};
use hftnetview::report;
use std::hint::black_box;
use std::sync::OnceLock;

fn eco() -> &'static report::Analysis<'static> {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    static ANALYSIS: OnceLock<report::Analysis<'static>> = OnceLock::new();
    ANALYSIS.get_or_init(|| {
        report::Analysis::new(ECO.get_or_init(|| generate(&chicago_nj(), REPRO_SEED)))
    })
}

fn bench_geodesics(c: &mut Criterion) {
    let a = LatLon::new(41.7625, -88.171233).unwrap();
    let b = LatLon::new(40.7930, -74.0576).unwrap();
    let mut g = c.benchmark_group("ablate_geodesic");
    g.bench_function("vincenty_inverse", |bch| {
        bch.iter(|| black_box(vincenty_inverse(black_box(&a), black_box(&b))))
    });
    g.bench_function("haversine", |bch| {
        bch.iter(|| black_box(gc_distance_m(black_box(&a), black_box(&b))))
    });
    g.finish();
}

/// A 2×N ladder graph with unit-ish weights — the worst case for naive
/// path enumeration (exponentially many loop-free paths).
fn ladder(n: usize) -> (Graph<(), f64>, NodeId, NodeId) {
    let mut g: Graph<(), f64> = Graph::new();
    let top: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    let bot: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for i in 0..n - 1 {
        g.add_edge(top[i], top[i + 1], 1.0);
        g.add_edge(bot[i], bot[i + 1], 1.02);
    }
    for i in 0..n {
        g.add_edge(top[i], bot[i], 0.12);
    }
    (g, top[0], top[n - 1])
}

/// Unpruned DFS path counter (the ablation baseline): enumerates all
/// loop-free paths and only checks the bound at the target.
fn naive_count(g: &Graph<(), f64>, src: NodeId, dst: NodeId, bound: f64) -> usize {
    fn rec(
        g: &Graph<(), f64>,
        cur: NodeId,
        dst: NodeId,
        cost: f64,
        bound: f64,
        visited: &mut Vec<bool>,
        count: &mut usize,
    ) {
        if cur == dst {
            if cost <= bound {
                *count += 1;
            }
            return;
        }
        let neighbors: Vec<(hft_netgraph::EdgeId, NodeId)> = g.neighbors(cur).collect();
        for (e, v) in neighbors {
            if visited[v.index()] {
                continue;
            }
            visited[v.index()] = true;
            rec(g, v, dst, cost + *g.edge(e), bound, visited, count);
            visited[v.index()] = false;
        }
    }
    let mut visited = vec![false; g.node_count()];
    visited[src.index()] = true;
    let mut count = 0;
    rec(g, src, dst, 0.0, bound, &mut visited, &mut count);
    count
}

fn bench_pruning_ablation(c: &mut Criterion) {
    let mut grp = c.benchmark_group("ablate_pruning");
    for n in [8usize, 11, 14] {
        let (g, s, t) = ladder(n);
        // A tight bound: only paths within 8% of the shortest qualify.
        let best = dijkstra(&g, s, |_, w| *w, |_| true).distance(t).unwrap();
        let bound = best * 1.08;
        grp.bench_with_input(BenchmarkId::new("potential_pruned", n), &n, |b, _| {
            b.iter(|| {
                black_box(bounded_paths(
                    &g,
                    s,
                    t,
                    |_, w| *w,
                    &BoundedPathsConfig {
                        bound,
                        max_paths: usize::MAX,
                        record_paths: false,
                    },
                ))
            })
        });
        grp.bench_with_input(BenchmarkId::new("naive_dfs", n), &n, |b, _| {
            b.iter(|| black_box(naive_count(&g, s, t, bound)))
        });
    }
    grp.finish();
}

fn bench_routing(c: &mut Criterion) {
    let net = report::network_of(eco(), "Webline Holdings", report::snapshot_date());
    let rg = hft_core::route::RoutingGraph::build(
        &net,
        &hft_core::corridor::CME,
        &hft_core::corridor::EQUINIX_NY4,
    );
    c.bench_function("routing_graph_build", |b| {
        b.iter(|| {
            black_box(hft_core::route::RoutingGraph::build(
                black_box(&net),
                &hft_core::corridor::CME,
                &hft_core::corridor::EQUINIX_NY4,
            ))
        })
    });
    c.bench_function("dijkstra_one_route", |b| {
        b.iter(|| black_box(rg.route_filtered(&net, |_| true)))
    });
    c.bench_function("yen_5_shortest", |b| {
        b.iter(|| {
            black_box(yen_k_shortest(
                &rg.graph,
                rg.source,
                rg.target,
                5,
                |_, e| e.latency_s(),
            ))
        })
    });
}

fn bench_reconstruction(c: &mut Criterion) {
    let eco = eco().eco;
    let lics = {
        use hft_uls::UlsPortal;
        eco.db.licensee_search("New Line Networks")
    };
    c.bench_function("reconstruct_nln_snapshot", |b| {
        b.iter(|| {
            black_box(hft_core::reconstruct(
                black_box(&lics),
                "New Line Networks",
                report::snapshot_date(),
                &Default::default(),
            ))
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let eco = eco().eco;
    let text = hft_uls::flatfile::encode(eco.db.licenses());
    let mut g = c.benchmark_group("flatfile");
    g.sample_size(20);
    g.bench_function("encode_full_corpus", |b| {
        b.iter(|| black_box(hft_uls::flatfile::encode(black_box(eco.db.licenses()))))
    });
    g.bench_function("decode_full_corpus", |b| {
        b.iter(|| black_box(hft_uls::flatfile::decode(black_box(&text)).unwrap()))
    });
    g.finish();
}

fn bench_leo_snapshot(c: &mut Criterion) {
    let shell = hft_leo::Constellation::starlink_like();
    let a = hft_leo::GroundStation::new("FRA", 50.1109, 8.6821).unwrap();
    let b = hft_leo::GroundStation::new("DC", 38.9072, -77.0369).unwrap();
    let mut g = c.benchmark_group("leo");
    g.sample_size(20);
    g.bench_function("constellation_snapshot_route", |bch| {
        bch.iter(|| black_box(shell.route(black_box(&a), black_box(&b), 0.0)))
    });
    g.finish();
}

fn bench_design_tradeoffs(c: &mut Criterion) {
    // The §6 link-length tradeoff as an ablation: designing and
    // evaluating corridors of varying density/redundancy.
    use hft_core::corridor::{CME, EQUINIX_NY4};
    use hft_core::design::{design_corridor, evaluate, DesignSpec};
    let mut grp = c.benchmark_group("ablate_design");
    grp.sample_size(20);
    for (label, spec) in [
        (
            "lean_unprotected",
            DesignSpec {
                primary_towers: 15,
                protected_fraction: 0.0,
                ..Default::default()
            },
        ),
        (
            "dense_protected",
            DesignSpec {
                primary_towers: 40,
                protected_fraction: 1.0,
                ..Default::default()
            },
        ),
    ] {
        grp.bench_function(label, |b| {
            b.iter(|| {
                let net = design_corridor(&CME, &EQUINIX_NY4, black_box(&spec));
                black_box(evaluate(&net, &CME, &EQUINIX_NY4))
            })
        });
    }
    grp.finish();
}

fn bench_disjoint_pair(c: &mut Criterion) {
    let net = report::network_of(eco(), "Webline Holdings", report::snapshot_date());
    let rg = hft_core::route::RoutingGraph::build(
        &net,
        &hft_core::corridor::CME,
        &hft_core::corridor::EQUINIX_NY4,
    );
    c.bench_function("suurballe_disjoint_pair", |b| {
        b.iter(|| {
            black_box(hft_netgraph::disjoint_shortest_pair(
                &rg.graph,
                rg.source,
                rg.target,
                |_, e| e.latency_s(),
            ))
        })
    });
}

criterion_group!(
    substrates,
    bench_geodesics,
    bench_pruning_ablation,
    bench_routing,
    bench_reconstruction,
    bench_codec,
    bench_leo_snapshot,
    bench_design_tradeoffs,
    bench_disjoint_pair,
);
criterion_main!(substrates);
