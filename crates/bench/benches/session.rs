//! Cold-vs-warm benchmark for the [`AnalysisSession`] engine: the same
//! Table-1 + evolution sweep, once against a fresh session per iteration
//! (every network reconstructed from scratch) and once against a shared
//! warmed session (everything answered from the epoch cache). Results
//! are printed and written to `BENCH_session.json` at the workspace root
//! so the speedup is tracked alongside the code.

use criterion::{black_box, Criterion};
use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hftnetview::report;
use std::sync::OnceLock;

fn eco() -> &'static GeneratedEcosystem {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    ECO.get_or_init(|| generate(&chicago_nj(), REPRO_SEED))
}

/// Timed calls per bench: `HFT_BENCH_SAMPLES` when set (CI smoke runs
/// pass 1), otherwise 10.
fn sample_size() -> usize {
    std::env::var("HFT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// The measured workload: the Table-1 leaderboard plus the nine-date
/// Fig-1/2 evolution sweep — the two heaviest reconstruction consumers.
fn sweep(analysis: &report::Analysis<'_>) -> usize {
    let rows = report::table1(analysis);
    let series = report::evolution(analysis);
    rows.len() + series.len()
}

fn bench_cold(c: &mut Criterion) {
    let eco = eco();
    let mut g = c.benchmark_group("session");
    g.sample_size(sample_size());
    g.bench_function("table1_evolution_cold", |b| {
        b.iter(|| {
            // A fresh session per call: every epoch reconstructs anew.
            let analysis = report::Analysis::new(eco);
            black_box(sweep(&analysis))
        })
    });
    g.finish();
}

fn bench_warm(c: &mut Criterion) {
    let eco = eco();
    let analysis = report::Analysis::new(eco);
    sweep(&analysis); // prime the caches once, outside the timing loop
    let mut g = c.benchmark_group("session");
    g.sample_size(sample_size());
    g.bench_function("table1_evolution_warm", |b| {
        b.iter(|| black_box(sweep(black_box(&analysis))))
    });
    g.finish();
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_cold(&mut criterion);
    bench_warm(&mut criterion);

    let results = criterion.results();
    let mut entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"id\": \"{}\", \"mean_s\": {:.9}, \"samples\": {}}}",
                json_escape(&r.id),
                r.mean_s(),
                r.samples.len()
            )
        })
        .collect();
    let cold = results
        .iter()
        .find(|r| r.id.ends_with("_cold"))
        .map(|r| r.mean_s());
    let warm = results
        .iter()
        .find(|r| r.id.ends_with("_warm"))
        .map(|r| r.mean_s());
    if let (Some(cold), Some(warm)) = (cold, warm) {
        if warm > 0.0 {
            entries.push(format!(
                "  {{\"id\": \"session/cold_over_warm_speedup\", \"mean_s\": {:.3}, \"samples\": 0}}",
                cold / warm
            ));
            println!("session cold/warm speedup: {:.1}x", cold / warm);
        }
    }
    let json = format!("{{\n\"results\": [\n{}\n]\n}}\n", entries.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_session.json");
    std::fs::write(path, json).expect("write BENCH_session.json");
    println!("wrote {path}");
}
