//! Telemetry overhead benchmark: the ISSUE's <5% hot-path budget.
//!
//! Measures the serve hot path — warm cached `Service::handle` calls on
//! the route/APA mix — with the telemetry runtime enabled versus killed
//! via `hft_obs::set_enabled(false)` (the runtime proxy for the `off`
//! compile-out feature), plus the raw primitive costs (counter incr,
//! histogram record, span enter/exit). A second phase self-hosts an
//! evented server and round-trips the same mix over the binary wire
//! with the trace recorder off (stride 0) versus capturing every
//! request (stride 1) — the distributed-tracing overhead on the
//! bin/evented hot path, budget 2%. Writes `BENCH_obs.json` at the
//! workspace root with `obs/handle_overhead_pct` (ceiling 5) and
//! `obs/trace_overhead_pct` (ceiling 2) entries; both are clamped at
//! the 0% noise floor (the raw signed deltas ride along as `_raw_`
//! entries). Set `HFT_BENCH_SAMPLES` to shrink the sample count (CI
//! smoke runs use 1).

use criterion::{black_box, Criterion};
use hft_bench::REPRO_SEED;
use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hft_serve::api::Request;
use hft_serve::{Client, IoMode, Proto, ServeConfig, Server, Service};
use hft_time::Date;
use std::sync::OnceLock;

fn eco() -> &'static GeneratedEcosystem {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    ECO.get_or_init(|| generate(&chicago_nj(), REPRO_SEED))
}

/// Timed calls per bench: `HFT_BENCH_SAMPLES` when set (CI smoke passes
/// 1), otherwise 30.
fn sample_size() -> usize {
    std::env::var("HFT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

/// The warm request mix: cache hits in the session plus the cheap
/// index-backed searches — the steady-state shape the overhead budget
/// is written against.
fn warm_mix(licensee: &str) -> Vec<Request> {
    let date = Date::new(2020, 4, 1).unwrap();
    vec![
        Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        },
        Request::Route {
            licensee: licensee.into(),
            date,
            from: "CME".into(),
            to: "NY4".into(),
        },
        Request::Apa {
            licensee: licensee.into(),
            date,
            from: "CME".into(),
            to: "NY4".into(),
        },
    ]
}

fn bench_handle(c: &mut Criterion, service: &Service, mix: &[Request], id: &str) {
    let mut g = c.benchmark_group("obs");
    g.sample_size(sample_size());
    g.bench_function(id, |b| {
        b.iter(|| {
            for request in mix {
                black_box(service.handle(black_box(request)));
            }
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion, suffix: &str) {
    let registry = hft_obs::global();
    let counter = registry.counter("bench.obs.counter");
    let histogram = registry.histogram("bench.obs.histogram_ns");
    let mut g = c.benchmark_group("obs");
    g.sample_size(sample_size());
    g.bench_function(format!("counter_incr_{suffix}"), |b| {
        b.iter(|| counter.incr())
    });
    g.bench_function(format!("histogram_record_{suffix}"), |b| {
        let mut v = 1u64;
        b.iter(|| {
            histogram.record(black_box(v));
            v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493) >> 11;
        })
    });
    g.bench_function(format!("span_{suffix}"), |b| {
        b.iter(|| {
            let _span = hft_obs::span("bench.obs.span");
        })
    });
    g.finish();
}

/// The tracing-overhead phase: self-host an evented server and drive
/// the warm mix over the binary wire — the exact hot path the <2%
/// trace budget is written against — first with the recorder off
/// (sample stride 0, contexts unsampled) then capturing every request
/// (stride 1: root span, queue.wait annotation, ring write per call).
fn bench_wire(c: &mut Criterion, service: &Service, mix: &[Request]) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 64,
        io: IoMode::Evented,
        ..ServeConfig::default()
    })
    .expect("bind bench server");
    let addr = server.local_addr().expect("bench server addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run_with(service));
        let mut client = Client::connect_with(&addr, Proto::Binary).expect("connect bench client");
        for request in mix {
            client.call(request).expect("warm round trip");
        }

        let mut g = c.benchmark_group("obs");
        g.sample_size(sample_size());
        hft_obs::set_trace_sample_every(0);
        g.bench_function("wire_untraced", |b| {
            b.iter(|| {
                for request in mix {
                    black_box(
                        client
                            .call(black_box(request))
                            .expect("untraced round trip"),
                    );
                }
            })
        });
        hft_obs::set_trace_sample_every(1);
        g.bench_function("wire_traced", |b| {
            b.iter(|| {
                for request in mix {
                    black_box(client.call(black_box(request)).expect("traced round trip"));
                }
            })
        });
        g.finish();

        hft_obs::set_trace_sample_every(64);
        hft_obs::clear_traces();
        client
            .call(&Request::Shutdown)
            .expect("shutdown bench server");
        handle
            .join()
            .expect("bench server thread")
            .expect("bench server exit");
    });
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Median of a bench's samples. The enabled/disabled comparison sits
/// in single-digit percents, well under scheduler-noise outliers, so
/// the mean would let one preempted sample flip the verdict's sign.
fn median(results: &[criterion::BenchResult], id: &str) -> Option<f64> {
    let r = results.iter().find(|r| r.id == id)?;
    let mut samples = r.samples.clone();
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    Some(samples[samples.len() / 2])
}

fn main() {
    let eco = eco();
    let licensee = eco.connected_2020.first().expect("modeled networks");
    let mix = warm_mix(licensee);

    // Slow-query capture would retain every handle() tree if the bench
    // machine stalls; push the threshold out of reach so the rings stay
    // bounded and the comparison measures recording, not draining.
    hft_obs::set_slow_threshold_ns(u64::MAX);

    let service = Service::new(&eco.db);
    // Warm the session caches so both arms measure the cached path.
    for request in &mix {
        service.handle(request);
    }

    let mut criterion = Criterion::default().configure_from_args();

    hft_obs::set_enabled(true);
    bench_handle(&mut criterion, &service, &mix, "handle_warm_enabled");
    bench_primitives(&mut criterion, "enabled");

    hft_obs::set_enabled(false);
    bench_handle(&mut criterion, &service, &mix, "handle_warm_disabled");
    bench_primitives(&mut criterion, "disabled");
    hft_obs::set_enabled(true);
    bench_wire(&mut criterion, &service, &mix);
    hft_obs::take_samples();

    let results = criterion.results();
    let mut entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"id\": \"{}\", \"mean_s\": {:.9}, \"samples\": {}}}",
                json_escape(&r.id),
                r.mean_s(),
                r.samples.len()
            )
        })
        .collect();
    // Both overhead deltas sit inside scheduler noise on a quiet warm
    // mix, so the raw signed delta can dip negative (the instrumented
    // arm drew the luckier samples). A negative overhead is physically
    // meaningless — report max(0, delta) as the headline and keep the
    // raw value alongside so the noise floor stays visible.
    let mut overhead = |on: &str, off: &str, id: &str, what: &str, budget: u32| {
        let (Some(on), Some(off)) = (median(results, on), median(results, off)) else {
            return;
        };
        if off <= 0.0 {
            return;
        }
        let raw_pct = (on - off) / off * 100.0;
        let overhead_pct = raw_pct.max(0.0);
        entries.push(format!(
            "  {{\"id\": \"obs/{id}_pct\", \"mean_s\": {overhead_pct:.3}, \"samples\": 0}}"
        ));
        entries.push(format!(
            "  {{\"id\": \"obs/{id}_raw_pct\", \"mean_s\": {raw_pct:.3}, \"samples\": 0}}"
        ));
        println!(
            "{what}: {overhead_pct:.2}% (raw {raw_pct:+.2}%, clamped at the 0% noise floor; budget {budget}%)"
        );
    };
    overhead(
        "obs/handle_warm_enabled",
        "obs/handle_warm_disabled",
        "handle_overhead",
        "telemetry overhead on warm handle()",
        5,
    );
    overhead(
        "obs/wire_traced",
        "obs/wire_untraced",
        "trace_overhead",
        "tracing overhead on warm bin/evented round trips",
        2,
    );
    let json = format!("{{\n\"results\": [\n{}\n]\n}}\n", entries.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}
