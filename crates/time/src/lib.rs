//! # hft-time
//!
//! Minimal civil-date support for reasoning about FCC license timelines.
//!
//! FCC Universal Licensing System (ULS) records carry *dates only* (grant,
//! cancellation, expiration), formatted `MM/DD/YYYY`. Reconstructing a
//! network "as of" an arbitrary date therefore needs nothing more than a
//! total order on civil dates plus day arithmetic for timelines — no time
//! zones, no clocks. This crate provides exactly that, from scratch, on the
//! proleptic Gregorian calendar.
//!
//! The central type is [`Date`]; its canonical scalar form is the
//! [`Date::to_ordinal`] day number (days since 0001-01-01 in the proleptic
//! Gregorian calendar, with that epoch having ordinal `1`, matching Python's
//! `datetime.date.toordinal`, which the original paper's tooling used).
//!
//! ```
//! use hft_time::Date;
//! let granted = Date::parse_fcc("06/17/2015").unwrap();
//! let asof = Date::new(2020, 4, 1).unwrap();
//! assert!(granted <= asof);
//! assert_eq!(asof - granted, 1750); // days elapsed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod date;
mod parse;
mod range;

pub use date::{Date, DateError, Weekday};
pub use parse::ParseDateError;
pub use range::{paper_sample_dates, DateRange, YearIter};
