//! Civil date type and day arithmetic on the proleptic Gregorian calendar.

use core::fmt;
use core::ops::{Add, Sub};

/// Error produced when constructing a [`Date`] from invalid components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateError {
    /// Year outside the supported range `1..=9999`.
    YearOutOfRange(i32),
    /// Month outside `1..=12`.
    MonthOutOfRange(u32),
    /// Day outside the valid range for the given year/month.
    DayOutOfRange {
        /// Year component of the rejected date.
        year: i32,
        /// Month component of the rejected date.
        month: u32,
        /// Day component of the rejected date.
        day: u32,
    },
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DateError::YearOutOfRange(y) => write!(f, "year {y} outside 1..=9999"),
            DateError::MonthOutOfRange(m) => write!(f, "month {m} outside 1..=12"),
            DateError::DayOutOfRange { year, month, day } => {
                write!(f, "day {day} invalid for {year:04}-{month:02}")
            }
        }
    }
}

impl std::error::Error for DateError {}

/// Day of the week, ISO numbering (`Monday = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday = 1,
    Tuesday = 2,
    Wednesday = 3,
    Thursday = 4,
    Friday = 5,
    Saturday = 6,
    Sunday = 7,
}

/// A civil date on the proleptic Gregorian calendar.
///
/// Internally stored as `(year, month, day)`; ordering and arithmetic go
/// through the ordinal day number, so comparisons are exact and cheap.
///
/// The supported range is years `1..=9999`, far exceeding the 2012–2020
/// span of the datasets this workspace manipulates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i16,
    month: u8,
    day: u8,
}

const DAYS_IN_MONTH: [u32; 13] = [0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
/// Cumulative days before each month in a non-leap year (index 1..=12).
const DAYS_BEFORE_MONTH: [u32; 13] = [0, 0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

/// True iff `year` is a leap year in the Gregorian calendar.
pub(crate) fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub(crate) fn days_in_month(year: i32, month: u32) -> u32 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[month as usize]
    }
}

/// Days in `year` (365 or 366).
fn days_in_year(year: i32) -> i64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

/// Number of days before January 1st of `year`, counting from year 1.
fn days_before_year(year: i32) -> i64 {
    let y = (year - 1) as i64;
    y * 365 + y / 4 - y / 100 + y / 400
}

impl Date {
    /// The earliest supported date, `0001-01-01` (ordinal 1).
    pub const MIN: Date = Date {
        year: 1,
        month: 1,
        day: 1,
    };
    /// The latest supported date, `9999-12-31`.
    pub const MAX: Date = Date {
        year: 9999,
        month: 12,
        day: 31,
    };

    /// Construct a date from year/month/day components, validating ranges.
    pub fn new(year: i32, month: u32, day: u32) -> Result<Date, DateError> {
        if !(1..=9999).contains(&year) {
            return Err(DateError::YearOutOfRange(year));
        }
        if !(1..=12).contains(&month) {
            return Err(DateError::MonthOutOfRange(month));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::DayOutOfRange { year, month, day });
        }
        Ok(Date {
            year: year as i16,
            month: month as u8,
            day: day as u8,
        })
    }

    /// Year component (`1..=9999`).
    pub fn year(self) -> i32 {
        self.year as i32
    }

    /// Month component (`1..=12`).
    pub fn month(self) -> u32 {
        self.month as u32
    }

    /// Day-of-month component (`1..=31`).
    pub fn day(self) -> u32 {
        self.day as u32
    }

    /// Proleptic-Gregorian ordinal: days since 0001-01-01, where that epoch
    /// date itself has ordinal `1` (compatible with Python's
    /// `date.toordinal`).
    pub fn to_ordinal(self) -> i64 {
        let mut n = days_before_year(self.year());
        n += DAYS_BEFORE_MONTH[self.month as usize] as i64;
        if self.month > 2 && is_leap(self.year()) {
            n += 1;
        }
        n + self.day as i64
    }

    /// Inverse of [`Date::to_ordinal`]. Returns `None` outside the
    /// supported range.
    pub fn from_ordinal(ordinal: i64) -> Option<Date> {
        if !(1..=Date::MAX.to_ordinal()).contains(&ordinal) {
            return None;
        }
        // 400-year Gregorian cycle = 146_097 days.
        let mut n = ordinal - 1;
        let n400 = n / 146_097;
        n %= 146_097;
        let mut year = (n400 * 400 + 1) as i32;
        // Walk years; at most 400 iterations, but narrow first by centuries.
        let n100 = (n / 36_524).min(3);
        n -= n100 * 36_524;
        year += (n100 * 100) as i32;
        let n4 = (n / 1461).min(24);
        n -= n4 * 1461;
        year += (n4 * 4) as i32;
        loop {
            let dy = days_in_year(year);
            if n < dy {
                break;
            }
            n -= dy;
            year += 1;
        }
        // `n` is now the zero-based day-of-year.
        let leap = is_leap(year);
        let mut month = 1u32;
        loop {
            let mut dm = DAYS_IN_MONTH[month as usize] as i64;
            if month == 2 && leap {
                dm += 1;
            }
            if n < dm {
                break;
            }
            n -= dm;
            month += 1;
        }
        Some(Date {
            year: year as i16,
            month: month as u8,
            day: (n + 1) as u8,
        })
    }

    /// One day later; saturates at [`Date::MAX`].
    pub fn succ(self) -> Date {
        Date::from_ordinal(self.to_ordinal() + 1).unwrap_or(Date::MAX)
    }

    /// One day earlier; saturates at [`Date::MIN`].
    pub fn pred(self) -> Date {
        Date::from_ordinal(self.to_ordinal() - 1).unwrap_or(Date::MIN)
    }

    /// Day of the week (0001-01-01 was a Monday in the proleptic calendar).
    pub fn weekday(self) -> Weekday {
        match (self.to_ordinal() - 1).rem_euclid(7) {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// Zero-based fractional position of this date within its year, in
    /// `[0, 1)`. Useful for plotting timelines with a continuous x-axis.
    pub fn year_fraction(self) -> f64 {
        let jan1 = Date::new(self.year(), 1, 1).expect("year already validated");
        (self.to_ordinal() - jan1.to_ordinal()) as f64 / days_in_year(self.year()) as f64
    }

    /// The date as a continuous decimal year (e.g. 2020-04-01 → ~2020.249).
    pub fn decimal_year(self) -> f64 {
        self.year() as f64 + self.year_fraction()
    }

    /// Add `days` (may be negative), saturating at the supported range.
    pub fn add_days(self, days: i64) -> Date {
        let o = self.to_ordinal().saturating_add(days);
        if o < 1 {
            Date::MIN
        } else {
            Date::from_ordinal(o).unwrap_or(Date::MAX)
        }
    }

    /// ISO-8601 `YYYY-MM-DD`.
    pub fn to_iso(self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// FCC ULS style `MM/DD/YYYY`.
    pub fn to_fcc(self) -> String {
        format!("{:02}/{:02}/{:04}", self.month, self.day, self.year)
    }

    /// Compact digits-only `YYYYMMDD`, zero-padded so lexicographic order
    /// equals chronological order — used for daily-dump file names.
    pub fn to_compact(self) -> String {
        format!("{:04}{:02}{:02}", self.year, self.month, self.day)
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({})", self.to_iso())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_iso())
    }
}

impl Sub for Date {
    type Output = i64;

    /// Number of days from `rhs` to `self` (positive when `self` is later).
    fn sub(self, rhs: Date) -> i64 {
        self.to_ordinal() - rhs.to_ordinal()
    }
}

impl Add<i64> for Date {
    type Output = Date;

    fn add(self, days: i64) -> Date {
        self.add_days(days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_ordinal_is_one() {
        assert_eq!(Date::new(1, 1, 1).unwrap().to_ordinal(), 1);
    }

    #[test]
    fn known_ordinals_match_python_toordinal() {
        // Values computed with CPython's datetime.date.toordinal.
        assert_eq!(Date::new(2020, 4, 1).unwrap().to_ordinal(), 737_516);
        assert_eq!(Date::new(2013, 1, 1).unwrap().to_ordinal(), 734_869);
        assert_eq!(Date::new(2000, 3, 1).unwrap().to_ordinal(), 730_180);
        assert_eq!(Date::new(1970, 1, 1).unwrap().to_ordinal(), 719_163);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(is_leap(2016));
        assert!(is_leap(2020));
        assert!(!is_leap(1900));
        assert!(!is_leap(2019));
        assert!(!is_leap(2100));
    }

    #[test]
    fn february_lengths() {
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2019, 2), 28);
        assert!(Date::new(2020, 2, 29).is_ok());
        assert!(Date::new(2019, 2, 29).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(Date::new(0, 1, 1).is_err());
        assert!(Date::new(10_000, 1, 1).is_err());
        assert!(Date::new(2020, 0, 1).is_err());
        assert!(Date::new(2020, 13, 1).is_err());
        assert!(Date::new(2020, 4, 31).is_err());
        assert!(Date::new(2020, 4, 0).is_err());
    }

    #[test]
    fn ordinal_round_trip_over_paper_era() {
        let start = Date::new(2011, 1, 1).unwrap().to_ordinal();
        let end = Date::new(2021, 12, 31).unwrap().to_ordinal();
        for o in start..=end {
            let d = Date::from_ordinal(o).expect("in range");
            assert_eq!(d.to_ordinal(), o, "round trip failed at {d}");
        }
    }

    #[test]
    fn from_ordinal_rejects_out_of_range() {
        assert_eq!(Date::from_ordinal(0), None);
        assert_eq!(Date::from_ordinal(-5), None);
        assert_eq!(Date::from_ordinal(Date::MAX.to_ordinal() + 1), None);
    }

    #[test]
    fn date_subtraction_counts_days() {
        let a = Date::new(2020, 4, 1).unwrap();
        let b = Date::new(2013, 1, 1).unwrap();
        assert_eq!(a - b, 2647);
        assert_eq!(b - a, -2647);
    }

    #[test]
    fn succ_pred_cross_boundaries() {
        let d = Date::new(2019, 12, 31).unwrap();
        assert_eq!(d.succ(), Date::new(2020, 1, 1).unwrap());
        assert_eq!(
            Date::new(2020, 3, 1).unwrap().pred(),
            Date::new(2020, 2, 29).unwrap()
        );
        assert_eq!(Date::MAX.succ(), Date::MAX);
        assert_eq!(Date::MIN.pred(), Date::MIN);
    }

    #[test]
    fn weekday_known_values() {
        // 2020-04-01 was a Wednesday.
        assert_eq!(Date::new(2020, 4, 1).unwrap().weekday(), Weekday::Wednesday);
        // 2000-01-01 was a Saturday.
        assert_eq!(Date::new(2000, 1, 1).unwrap().weekday(), Weekday::Saturday);
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::new(2015, 6, 17).unwrap();
        let b = Date::new(2015, 6, 18).unwrap();
        let c = Date::new(2016, 1, 1).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn decimal_year_examples() {
        let jan1 = Date::new(2020, 1, 1).unwrap();
        assert!((jan1.decimal_year() - 2020.0).abs() < 1e-12);
        let apr1 = Date::new(2020, 4, 1).unwrap();
        // 31+29+31 = 91 days into a 366-day year.
        assert!((apr1.decimal_year() - (2020.0 + 91.0 / 366.0)).abs() < 1e-12);
    }

    #[test]
    fn add_days_saturates() {
        assert_eq!(Date::MAX.add_days(10), Date::MAX);
        assert_eq!(Date::MIN.add_days(-10), Date::MIN);
        let d = Date::new(2020, 2, 28).unwrap();
        assert_eq!(d.add_days(2), Date::new(2020, 3, 1).unwrap());
    }

    #[test]
    fn display_formats() {
        let d = Date::new(2020, 4, 1).unwrap();
        assert_eq!(d.to_iso(), "2020-04-01");
        assert_eq!(d.to_fcc(), "04/01/2020");
        assert_eq!(format!("{d}"), "2020-04-01");
        assert_eq!(format!("{d:?}"), "Date(2020-04-01)");
    }
}
