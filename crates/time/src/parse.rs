//! Parsing of the date formats found in FCC ULS exports and our own files.

use crate::date::Date;
use core::fmt;

/// Error from parsing a textual date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDateError {
    /// The string did not match the expected shape (separators/lengths).
    Malformed(String),
    /// Components parsed but formed an impossible calendar date.
    Invalid(String),
}

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDateError::Malformed(s) => write!(f, "malformed date string {s:?}"),
            ParseDateError::Invalid(s) => write!(f, "impossible calendar date {s:?}"),
        }
    }
}

impl std::error::Error for ParseDateError {}

fn parse_u32(s: &str) -> Option<u32> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

impl Date {
    /// Parse the FCC ULS `MM/DD/YYYY` format.
    ///
    /// ULS exports occasionally omit leading zeros (`6/3/2015`); both forms
    /// are accepted. Empty strings are *not* accepted here — ULS uses the
    /// empty field to mean "no such event", which callers model as
    /// `Option<Date>` before reaching this parser.
    pub fn parse_fcc(s: &str) -> Result<Date, ParseDateError> {
        let mut it = s.split('/');
        let (m, d, y) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(m), Some(d), Some(y), None) => (m, d, y),
            _ => return Err(ParseDateError::Malformed(s.to_string())),
        };
        let (m, d, y) = match (parse_u32(m), parse_u32(d), parse_u32(y)) {
            (Some(m), Some(d), Some(y)) if y <= 9999 => (m, d, y),
            _ => return Err(ParseDateError::Malformed(s.to_string())),
        };
        Date::new(y as i32, m, d).map_err(|_| ParseDateError::Invalid(s.to_string()))
    }

    /// Parse a compact `YYYYMMDD` string produced by [`Date::to_compact`].
    ///
    /// Exactly eight ASCII digits are required; calendar validity rules are
    /// the same as [`Date::new`].
    pub fn parse_compact(s: &str) -> Result<Date, ParseDateError> {
        if s.len() != 8 || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseDateError::Malformed(s.to_string()));
        }
        let (y, m, d) = match (parse_u32(&s[..4]), parse_u32(&s[4..6]), parse_u32(&s[6..8])) {
            (Some(y), Some(m), Some(d)) => (y, m, d),
            _ => return Err(ParseDateError::Malformed(s.to_string())),
        };
        Date::new(y as i32, m, d).map_err(|_| ParseDateError::Invalid(s.to_string()))
    }

    /// Parse ISO-8601 `YYYY-MM-DD`.
    pub fn parse_iso(s: &str) -> Result<Date, ParseDateError> {
        let mut it = s.split('-');
        let (y, m, d) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(y), Some(m), Some(d), None) => (y, m, d),
            _ => return Err(ParseDateError::Malformed(s.to_string())),
        };
        if y.len() != 4 || m.len() != 2 || d.len() != 2 {
            return Err(ParseDateError::Malformed(s.to_string()));
        }
        let (y, m, d) = match (parse_u32(y), parse_u32(m), parse_u32(d)) {
            (Some(y), Some(m), Some(d)) => (y, m, d),
            _ => return Err(ParseDateError::Malformed(s.to_string())),
        };
        Date::new(y as i32, m, d).map_err(|_| ParseDateError::Invalid(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_zero_padded() {
        assert_eq!(
            Date::parse_fcc("04/01/2020").unwrap(),
            Date::new(2020, 4, 1).unwrap()
        );
    }

    #[test]
    fn fcc_unpadded() {
        assert_eq!(
            Date::parse_fcc("6/3/2015").unwrap(),
            Date::new(2015, 6, 3).unwrap()
        );
    }

    #[test]
    fn fcc_rejects_garbage() {
        for s in [
            "",
            "04/01",
            "04/01/2020/9",
            "aa/bb/cccc",
            "04-01-2020",
            "4//2020",
            "04/01/99999",
        ] {
            assert!(
                matches!(Date::parse_fcc(s), Err(ParseDateError::Malformed(_))),
                "{s:?}"
            );
        }
    }

    #[test]
    fn fcc_rejects_impossible_dates() {
        for s in ["02/30/2020", "13/01/2020", "00/10/2020", "06/00/2019"] {
            assert!(
                matches!(Date::parse_fcc(s), Err(ParseDateError::Invalid(_))),
                "{s:?}"
            );
        }
    }

    #[test]
    fn iso_round_trip() {
        let d = Date::new(2016, 1, 1).unwrap();
        assert_eq!(Date::parse_iso(&d.to_iso()).unwrap(), d);
    }

    #[test]
    fn iso_requires_padding() {
        assert!(Date::parse_iso("2016-1-1").is_err());
        assert!(Date::parse_iso("16-01-01").is_err());
    }

    #[test]
    fn fcc_round_trip() {
        let d = Date::new(2013, 11, 30).unwrap();
        assert_eq!(Date::parse_fcc(&d.to_fcc()).unwrap(), d);
    }

    #[test]
    fn compact_round_trip() {
        let d = Date::new(2017, 6, 3).unwrap();
        assert_eq!(d.to_compact(), "20170603");
        assert_eq!(Date::parse_compact(&d.to_compact()).unwrap(), d);
    }

    #[test]
    fn compact_orders_lexicographically() {
        let a = Date::new(2013, 12, 31).unwrap();
        let b = Date::new(2014, 1, 1).unwrap();
        assert!(a.to_compact() < b.to_compact());
    }

    #[test]
    fn compact_rejects_garbage() {
        for s in ["", "2020-4-1", "202004011", "2020401", "20200a01"] {
            assert!(
                matches!(Date::parse_compact(s), Err(ParseDateError::Malformed(_))),
                "{s:?}"
            );
        }
        assert!(matches!(
            Date::parse_compact("20200230"),
            Err(ParseDateError::Invalid(_))
        ));
    }
}
