//! Date ranges and sampling helpers for longitudinal analyses.

use crate::date::Date;

/// A half-open range of dates `[start, end)`, mirroring how a license is
/// active from its grant date up to (but excluding) its cancellation or
/// termination date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DateRange {
    /// Inclusive start.
    pub start: Date,
    /// Exclusive end; `None` means open-ended ("still active").
    pub end: Option<Date>,
}

impl DateRange {
    /// A range active from `start` with no scheduled end.
    pub fn open(start: Date) -> DateRange {
        DateRange { start, end: None }
    }

    /// A bounded range `[start, end)`. Returns `None` when `end <= start`
    /// (an empty or inverted range, which a caller almost certainly did not
    /// intend for a license lifetime).
    pub fn bounded(start: Date, end: Date) -> Option<DateRange> {
        (end > start).then_some(DateRange {
            start,
            end: Some(end),
        })
    }

    /// Whether `date` falls inside the range.
    pub fn contains(&self, date: Date) -> bool {
        date >= self.start && self.end.is_none_or(|e| date < e)
    }

    /// Length in days, or `None` if open-ended.
    pub fn days(&self) -> Option<i64> {
        self.end.map(|e| e - self.start)
    }

    /// Intersection of two ranges, or `None` when disjoint/empty.
    pub fn intersect(&self, other: &DateRange) -> Option<DateRange> {
        let start = self.start.max(other.start);
        let end = match (self.end, other.end) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        match end {
            Some(e) if e <= start => None,
            e => Some(DateRange { start, end: e }),
        }
    }
}

/// Iterator over January-1st sample points for each year in `start..=end`,
/// the sampling the paper uses for its longitudinal figures (Figs 1 & 2).
#[derive(Debug, Clone)]
pub struct YearIter {
    next_year: i32,
    last_year: i32,
}

impl YearIter {
    /// Sample points on January 1st of every year in `start_year..=end_year`.
    pub fn new(start_year: i32, end_year: i32) -> YearIter {
        YearIter {
            next_year: start_year,
            last_year: end_year,
        }
    }
}

impl Iterator for YearIter {
    type Item = Date;

    fn next(&mut self) -> Option<Date> {
        if self.next_year > self.last_year {
            return None;
        }
        let d = Date::new(self.next_year, 1, 1).ok()?;
        self.next_year += 1;
        Some(d)
    }
}

/// The exact sampling used throughout the paper: January 1st of 2013..2019
/// plus the paper's snapshot date, April 1st 2020.
pub fn paper_sample_dates() -> Vec<Date> {
    let mut v: Vec<Date> = YearIter::new(2013, 2020).collect();
    v.push(Date::new(2020, 4, 1).expect("static date"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    #[test]
    fn open_range_contains_everything_after_start() {
        let r = DateRange::open(d(2015, 6, 1));
        assert!(!r.contains(d(2015, 5, 31)));
        assert!(r.contains(d(2015, 6, 1)));
        assert!(r.contains(d(2099, 1, 1)));
        assert_eq!(r.days(), None);
    }

    #[test]
    fn bounded_range_is_half_open() {
        let r = DateRange::bounded(d(2013, 1, 1), d(2018, 1, 1)).unwrap();
        assert!(r.contains(d(2013, 1, 1)));
        assert!(r.contains(d(2017, 12, 31)));
        assert!(!r.contains(d(2018, 1, 1)));
        assert_eq!(r.days(), Some(1826));
    }

    #[test]
    fn bounded_rejects_empty_and_inverted() {
        assert!(DateRange::bounded(d(2015, 1, 1), d(2015, 1, 1)).is_none());
        assert!(DateRange::bounded(d(2016, 1, 1), d(2015, 1, 1)).is_none());
    }

    #[test]
    fn intersect_overlapping() {
        let a = DateRange::bounded(d(2013, 1, 1), d(2016, 1, 1)).unwrap();
        let b = DateRange::bounded(d(2015, 1, 1), d(2020, 1, 1)).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.start, d(2015, 1, 1));
        assert_eq!(i.end, Some(d(2016, 1, 1)));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = DateRange::bounded(d(2013, 1, 1), d(2014, 1, 1)).unwrap();
        let b = DateRange::bounded(d(2014, 1, 1), d(2015, 1, 1)).unwrap();
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn intersect_with_open() {
        let a = DateRange::open(d(2015, 1, 1));
        let b = DateRange::bounded(d(2010, 1, 1), d(2016, 1, 1)).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.start, d(2015, 1, 1));
        assert_eq!(i.end, Some(d(2016, 1, 1)));
        let c = DateRange::open(d(2020, 1, 1));
        assert!(c.intersect(&b).is_none());
    }

    #[test]
    fn year_iter_yields_january_firsts() {
        let v: Vec<Date> = YearIter::new(2013, 2016).collect();
        assert_eq!(
            v,
            vec![d(2013, 1, 1), d(2014, 1, 1), d(2015, 1, 1), d(2016, 1, 1)]
        );
    }

    #[test]
    fn paper_sampling_matches_figures() {
        let v = paper_sample_dates();
        assert_eq!(v.len(), 9);
        assert_eq!(v[0], d(2013, 1, 1));
        assert_eq!(v[7], d(2020, 1, 1));
        assert_eq!(v[8], d(2020, 4, 1));
    }
}
