//! Property-based tests for civil-date invariants.

use hft_time::{Date, DateRange};
use proptest::prelude::*;

/// Strategy producing arbitrary valid dates across the full supported range.
fn arb_date() -> impl Strategy<Value = Date> {
    (1i64..=Date::MAX.to_ordinal()).prop_map(|o| Date::from_ordinal(o).unwrap())
}

proptest! {
    #[test]
    fn ordinal_round_trip(d in arb_date()) {
        prop_assert_eq!(Date::from_ordinal(d.to_ordinal()).unwrap(), d);
    }

    #[test]
    fn ordinal_is_monotone(a in arb_date(), b in arb_date()) {
        prop_assert_eq!(a.cmp(&b), a.to_ordinal().cmp(&b.to_ordinal()));
    }

    #[test]
    fn succ_increments_ordinal(d in arb_date()) {
        prop_assume!(d < Date::MAX);
        prop_assert_eq!(d.succ().to_ordinal(), d.to_ordinal() + 1);
        prop_assert_eq!(d.succ().pred(), d);
    }

    #[test]
    fn iso_text_round_trip(d in arb_date()) {
        prop_assert_eq!(Date::parse_iso(&d.to_iso()).unwrap(), d);
    }

    #[test]
    fn fcc_text_round_trip(d in arb_date()) {
        prop_assert_eq!(Date::parse_fcc(&d.to_fcc()).unwrap(), d);
    }

    #[test]
    fn add_days_then_subtract_days(d in arb_date(), k in -3650i64..3650) {
        let shifted = d.add_days(k);
        // Only exact when no saturation occurred.
        if shifted > Date::MIN && shifted < Date::MAX {
            prop_assert_eq!(shifted - d, k);
        }
    }

    #[test]
    fn range_contains_respects_bounds(a in arb_date(), len in 1i64..5000, probe in arb_date()) {
        let end = a.add_days(len);
        prop_assume!(end > a);
        let r = DateRange::bounded(a, end).unwrap();
        prop_assert_eq!(r.contains(probe), probe >= a && probe < end);
    }

    #[test]
    fn intersect_is_commutative(a in arb_date(), la in 1i64..4000, b in arb_date(), lb in 1i64..4000) {
        let ra = DateRange::bounded(a, a.add_days(la));
        let rb = DateRange::bounded(b, b.add_days(lb));
        if let (Some(ra), Some(rb)) = (ra, rb) {
            prop_assert_eq!(ra.intersect(&rb), rb.intersect(&ra));
        }
    }

    #[test]
    fn intersect_subset_of_both(a in arb_date(), la in 1i64..4000, b in arb_date(), lb in 1i64..4000, probe in arb_date()) {
        let ra = DateRange::bounded(a, a.add_days(la));
        let rb = DateRange::bounded(b, b.add_days(lb));
        if let (Some(ra), Some(rb)) = (ra, rb) {
            if let Some(i) = ra.intersect(&rb) {
                if i.contains(probe) {
                    prop_assert!(ra.contains(probe) && rb.contains(probe));
                }
            }
        }
    }

    #[test]
    fn decimal_year_within_year(d in arb_date()) {
        let dy = d.decimal_year();
        prop_assert!(dy >= d.year() as f64);
        prop_assert!(dy < d.year() as f64 + 1.0);
    }
}
