//! The TCP transport: a scoped-thread server wrapping [`Service`]
//! behind the length-prefixed wire protocol.
//!
//! Each connection gets a reader thread (decode frames, admit to the
//! pool) and a writer thread (publish responses strictly in request
//! order). Ordering under overload is preserved by pushing an already
//! filled `Overloaded` slot into the connection's outbox, so a rejected
//! request still answers in its arrival position. `stats` and
//! `shutdown` requests bypass the admission queue — they must work
//! precisely when the queue is full.
//!
//! Shutdown is a protocol message, not a signal: any client may send
//! `shutdown`, which stops the accept loop, closes the queue (pending
//! jobs still drain), and lets every thread unwind cleanly.

use crate::api::{Request, Response};
use crate::live::LiveService;
use crate::pool::{Queue, ResponseSlot, SubmitError};
use crate::service::{Handler, Service};
use crate::stats::ServeSnapshot;
use crate::wire::{self, FrameEvent, FrameReader};
use hft_ingest::SnapshotStore;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long blocking reads wait before handlers re-check the shutdown
/// flag. Bounds shutdown latency; never torn frames (see [`FrameReader`]).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:4710` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue depth; submissions beyond this answer `Overloaded`.
    pub queue_depth: usize,
    /// Maximum accepted frame body size in bytes.
    pub max_frame: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:4710".to_string(),
            workers: 4,
            queue_depth: 64,
            max_frame: wire::DEFAULT_MAX_FRAME,
        }
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets tests
/// bind port 0 and learn the real address before spawning clients.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
}

impl Server {
    /// Bind the listening socket.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server { listener, config })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve a fixed corpus until a `shutdown` request arrives, then
    /// drain and return the final serving-layer counters.
    pub fn run(&self, db: &hft_uls::UlsDatabase) -> io::Result<ServeSnapshot> {
        let service = Service::new(db);
        self.run_with(&service)
    }

    /// Serve a live corpus: requests answer against the store's current
    /// generation, swapping engines as the ingest applier publishes.
    /// Returns when a `shutdown` request arrives.
    pub fn run_live(&self, store: &Arc<SnapshotStore>) -> io::Result<ServeSnapshot> {
        let live = LiveService::new(Arc::clone(store));
        self.run_with(&live)
    }

    /// Serve with any [`Handler`] until a `shutdown` request arrives,
    /// then drain and return the final serving-layer counters.
    pub fn run_with<H: Handler>(&self, service: &H) -> io::Result<ServeSnapshot> {
        let queue = Queue::new(self.config.queue_depth);
        let shutdown = AtomicBool::new(false);
        self.listener.set_nonblocking(true)?;

        let result: io::Result<()> = std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| queue.worker(service));
            }
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let queue = &queue;
                        let shutdown = &shutdown;
                        let max_frame = self.config.max_frame;
                        scope.spawn(move || {
                            // Per-connection IO errors (resets, broken
                            // pipes) end that connection, not the server.
                            let _ = handle_connection(stream, service, queue, shutdown, max_frame);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shutdown.store(true, Ordering::SeqCst);
                        queue.close();
                        return Err(e);
                    }
                }
            }
            queue.close();
            Ok(())
        });
        result?;
        Ok(service.serve_stats().snapshot())
    }
}

/// The in-order response outbox shared by a connection's reader and
/// writer threads.
struct Outbox {
    inner: Mutex<OutboxInner>,
    ready: Condvar,
}

struct OutboxInner {
    slots: VecDeque<Arc<ResponseSlot>>,
    closed: bool,
}

impl Outbox {
    fn new() -> Outbox {
        Outbox {
            inner: Mutex::new(OutboxInner {
                slots: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, slot: Arc<ResponseSlot>) {
        self.inner.lock().expect("outbox").slots.push_back(slot);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.inner.lock().expect("outbox").closed = true;
        self.ready.notify_one();
    }

    /// Pop the oldest pending slot; `None` once closed and drained.
    fn next(&self) -> Option<Arc<ResponseSlot>> {
        let mut inner = self.inner.lock().expect("outbox");
        loop {
            if let Some(slot) = inner.slots.pop_front() {
                return Some(slot);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("outbox wait");
        }
    }

    fn is_empty(&self) -> bool {
        self.inner.lock().expect("outbox").slots.is_empty()
    }
}

fn handle_connection<H: Handler>(
    stream: TcpStream,
    service: &H,
    queue: &Queue,
    shutdown: &AtomicBool,
    max_frame: usize,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let write_half = stream.try_clone()?;
    let mut read_half = stream;
    let outbox = Outbox::new();

    std::thread::scope(|scope| {
        let outbox = &outbox;
        scope.spawn(move || {
            let _ = writer_loop(write_half, outbox);
        });

        let mut frames = FrameReader::new();
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let body = match frames.read_from(&mut read_half, max_frame) {
                Ok(FrameEvent::Frame(body)) => body,
                Ok(FrameEvent::Idle) => continue,
                Ok(FrameEvent::Eof) => break,
                Ok(FrameEvent::Oversized(len)) => {
                    // The stream is desynchronized past this point:
                    // answer, then hang up.
                    service.serve_stats().on_received();
                    outbox.push(ResponseSlot::filled(Response::Error {
                        message: format!("oversized frame: {len} bytes (max {max_frame})"),
                    }));
                    break;
                }
                Err(_) => break,
            };
            service.serve_stats().on_received();
            let request = match Request::decode(&body) {
                Ok(request) => request,
                Err(message) => {
                    outbox.push(ResponseSlot::filled(Response::Error {
                        message: format!("bad request: {message}"),
                    }));
                    continue;
                }
            };
            match request {
                Request::Shutdown => {
                    service.serve_stats().on_completed(false);
                    outbox.push(ResponseSlot::filled(Response::ShuttingDown));
                    shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                Request::Stats => {
                    let response = service.handle(&Request::Stats);
                    service.serve_stats().on_completed(false);
                    outbox.push(ResponseSlot::filled(response));
                }
                Request::Metrics => {
                    // Like `stats`: telemetry must answer even when the
                    // admission queue is saturated.
                    let response = service.handle(&Request::Metrics);
                    service.serve_stats().on_completed(false);
                    outbox.push(ResponseSlot::filled(response));
                }
                request => match queue.submit(request, service.serve_stats()) {
                    Ok(slot) => outbox.push(slot),
                    Err(SubmitError::Overloaded) => {
                        outbox.push(ResponseSlot::filled(Response::Overloaded));
                    }
                    Err(SubmitError::Closed) => {
                        outbox.push(ResponseSlot::filled(Response::ShuttingDown));
                        break;
                    }
                },
            }
        }
        outbox.close();
    });
    Ok(())
}

/// Drain the outbox in order, writing each response as its slot fills.
/// Flushes whenever the outbox runs dry, so serial (ping-pong) clients
/// see no added latency while pipelined clients get batched syscalls.
fn writer_loop(stream: TcpStream, outbox: &Outbox) -> io::Result<()> {
    let mut w = BufWriter::new(stream);
    while let Some(slot) = outbox.next() {
        let response = slot.wait();
        let body = response.encode();
        wire::write_frame(&mut w, &body)?;
        if outbox.is_empty() {
            w.flush()?;
        }
    }
    w.flush()
}

/// A blocking wire client, usable serially (`call`) or pipelined
/// (`send*`/`flush`/`recv`).
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: TcpStream,
    frames: FrameReader,
    max_frame: usize,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            writer: BufWriter::new(stream),
            reader,
            frames: FrameReader::new(),
            max_frame: wire::DEFAULT_MAX_FRAME,
        })
    }

    /// Queue a request without flushing (pipelining).
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        wire::write_frame(&mut self.writer, &request.encode())
    }

    /// Flush queued requests to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Block until the next response arrives.
    pub fn recv(&mut self) -> io::Result<Response> {
        loop {
            match self.frames.read_from(&mut self.reader, self.max_frame)? {
                FrameEvent::Frame(body) => {
                    return Response::decode(&body)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                FrameEvent::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                FrameEvent::Oversized(len) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("oversized response frame: {len} bytes"),
                    ));
                }
                FrameEvent::Idle => continue,
            }
        }
    }

    /// One serial round trip: send, flush, await the response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }
}
