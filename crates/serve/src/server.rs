//! The TCP transport: a server wrapping [`Service`] behind the
//! length-prefixed wire protocol, with two interchangeable data planes.
//!
//! [`IoMode::Evented`] (the default) multiplexes every connection on
//! one readiness loop (see [`crate::evloop`]). [`IoMode::Threaded`]
//! keeps the original model: each connection gets a reader thread
//! (decode frames, admit to the pool) and a writer thread (publish
//! responses strictly in request order). Both planes speak both wire
//! codecs — connections start in JSON and may switch to the binary
//! protocol with a hello frame (see [`crate::binwire`]) — and share the
//! worker pool, admission queue, and every dispatch rule: ordering
//! under overload is preserved by queueing an already-answered
//! `Overloaded` entry in arrival position, and `stats`/`metrics`/
//! `shutdown` requests bypass the admission queue — they must work
//! precisely when the queue is full.
//!
//! Shutdown is a protocol message, not a signal: any client may send
//! `shutdown`, which stops the accept loop, closes the queue (pending
//! jobs still drain), and lets every thread unwind cleanly.

use crate::api::{Request, Response};
use crate::binwire::{self, Proto};
use crate::evloop::ExtraListener;
use crate::live::LiveService;
use crate::pool::{Queue, ResponseSlot, SubmitError};
use crate::service::{Handler, Service};
use crate::stats::ServeSnapshot;
use crate::wire::{self, FrameEvent, FrameReader};
use hft_ingest::SnapshotStore;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long blocking reads wait before handlers re-check the shutdown
/// flag. Bounds shutdown latency; never torn frames (see [`FrameReader`]).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Which transport data plane the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// One readiness loop multiplexing all connections (epoll where
    /// available). The fast path.
    #[default]
    Evented,
    /// Reader + writer thread per connection. The original, simpler
    /// plane; kept as a debuggable reference and comparison baseline.
    Threaded,
}

impl IoMode {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<IoMode> {
        match s {
            "evented" => Some(IoMode::Evented),
            "threaded" => Some(IoMode::Threaded),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            IoMode::Evented => "evented",
            IoMode::Threaded => "threaded",
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:4710` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue depth; submissions beyond this answer `Overloaded`.
    pub queue_depth: usize,
    /// Maximum accepted frame body size in bytes.
    pub max_frame: usize,
    /// The transport data plane.
    pub io: IoMode,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:4710".to_string(),
            workers: 4,
            queue_depth: 64,
            max_frame: wire::DEFAULT_MAX_FRAME,
            io: IoMode::default(),
        }
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets tests
/// bind port 0 and learn the real address before spawning clients.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
}

impl Server {
    /// Bind the listening socket.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server { listener, config })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve a fixed corpus until a `shutdown` request arrives, then
    /// drain and return the final serving-layer counters.
    pub fn run(&self, db: &hft_uls::UlsDatabase) -> io::Result<ServeSnapshot> {
        let service = Service::new(db);
        self.run_with(&service)
    }

    /// Serve a live corpus: requests answer against the store's current
    /// generation, swapping engines as the ingest applier publishes.
    /// Returns when a `shutdown` request arrives.
    pub fn run_live(&self, store: &Arc<SnapshotStore>) -> io::Result<ServeSnapshot> {
        let live = LiveService::new(Arc::clone(store));
        self.run_with(&live)
    }

    /// Serve with any [`Handler`] until a `shutdown` request arrives,
    /// then drain and return the final serving-layer counters.
    pub fn run_with<H: Handler>(&self, service: &H) -> io::Result<ServeSnapshot> {
        self.run_with_extras(service, &[])
    }

    /// Serve with any [`Handler`], multiplexing additional protocol
    /// listeners (e.g. an HTTP explorer) on the same readiness loop,
    /// worker pool, and admission queue. Extra listeners add no
    /// per-connection threads, so they require [`IoMode::Evented`];
    /// the threaded plane rejects them.
    pub fn run_with_extras<H: Handler>(
        &self,
        service: &H,
        extras: &[ExtraListener<'_>],
    ) -> io::Result<ServeSnapshot> {
        match self.config.io {
            IoMode::Evented => self.run_evented(service, extras),
            IoMode::Threaded if extras.is_empty() => self.run_threaded(service),
            IoMode::Threaded => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "extra protocol listeners require the evented io mode",
            )),
        }
    }

    /// The readiness-loop data plane: workers drain the queue, the main
    /// thread runs the event loop (see [`crate::evloop`]).
    fn run_evented<H: Handler>(
        &self,
        service: &H,
        extras: &[ExtraListener<'_>],
    ) -> io::Result<ServeSnapshot> {
        let queue = Queue::new(self.config.queue_depth);
        let result: io::Result<()> = std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| queue.worker(service));
            }
            let r = crate::evloop::drive(&self.listener, service, &queue, &self.config, extras);
            // Closed by the loop on protocol shutdown; close again here
            // so workers also exit on an accept/poll error path.
            queue.close();
            r
        });
        result?;
        Ok(service.serve_stats().snapshot())
    }

    /// The thread-per-connection data plane.
    fn run_threaded<H: Handler>(&self, service: &H) -> io::Result<ServeSnapshot> {
        let queue = Queue::new(self.config.queue_depth);
        let shutdown = AtomicBool::new(false);
        self.listener.set_nonblocking(true)?;

        let result: io::Result<()> = std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| queue.worker(service));
            }
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let queue = &queue;
                        let shutdown = &shutdown;
                        let max_frame = self.config.max_frame;
                        scope.spawn(move || {
                            // Per-connection IO errors (resets, broken
                            // pipes) end that connection, not the server.
                            let _ = handle_connection(stream, service, queue, shutdown, max_frame);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shutdown.store(true, Ordering::SeqCst);
                        queue.close();
                        return Err(e);
                    }
                }
            }
            queue.close();
            Ok(())
        });
        result?;
        Ok(service.serve_stats().snapshot())
    }
}

/// One in-order outbox entry: a pre-encoded frame body (hello-ack) or
/// a response slot tagged with the protocol in force when its request
/// arrived (a mid-pipeline hello must not re-code earlier answers).
enum Outgoing {
    Raw(Vec<u8>),
    Slot(Arc<ResponseSlot>, Proto),
}

/// The in-order response outbox shared by a connection's reader and
/// writer threads.
struct Outbox {
    inner: Mutex<OutboxInner>,
    ready: Condvar,
}

struct OutboxInner {
    entries: VecDeque<Outgoing>,
    closed: bool,
}

impl Outbox {
    fn new() -> Outbox {
        Outbox {
            inner: Mutex::new(OutboxInner {
                entries: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, entry: Outgoing) {
        self.inner.lock().expect("outbox").entries.push_back(entry);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.inner.lock().expect("outbox").closed = true;
        self.ready.notify_one();
    }

    /// Pop the oldest pending entry; `None` once closed and drained.
    fn next(&self) -> Option<Outgoing> {
        let mut inner = self.inner.lock().expect("outbox");
        loop {
            if let Some(entry) = inner.entries.pop_front() {
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("outbox wait");
        }
    }

    fn is_empty(&self) -> bool {
        self.inner.lock().expect("outbox").entries.is_empty()
    }
}

fn handle_connection<H: Handler>(
    stream: TcpStream,
    service: &H,
    queue: &Queue,
    shutdown: &AtomicBool,
    max_frame: usize,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let write_half = stream.try_clone()?;
    let mut read_half = stream;
    let outbox = Outbox::new();
    let decode_ns = hft_obs::global().histogram("serve.decode_ns");

    std::thread::scope(|scope| {
        let outbox = &outbox;
        scope.spawn(move || {
            let _ = writer_loop(write_half, outbox);
        });

        let mut frames = FrameReader::new();
        let mut proto = Proto::default();
        let filled = |response: Response, proto: Proto| {
            Outgoing::Slot(ResponseSlot::filled(response), proto)
        };
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let body = match frames.read_from(&mut read_half, max_frame) {
                Ok(FrameEvent::Frame(body)) => body,
                Ok(FrameEvent::Idle) => continue,
                Ok(FrameEvent::Eof) => break,
                Ok(FrameEvent::Oversized(len)) => {
                    // The stream is desynchronized past this point:
                    // answer, then hang up.
                    service.serve_stats().on_received();
                    outbox.push(filled(
                        Response::Error {
                            message: format!("oversized frame: {len} bytes (max {max_frame})"),
                        },
                        proto,
                    ));
                    break;
                }
                Err(_) => break,
            };
            if let Some(hello) = binwire::parse_hello(&body) {
                match hello {
                    Ok(requested) => {
                        proto = requested;
                        outbox.push(Outgoing::Raw(binwire::hello_ack(requested)));
                    }
                    Err(e) => outbox.push(filled(
                        Response::Error {
                            message: format!("bad hello: {e}"),
                        },
                        proto,
                    )),
                }
                continue;
            }
            service.serve_stats().on_received();
            let started = Instant::now();
            let decoded = binwire::sniff_request(&body);
            decode_ns.record(started.elapsed().as_nanos() as u64);
            let request = match decoded {
                Ok(request) => request,
                Err(message) => {
                    outbox.push(filled(
                        Response::Error {
                            message: format!("bad request: {message}"),
                        },
                        proto,
                    ));
                    continue;
                }
            };
            match request {
                Request::Shutdown => {
                    service.serve_stats().on_completed(false);
                    outbox.push(filled(Response::ShuttingDown, proto));
                    shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                Request::Stats => {
                    let response = service.handle(&Request::Stats);
                    service.serve_stats().on_completed(false);
                    outbox.push(Outgoing::Slot(ResponseSlot::filled(response), proto));
                }
                Request::Metrics | Request::Traces { .. } => {
                    // Like `stats`: telemetry must answer even when the
                    // admission queue is saturated.
                    let response = service.handle(&request);
                    service.serve_stats().on_completed(false);
                    outbox.push(Outgoing::Slot(ResponseSlot::filled(response), proto));
                }
                request => match queue.submit(request, service.serve_stats()) {
                    Ok(slot) => outbox.push(Outgoing::Slot(slot, proto)),
                    Err(SubmitError::Overloaded) => {
                        outbox.push(filled(Response::Overloaded, proto));
                    }
                    Err(SubmitError::Closed) => {
                        outbox.push(filled(Response::ShuttingDown, proto));
                        break;
                    }
                },
            }
        }
        outbox.close();
    });
    Ok(())
}

/// Drain the outbox in order, writing each response as its slot fills.
/// Flushes whenever the outbox runs dry, so serial (ping-pong) clients
/// see no added latency while pipelined clients get batched syscalls.
fn writer_loop(stream: TcpStream, outbox: &Outbox) -> io::Result<()> {
    let mut w = BufWriter::new(stream);
    let encode_ns = hft_obs::global().histogram("serve.encode_ns");
    let mut body = Vec::new();
    while let Some(entry) = outbox.next() {
        body.clear();
        match entry {
            Outgoing::Raw(bytes) => body.extend_from_slice(&bytes),
            Outgoing::Slot(slot, proto) => {
                let response = slot.wait();
                let started = Instant::now();
                binwire::response_bytes_into(proto, &response, &mut body);
                encode_ns.record(started.elapsed().as_nanos() as u64);
            }
        }
        wire::write_frame(&mut w, &body)?;
        if outbox.is_empty() {
            w.flush()?;
        }
    }
    w.flush()
}

/// A blocking wire client, usable serially (`call`) or pipelined
/// (`send*`/`flush`/`recv`), speaking either wire codec.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: TcpStream,
    frames: FrameReader,
    max_frame: usize,
    proto: Proto,
}

impl Client {
    /// Connect to a running server, speaking JSON.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        Client::connect_with(addr, Proto::Json)
    }

    /// Connect and negotiate `proto`. For [`Proto::Binary`] this sends
    /// the hello frame and blocks for the server's acknowledgement, so
    /// a returned client is fully switched over.
    pub fn connect_with(addr: &SocketAddr, proto: Proto) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        let mut client = Client {
            writer: BufWriter::new(stream),
            reader,
            frames: FrameReader::new(),
            max_frame: wire::DEFAULT_MAX_FRAME,
            proto: Proto::Json,
        };
        if proto != Proto::Json {
            wire::write_frame(&mut client.writer, &binwire::hello(proto))?;
            client.writer.flush()?;
            let ack = client.recv_frame()?;
            let granted = binwire::parse_hello_ack(&ack)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if granted != proto {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "server granted {} instead of {}",
                        granted.name(),
                        proto.name()
                    ),
                ));
            }
            client.proto = proto;
        }
        Ok(client)
    }

    /// The protocol this client speaks.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Queue a request without flushing (pipelining).
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        wire::write_frame(
            &mut self.writer,
            &binwire::request_bytes(self.proto, request),
        )
    }

    /// Flush queued requests to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        loop {
            match self.frames.read_from(&mut self.reader, self.max_frame)? {
                FrameEvent::Frame(body) => return Ok(body),
                FrameEvent::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                FrameEvent::Oversized(len) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("oversized response frame: {len} bytes"),
                    ));
                }
                FrameEvent::Idle => continue,
            }
        }
    }

    /// Block until the next response arrives.
    pub fn recv(&mut self) -> io::Result<Response> {
        loop {
            match self.frames.read_from(&mut self.reader, self.max_frame)? {
                FrameEvent::Frame(body) => {
                    return binwire::response_from(self.proto, &body)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                FrameEvent::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                FrameEvent::Oversized(len) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("oversized response frame: {len} bytes"),
                    ));
                }
                FrameEvent::Idle => continue,
            }
        }
    }

    /// One serial round trip: send, flush, await the response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }
}
