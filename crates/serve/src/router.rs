//! The shard router: scatter-gather over N in-process shard workers.
//!
//! A [`ShardRouter`] is a [`Handler`], so the whole wire stack (frames,
//! admission queue, pool workers) runs over a fleet unchanged. Each
//! shard worker is a [`LiveService`] following its own per-shard
//! [`SnapshotStore`](hft_ingest::SnapshotStore) — its own
//! `AnalysisSession`, single-flight group and shard-labeled
//! [`ServeStats`] — over the shard's disjoint piece of the corpus.
//!
//! Routing is licensee-granular, mirroring the partitioner:
//!
//! * **Point-to-point** — single-licensee requests (network, route,
//!   APA, weather) go to the owning shard. Under the licensee-hash
//!   strategy the owner is a pure function of the name (one hop, no
//!   corpus lookup); under the spatial strategy ownership depends on
//!   the corpus, so these broadcast and the owner's answer is selected.
//! * **Scatter-gather** — geographic, site and funnel queries fan out
//!   to every shard and the per-shard answers merge deterministically:
//!   license searches k-way-merge ascending ids, funnel counters sum
//!   (licensee-granular partitioning makes per-shard counts disjoint),
//!   and shortlist names merge sorted. The merged bytes are identical
//!   to a single-corpus [`Service`](crate::service::Service) answer.
//!
//! **Generation-vector pinning:** a scatter captures every shard's
//! current engine in one pass *before* fanning out, so all per-shard
//! computations run against the generation vector that existed when the
//! request started — a publish landing mid-request cannot produce an
//! answer mixing a shard's old corpus with another's new one beyond
//! what the vector already showed at capture time. Callers that need a
//! provably-uniform vector bracket the request with
//! [`ShardedStore::generation_vector`] reads, exactly as single-store
//! clients bracket with the generation counter.

use crate::api::{Request, Response};
use crate::live::LiveService;
use crate::service::{metrics_json, traces_response, Handler, Service};
use crate::stats::ServeStats;
use hft_core::session::StatsSnapshot;
use hft_ingest::ShardedStore;
use hft_uls::shard::{shard_of_licensee, ShardStrategy};
use std::sync::Arc;
use std::time::Instant;

/// A fleet of in-process shard workers behind one [`Handler`]. See the
/// module docs.
pub struct ShardRouter {
    shards: Vec<LiveService>,
    strategy: ShardStrategy,
    /// Transport-level counters (received/queued/completed): the wire
    /// server reports into these; per-shard work reports into each
    /// worker's own labeled stats.
    stats: Arc<ServeStats>,
}

impl ShardRouter {
    /// A router over `store`'s shards, one worker per shard.
    pub fn over(store: &ShardedStore) -> ShardRouter {
        ShardRouter {
            shards: store
                .shards()
                .iter()
                .enumerate()
                .map(|(k, s)| LiveService::for_shard(Arc::clone(s), k as u32))
                .collect(),
            strategy: store.strategy(),
            stats: Arc::new(ServeStats::default()),
        }
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning strategy the fleet routes by.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The shard workers, in shard order.
    pub fn shards(&self) -> &[LiveService] {
        &self.shards
    }

    /// Every shard worker's next-request generation, in shard order.
    pub fn generation_vector(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.store().generation()).collect()
    }

    /// Answer one request. Safe to call from many threads at once.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Stats => self.merged_stats(),
            Request::Metrics => Response::Metrics {
                registry: metrics_json(),
            },
            // The flight recorder is process-wide, so the router answers
            // directly — its records already contain stitched shard spans.
            Request::Traces { limit, trace_id } => traces_response(*limit, *trace_id),
            Request::Shutdown => Response::ShuttingDown,
            Request::Network { licensee, .. }
            | Request::Route { licensee, .. }
            | Request::Apa { licensee, .. }
            | Request::Weather { licensee, .. }
            | Request::Race { licensee, .. }
            | Request::StretchSweep { licensee, .. } => self.single(licensee, req),
            Request::Geographic { .. } | Request::SiteSearch { .. } | Request::Shortlist { .. } => {
                let responses = self.scatter(req);
                let _merge = hft_obs::span("router.merge");
                merge_scatter(req, responses)
            }
        }
    }

    /// Route a single-licensee request to its owning shard, or — when
    /// ownership is not name-computable — broadcast and keep the
    /// owner's answer.
    fn single(&self, licensee: &str, req: &Request) -> Response {
        if self.shards.len() == 1 {
            let _leg = hft_obs::span_sharded("shard.call", 0);
            return self.call(0, &self.shards[0].engine(), req);
        }
        if self.strategy.routes_by_name() {
            let k = shard_of_licensee(licensee, self.shards.len()) as usize;
            let _leg = hft_obs::span_sharded("shard.call", k as u32);
            self.call(k, &self.shards[k].engine(), req)
        } else {
            let responses = self.scatter(req);
            let _merge = hft_obs::span("router.merge");
            merge_owned(responses)
        }
    }

    /// Fan a request out to every shard against a pinned generation
    /// vector, returning per-shard answers in shard order. Each leg's
    /// span subtree is captured on the worker thread against the
    /// coordinator's trace clock and grafted back under `router.scatter`
    /// — the cross-shard stitch that lets a waterfall name the straggler.
    fn scatter(&self, req: &Request) -> Vec<Response> {
        // Pin the generation vector: one engine capture per shard, all
        // before any shard computes.
        let engines: Vec<Arc<Service<'static>>> = self.shards.iter().map(|s| s.engine()).collect();
        if engines.len() == 1 {
            let _leg = hft_obs::span_sharded("shard.call", 0);
            return vec![self.call(0, &engines[0], req)];
        }
        let _scatter = hft_obs::span("router.scatter");
        let base = hft_obs::current_root_start();
        let legs: Vec<(Response, Option<hft_obs::SpanTree>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = engines
                .iter()
                .enumerate()
                .map(|(k, engine)| {
                    scope.spawn(move || match base {
                        Some(base) => {
                            hft_obs::capture_from("shard.call", base, Some(k as u32), || {
                                self.call(k, engine, req)
                            })
                        }
                        None => (self.call(k, engine, req), None),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        legs.into_iter()
            .map(|(response, tree)| {
                if let Some(tree) = tree {
                    hft_obs::graft(tree);
                }
                response
            })
            .collect()
    }

    /// One shard call, reported into the shard's labeled counters (the
    /// router is the shard workers' transport).
    fn call(&self, k: usize, engine: &Service<'static>, req: &Request) -> Response {
        let stats = self.shards[k].stats();
        stats.on_received();
        let started = Instant::now();
        let response = engine.handle(req);
        stats.on_service(started.elapsed().as_nanos() as u64);
        stats.on_completed(matches!(response, Response::Error { .. }));
        response
    }

    /// The fleet-wide `stats` answer: transport counters from the
    /// router, single-flight/swap counters summed over shard workers,
    /// session cache counters summed over current shard engines.
    fn merged_stats(&self) -> Response {
        let mut serve = self.stats.snapshot();
        let mut session = StatsSnapshot::default();
        for shard in &self.shards {
            let s = shard.stats().snapshot();
            serve.flights_led += s.flights_led;
            serve.flights_coalesced += s.flights_coalesced;
            serve.generation_swaps += s.generation_swaps;
            let c = shard.engine().session().stats();
            session.network_hits += c.network_hits;
            session.reconstructions += c.reconstructions;
            session.route_hits += c.route_hits;
            session.route_misses += c.route_misses;
            session.apa_hits += c.apa_hits;
            session.apa_misses += c.apa_misses;
            session.graph_hits += c.graph_hits;
            session.graph_misses += c.graph_misses;
        }
        Response::Stats { serve, session }
    }
}

impl Handler for ShardRouter {
    fn handle(&self, req: &Request) -> Response {
        ShardRouter::handle(self, req)
    }

    fn serve_stats(&self) -> &ServeStats {
        &self.stats
    }
}

/// Merge scatter answers for geographic/site/funnel requests into the
/// single-corpus bytes. Shard answers arrive in shard order; every
/// merge rule below is order-free over disjoint inputs, so the result
/// does not depend on which shard answered first.
fn merge_scatter(req: &Request, responses: Vec<Response>) -> Response {
    debug_assert!(!responses.is_empty());
    match req {
        Request::Geographic { .. } | Request::SiteSearch { .. } => {
            let mut ids: Vec<u64> = Vec::new();
            for r in responses {
                match r {
                    Response::Licenses { ids: mut part } => ids.append(&mut part),
                    // Request-shaped errors (bad coordinates) are
                    // corpus-independent: every shard produced the same
                    // bytes, so returning one of them is the merge.
                    other => return other,
                }
            }
            // Disjoint sorted runs → one sorted list, as a single
            // corpus would canonically order it.
            ids.sort_unstable();
            Response::Licenses { ids }
        }
        Request::Shortlist { .. } => {
            let mut geographic_candidates = 0u64;
            let mut service_filtered = 0u64;
            let mut shortlisted = 0u64;
            let mut names: Vec<String> = Vec::new();
            for r in responses {
                match r {
                    Response::Shortlist {
                        geographic_candidates: g,
                        service_filtered: f,
                        shortlisted: s,
                        names: mut n,
                    } => {
                        // Licensee-granular partitioning: each licensee
                        // is counted by exactly one shard, so funnel
                        // counters sum without double counting.
                        geographic_candidates += g;
                        service_filtered += f;
                        shortlisted += s;
                        names.append(&mut n);
                    }
                    other => return other,
                }
            }
            names.sort_unstable();
            Response::Shortlist {
                geographic_candidates,
                service_filtered,
                shortlisted,
                names,
            }
        }
        _ => unreachable!("merge_scatter only sees scatter-gather requests"),
    }
}

/// Select the owning shard's answer from a single-licensee broadcast.
///
/// Non-owning shards see no licenses under the name and return exactly
/// the bytes a single corpus returns for an unknown licensee (zero
/// network, all-`None` route, `None` APA, the same no-route error), so:
/// the first *substantive* answer is the owner's, and when there is
/// none every answer is byte-identical and the first stands in for all.
fn merge_owned(responses: Vec<Response>) -> Response {
    debug_assert!(!responses.is_empty());
    let owned = responses.iter().position(|r| match r {
        Response::Network {
            towers,
            links,
            active_licenses,
            ..
        } => *towers > 0 || *links > 0 || *active_licenses > 0,
        Response::Route {
            latency_ms,
            towers,
            length_m,
        } => latency_ms.is_some() || towers.is_some() || length_m.is_some(),
        Response::Apa { apa } => apa.is_some(),
        Response::Weather { .. } => true,
        // A race's corpus-dependent leg is the microwave one; every
        // other field (fiber, LEO, vacuum bound) is pure geometry that
        // non-owning shards reproduce byte-identically.
        Response::Race { microwave_ms, .. } => microwave_ms.is_some(),
        Response::StretchSweep { entries } => entries.iter().any(|e| e.mw_stretch.is_some()),
        _ => false,
    });
    let idx = owned.unwrap_or(0);
    responses
        .into_iter()
        .nth(idx)
        .expect("selected index is in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use hft_geodesy::LatLon;
    use hft_time::Date;
    use hft_uls::{
        CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService,
        StationClass, TowerSite, UlsDatabase,
    };

    fn lic(id: u64, name: &str, lat: f64, lon: f64) -> License {
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id:05}")),
            licensee: name.into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: Date::new(2015, 1, 1).unwrap(),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx: TowerSite::at(LatLon::new(lat, lon).unwrap()),
                rx: TowerSite::at(LatLon::new(lat + 0.2, lon + 0.3).unwrap()),
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        }
    }

    fn corpus() -> UlsDatabase {
        // Ids deliberately out of geographic order so canonical id
        // sorting does real work.
        UlsDatabase::from_licenses(vec![
            lic(9, "Alpha Networks", 41.0, -88.0),
            lic(2, "Beta Microwave", 41.3, -87.8),
            lic(7, "Alpha Networks", 41.6, -87.4),
            lic(4, "Gamma Wireless", 41.9, -87.1),
            lic(5, "Delta Relay", 42.2, -86.8),
        ])
    }

    fn requests() -> Vec<Request> {
        vec![
            Request::Geographic {
                lat_deg: 41.5,
                lon_deg: -87.5,
                radius_km: 200.0,
            },
            Request::Geographic {
                lat_deg: 200.0,
                lon_deg: 0.0,
                radius_km: 10.0,
            },
            Request::SiteSearch {
                service: "MG".into(),
                class: "FXO".into(),
            },
            Request::Shortlist {
                lat_deg: 41.5,
                lon_deg: -87.5,
                radius_km: 500.0,
                min_filings: 1,
            },
            Request::Network {
                licensee: "Alpha Networks".into(),
                date: Date::new(2016, 1, 1).unwrap(),
            },
            Request::Network {
                licensee: "Nobody Known".into(),
                date: Date::new(2016, 1, 1).unwrap(),
            },
            Request::Route {
                licensee: "Alpha Networks".into(),
                date: Date::new(2016, 1, 1).unwrap(),
                from: "CME".into(),
                to: "NY4".into(),
            },
            Request::Apa {
                licensee: "Beta Microwave".into(),
                date: Date::new(2016, 1, 1).unwrap(),
                from: "CME".into(),
                to: "BAD".into(),
            },
            Request::Race {
                licensee: "Alpha Networks".into(),
                date: Date::new(2016, 1, 1).unwrap(),
                from: "CME".into(),
                to: "NY4".into(),
                constellation: "starlink".into(),
                samples: 50,
                seed: 7,
            },
            Request::Race {
                licensee: "Nobody Known".into(),
                date: Date::new(2016, 1, 1).unwrap(),
                from: "CME".into(),
                to: "NYSE".into(),
                constellation: "starlink".into(),
                samples: 50,
                seed: 7,
            },
            Request::Race {
                licensee: "Alpha Networks".into(),
                date: Date::new(2016, 1, 1).unwrap(),
                from: "CME".into(),
                to: "NY4".into(),
                constellation: "iridium".into(),
                samples: 50,
                seed: 7,
            },
            Request::StretchSweep {
                licensee: "Alpha Networks".into(),
                date: Date::new(2016, 1, 1).unwrap(),
                constellation: "starlink".into(),
            },
        ]
    }

    #[test]
    fn sharded_answers_match_single_corpus_bytes() {
        let db = corpus();
        let single = Service::new(&db);
        for strategy in [ShardStrategy::LicenseeHash, ShardStrategy::SpatialCell] {
            for n in [1usize, 2, 3, 5] {
                let store = ShardedStore::seeded(&db, n, strategy, None);
                let router = ShardRouter::over(&store);
                for req in requests() {
                    let got = router.handle(&req).encode();
                    let want = single.handle(&req).encode();
                    assert_eq!(got, want, "{strategy:?} n={n} req={req:?}");
                }
            }
        }
    }

    #[test]
    fn router_follows_per_shard_generations() {
        let db = corpus();
        let store = ShardedStore::seeded(&db, 3, ShardStrategy::LicenseeHash, None);
        let router = ShardRouter::over(&store);
        let geo = Request::Geographic {
            lat_deg: 41.5,
            lon_deg: -87.5,
            radius_km: 500.0,
        };
        let before = match router.handle(&geo) {
            Response::Licenses { ids } => ids,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(before, vec![2, 4, 5, 7, 9]);

        // Publish a grown corpus through the fleet; the router must
        // answer from the new generation vector.
        let mut grown: Vec<License> = db.licenses().to_vec();
        grown.push(lic(1, "Epsilon Beam", 41.1, -87.9));
        let next = UlsDatabase::from_licenses(grown);
        assert_eq!(store.publish_full(&next, None), 1);
        assert_eq!(router.generation_vector(), vec![1, 1, 1]);
        let after = match router.handle(&geo) {
            Response::Licenses { ids } => ids,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(after, vec![1, 2, 4, 5, 7, 9]);

        // And the sharded answer still matches a single corpus of the
        // same generation.
        let single = Service::new(&next);
        assert_eq!(router.handle(&geo).encode(), single.handle(&geo).encode());
    }

    #[test]
    fn shard_workers_report_labeled_counters() {
        let db = corpus();
        let store = ShardedStore::seeded(&db, 2, ShardStrategy::LicenseeHash, None);
        let router = ShardRouter::over(&store);
        let geo = Request::Geographic {
            lat_deg: 41.5,
            lon_deg: -87.5,
            radius_km: 500.0,
        };
        router.handle(&geo);
        // A scatter touches every shard: each worker's own counters
        // advance (the labeled registry series mirror these atomics).
        for shard in router.shards() {
            let snap = shard.stats().snapshot();
            assert_eq!(snap.received, 1);
            assert_eq!(snap.completed, 1);
        }
        // Point-to-point touches exactly the owning shard.
        let net = Request::Network {
            licensee: "Alpha Networks".into(),
            date: Date::new(2016, 1, 1).unwrap(),
        };
        router.handle(&net);
        let owner = shard_of_licensee("Alpha Networks", 2) as usize;
        assert_eq!(router.shards()[owner].stats().snapshot().received, 2);
        assert_eq!(router.shards()[1 - owner].stats().snapshot().received, 1);
    }

    #[test]
    fn merged_stats_aggregate_across_shards() {
        let db = corpus();
        let store = ShardedStore::seeded(&db, 2, ShardStrategy::LicenseeHash, None);
        let router = ShardRouter::over(&store);
        let net = Request::Network {
            licensee: "Alpha Networks".into(),
            date: Date::new(2016, 1, 1).unwrap(),
        };
        router.handle(&net);
        router.handle(&net);
        match router.handle(&Request::Stats) {
            Response::Stats { serve, session } => {
                assert_eq!(serve.flights_led, 2);
                assert_eq!(session.reconstructions, 1);
                assert_eq!(session.network_hits, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
