//! The length-prefixed wire framing: a 4-byte big-endian length
//! followed by that many bytes of UTF-8 JSON.
//!
//! Frames above a configurable cap are rejected *before* allocation —
//! the length is validated from the header — so a hostile or corrupted
//! peer cannot make the server balloon. Reading tolerates socket read
//! timeouts mid-frame by accumulating into a buffer ([`FrameReader`]),
//! which lets connection handlers poll a shutdown flag between reads
//! without ever tearing a partially received frame.

use std::io::{self, Read, Write};

/// Default maximum frame body size (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Write one frame: 4-byte big-endian length, then the body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)
}

/// One step of [`FrameReader::read_from`].
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly (at a frame boundary).
    Eof,
    /// The declared length exceeds the cap; the stream is unusable.
    Oversized(u32),
    /// A read timed out (socket read-timeout) with no complete frame
    /// buffered; the caller may poll shutdown flags and try again.
    Idle,
}

/// Incremental frame decoder over a byte stream.
///
/// Keeps partial data across calls, so socket read timeouts between (or
/// even inside) frames never lose bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Append raw bytes (readiness-loop style: the caller owns the
    /// socket and hands bytes over as they arrive).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next buffered frame after [`FrameReader::feed`].
    ///
    /// Returns only [`FrameEvent::Frame`] or [`FrameEvent::Oversized`];
    /// stream conditions (EOF, idle) are the caller's to observe.
    pub fn next(&mut self, max_frame: usize) -> Option<FrameEvent> {
        self.pop(max_frame)
    }

    /// Try to pop one buffered frame without touching the stream.
    fn pop(&mut self, max_frame: usize) -> Option<FrameEvent> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len as usize > max_frame {
            return Some(FrameEvent::Oversized(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return None;
        }
        let body = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Some(FrameEvent::Frame(body))
    }

    /// Read until one frame is complete, EOF, oversize, or a timeout.
    ///
    /// `WouldBlock`/`TimedOut`/`Interrupted` IO errors surface as
    /// [`FrameEvent::Idle`]; other IO errors propagate. EOF in the
    /// middle of a frame is reported as an [`io::ErrorKind::UnexpectedEof`]
    /// error, EOF at a boundary as [`FrameEvent::Eof`].
    pub fn read_from(&mut self, r: &mut impl Read, max_frame: usize) -> io::Result<FrameEvent> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(event) = self.pop(max_frame) {
                return Ok(event);
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(FrameEvent::Eof)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FrameEvent::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Blocking convenience for clients: read exactly one frame, treating
/// timeouts as fatal.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut reader = FrameReader::new();
    match reader.read_from(r, max_frame)? {
        FrameEvent::Frame(body) => Ok(Some(body)),
        FrameEvent::Eof => Ok(None),
        FrameEvent::Oversized(len) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("oversized frame: {len} bytes"),
        )),
        FrameEvent::Idle => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "timed out waiting for a frame",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut cursor = io::Cursor::new(wire);
        let mut reader = FrameReader::new();
        assert_eq!(
            reader.read_from(&mut cursor, 1024).unwrap(),
            FrameEvent::Frame(b"hello".to_vec())
        );
        assert_eq!(
            reader.read_from(&mut cursor, 1024).unwrap(),
            FrameEvent::Frame(b"".to_vec())
        );
        assert_eq!(
            reader.read_from(&mut cursor, 1024).unwrap(),
            FrameEvent::Frame(b"world!".to_vec())
        );
        assert_eq!(
            reader.read_from(&mut cursor, 1024).unwrap(),
            FrameEvent::Eof
        );
    }

    #[test]
    fn oversized_frame_rejected_from_header_alone() {
        // Header declares 100 MiB; only the 4 header bytes exist.
        let wire = (100u32 << 20).to_be_bytes().to_vec();
        let mut cursor = io::Cursor::new(wire);
        let mut reader = FrameReader::new();
        assert_eq!(
            reader.read_from(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            FrameEvent::Oversized(100 << 20)
        );
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"truncated").unwrap();
        wire.truncate(7);
        let mut cursor = io::Cursor::new(wire);
        let mut reader = FrameReader::new();
        let err = reader.read_from(&mut cursor, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn dribbled_bytes_reassemble() {
        // Feed the frame one byte at a time through a reader that
        // returns WouldBlock between bytes — the FrameReader must
        // accumulate across Idle events without losing data.
        struct Dribble {
            data: Vec<u8>,
            pos: usize,
            parity: bool,
        }
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.parity = !self.parity;
                if self.parity {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
                }
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow and steady").unwrap();
        let mut dribble = Dribble {
            data: wire,
            pos: 0,
            parity: false,
        };
        let mut reader = FrameReader::new();
        let mut idles = 0;
        loop {
            match reader.read_from(&mut dribble, 1024).unwrap() {
                FrameEvent::Frame(body) => {
                    assert_eq!(body, b"slow and steady");
                    break;
                }
                FrameEvent::Idle => idles += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(idles > 0, "the dribbling reader must have idled");
    }

    #[test]
    fn read_frame_convenience() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"one").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), Some(b"one".to_vec()));
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), None);
    }
}
