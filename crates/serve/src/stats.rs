//! Serving-layer observability: atomic counters aggregated across
//! connection handlers, pool workers and the single-flight layer, with a
//! consistent-enough snapshot for the `stats` request and the shutdown
//! dump.

use crate::json::Json;
use hft_obs::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic counters of the serving layer. One instance per server,
/// shared by every connection handler and pool worker.
///
/// Every event is dual-written: once into the per-server atomics below
/// (so each server's `stats` answer stays its own), and once into the
/// process-global `hft_obs` registry (so the `metrics` request and the
/// periodic dump see serving alongside session/ingest telemetry). Both
/// writes are relaxed atomic ops; the registry handles are resolved
/// once at construction.
#[derive(Debug, Default)]
pub struct ServeStats {
    received: AtomicU64,
    accepted: AtomicU64,
    rejected_overloaded: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    flights_led: AtomicU64,
    flights_coalesced: AtomicU64,
    queue_wait_ns_total: AtomicU64,
    queue_wait_ns_max: AtomicU64,
    service_ns_total: AtomicU64,
    service_ns_max: AtomicU64,
    queue_high_water: AtomicU64,
    generation_swaps: AtomicU64,
    reg: ServeRegistry,
}

/// Cached global-registry handles for the `serve.*` metric family.
#[derive(Debug)]
struct ServeRegistry {
    received: Arc<Counter>,
    accepted: Arc<Counter>,
    rejected_overloaded: Arc<Counter>,
    completed: Arc<Counter>,
    errors: Arc<Counter>,
    flights_led: Arc<Counter>,
    flights_coalesced: Arc<Counter>,
    generation_swaps: Arc<Counter>,
    queue_high_water: Arc<Gauge>,
    queue_wait_ns: Arc<Histogram>,
    service_ns: Arc<Histogram>,
}

impl Default for ServeRegistry {
    fn default() -> ServeRegistry {
        ServeRegistry::with_shard(None)
    }
}

impl ServeRegistry {
    /// Resolve the `serve.*` handles, suffixed with a `shard` label when
    /// the stats belong to one fleet shard worker.
    fn with_shard(shard: Option<u32>) -> ServeRegistry {
        let r = hft_obs::global();
        let name = |base: &str| match shard {
            None => base.to_string(),
            Some(k) => hft_obs::registry::labeled(base, "shard", &k.to_string()),
        };
        ServeRegistry {
            received: r.counter(&name("serve.received")),
            accepted: r.counter(&name("serve.accepted")),
            rejected_overloaded: r.counter(&name("serve.rejected_overloaded")),
            completed: r.counter(&name("serve.completed")),
            errors: r.counter(&name("serve.errors")),
            flights_led: r.counter(&name("serve.flights_led")),
            flights_coalesced: r.counter(&name("serve.flights_coalesced")),
            generation_swaps: r.counter(&name("serve.generation_swaps")),
            queue_high_water: r.gauge(&name("serve.queue_high_water")),
            queue_wait_ns: r.histogram(&name("serve.queue_wait_ns")),
            service_ns: r.histogram(&name("serve.service_ns")),
        }
    }
}

impl ServeStats {
    /// Stats for one fleet shard worker: the per-server atomics behave
    /// exactly like [`ServeStats::default`], but every dual-written
    /// registry series carries a `shard` label, so shard hot spots are
    /// visible in the process-wide exposition.
    pub fn for_shard(shard: u32) -> ServeStats {
        ServeStats {
            reg: ServeRegistry::with_shard(Some(shard)),
            ..ServeStats::default()
        }
    }

    /// A request arrived (any kind, before admission).
    pub fn on_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
        self.reg.received.incr();
    }

    /// A request was admitted to the queue; `depth` is the queue length
    /// just after the push (tracks the high-water mark).
    pub fn on_accepted(&self, depth: usize) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
        self.reg.accepted.incr();
        self.reg.queue_high_water.record_max(depth as i64);
    }

    /// A request was rejected because the admission queue was full.
    pub fn on_overloaded(&self) {
        self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
        self.reg.rejected_overloaded.incr();
    }

    /// A request finished; `error` marks protocol-level error answers.
    pub fn on_completed(&self, error: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.reg.completed.incr();
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.reg.errors.incr();
        }
    }

    /// A single-flight group resolved: the leader ran the computation.
    pub fn on_flight_led(&self) {
        self.flights_led.fetch_add(1, Ordering::Relaxed);
        self.reg.flights_led.incr();
    }

    /// A request coalesced onto an in-flight leader's computation.
    pub fn on_flight_coalesced(&self) {
        self.flights_coalesced.fetch_add(1, Ordering::Relaxed);
        self.reg.flights_coalesced.incr();
    }

    /// Record how long a request sat in the admission queue.
    pub fn on_queue_wait(&self, ns: u64) {
        self.queue_wait_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.queue_wait_ns_max.fetch_max(ns, Ordering::Relaxed);
        self.reg.queue_wait_ns.record(ns);
    }

    /// Record a request's service (compute + coalesce-wait) time.
    pub fn on_service(&self, ns: u64) {
        self.service_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.service_ns_max.fetch_max(ns, Ordering::Relaxed);
        self.reg.service_ns.record(ns);
    }

    /// A live server swapped to a newly published corpus generation.
    pub fn on_generation_swap(&self) {
        self.generation_swaps.fetch_add(1, Ordering::Relaxed);
        self.reg.generation_swaps.incr();
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> ServeSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeSnapshot {
            received: load(&self.received),
            accepted: load(&self.accepted),
            rejected_overloaded: load(&self.rejected_overloaded),
            completed: load(&self.completed),
            errors: load(&self.errors),
            flights_led: load(&self.flights_led),
            flights_coalesced: load(&self.flights_coalesced),
            queue_wait_ns_total: load(&self.queue_wait_ns_total),
            queue_wait_ns_max: load(&self.queue_wait_ns_max),
            service_ns_total: load(&self.service_ns_total),
            service_ns_max: load(&self.service_ns_max),
            queue_high_water: load(&self.queue_high_water),
            generation_swaps: load(&self.generation_swaps),
        }
    }
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSnapshot {
    /// Requests that reached the server (any kind).
    pub received: u64,
    /// Requests admitted to the worker queue.
    pub accepted: u64,
    /// Requests rejected with `Overloaded` (queue full).
    pub rejected_overloaded: u64,
    /// Requests that produced a response (including errors).
    pub completed: u64,
    /// Responses that were protocol errors.
    pub errors: u64,
    /// Single-flight computations actually run (leaders).
    pub flights_led: u64,
    /// Requests that coalesced onto a leader instead of recomputing.
    pub flights_coalesced: u64,
    /// Total nanoseconds requests spent queued.
    pub queue_wait_ns_total: u64,
    /// Worst single queue wait, ns.
    pub queue_wait_ns_max: u64,
    /// Total nanoseconds spent serving (compute or coalesce-wait).
    pub service_ns_total: u64,
    /// Worst single service time, ns.
    pub service_ns_max: u64,
    /// Deepest the admission queue ever got.
    pub queue_high_water: u64,
    /// Corpus generation swaps performed by a live server (0 for a
    /// fixed-corpus server).
    pub generation_swaps: u64,
}

impl ServeSnapshot {
    /// Mean queue wait in microseconds (0 when nothing completed).
    pub fn mean_queue_wait_us(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.queue_wait_ns_total as f64 / self.accepted as f64 / 1000.0
        }
    }

    /// Mean service time in microseconds (0 when nothing completed).
    pub fn mean_service_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.service_ns_total as f64 / self.completed as f64 / 1000.0
        }
    }

    /// The JSON object form used by the `stats` response and the
    /// shutdown dump. Key order is fixed.
    pub fn to_json(&self) -> Json {
        let u = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("received".into(), u(self.received)),
            ("accepted".into(), u(self.accepted)),
            ("rejected_overloaded".into(), u(self.rejected_overloaded)),
            ("completed".into(), u(self.completed)),
            ("errors".into(), u(self.errors)),
            ("flights_led".into(), u(self.flights_led)),
            ("flights_coalesced".into(), u(self.flights_coalesced)),
            ("queue_wait_ns_total".into(), u(self.queue_wait_ns_total)),
            ("queue_wait_ns_max".into(), u(self.queue_wait_ns_max)),
            ("service_ns_total".into(), u(self.service_ns_total)),
            ("service_ns_max".into(), u(self.service_ns_max)),
            ("queue_high_water".into(), u(self.queue_high_water)),
            ("generation_swaps".into(), u(self.generation_swaps)),
        ])
    }

    /// Inverse of [`ServeSnapshot::to_json`].
    pub fn from_json(v: &Json) -> Result<ServeSnapshot, String> {
        let g = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("serve stats: missing field {key:?}"))
        };
        Ok(ServeSnapshot {
            received: g("received")?,
            accepted: g("accepted")?,
            rejected_overloaded: g("rejected_overloaded")?,
            completed: g("completed")?,
            errors: g("errors")?,
            flights_led: g("flights_led")?,
            flights_coalesced: g("flights_coalesced")?,
            queue_wait_ns_total: g("queue_wait_ns_total")?,
            queue_wait_ns_max: g("queue_wait_ns_max")?,
            service_ns_total: g("service_ns_total")?,
            service_ns_max: g("service_ns_max")?,
            queue_high_water: g("queue_high_water")?,
            // Absent in frames from pre-live servers: default to 0.
            generation_swaps: v
                .get("generation_swaps")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let stats = ServeStats::default();
        stats.on_received();
        stats.on_received();
        stats.on_accepted(1);
        stats.on_accepted(3);
        stats.on_overloaded();
        stats.on_completed(false);
        stats.on_completed(true);
        stats.on_flight_led();
        stats.on_flight_coalesced();
        stats.on_queue_wait(1_000);
        stats.on_queue_wait(5_000);
        stats.on_service(20_000);
        let snap = stats.snapshot();
        assert_eq!(snap.received, 2);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected_overloaded, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.queue_high_water, 3);
        assert_eq!(snap.queue_wait_ns_max, 5_000);
        assert_eq!(snap.mean_queue_wait_us(), 3.0);
        assert_eq!(snap.mean_service_us(), 10.0);
        let back = ServeSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn shard_stats_dual_write_labeled_series() {
        let stats = ServeStats::for_shard(7);
        stats.on_received();
        stats.on_completed(false);
        stats.on_service(1_234);
        stats.on_flight_led();
        let snap = hft_obs::global().snapshot();
        let labeled = |base: &str| hft_obs::registry::labeled(base, "shard", "7");
        // The global registry is shared across the test binary, so
        // assert at-least rather than exactly.
        assert!(snap.counter(&labeled("serve.received")).unwrap_or(0) >= 1);
        assert!(snap.counter(&labeled("serve.completed")).unwrap_or(0) >= 1);
        assert!(snap.counter(&labeled("serve.flights_led")).unwrap_or(0) >= 1);
        let hist = snap.histogram(&labeled("serve.service_ns")).unwrap();
        assert!(hist.count >= 1);
        // The per-server atomics are unaffected by labeling.
        assert_eq!(stats.snapshot().received, 1);
    }
}
