//! A minimal, dependency-free JSON value: deterministic writer and a
//! strict recursive-descent parser.
//!
//! The build environment vendors its external crates and has no `serde`,
//! so the wire codec carries its own JSON. The subset is deliberate:
//!
//! * Objects preserve **insertion order** (a `Vec` of pairs, not a map),
//!   so encoding is byte-deterministic — the load harness compares
//!   served responses byte-for-byte against locally encoded ones.
//! * Numbers are `f64`. Integral values within the exact-`f64` range
//!   print without a fractional part; everything else uses Rust's
//!   shortest round-trip `Display`, which `str::parse::<f64>` inverts
//!   exactly. Non-finite numbers have no JSON form and encode as `null`
//!   (see [`Json::num_or_null`]).
//! * The parser rejects trailing garbage, unterminated strings, bad
//!   escapes, and nesting deeper than [`MAX_DEPTH`] (stack safety on
//!   hostile frames).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A JSON value with order-preserving objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always finite; non-finite values encode as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// `Num` for finite values, `null` for NaN/±∞ (e.g. the weather
    /// Monte Carlo's "mostly disconnected" percentiles).
    pub fn num_or_null(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // 2^53: the largest range where every integer is exactly one f64,
    // so the integral fast path cannot change the value it prints.
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed (position is a byte offset into the input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf-8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (and a following low surrogate
    /// when needed); leaves `pos` after the escape.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_basics() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s".into(), Json::Str("hi \"there\"\n".into())),
            ("f".into(), Json::Num(3.961_71)),
        ]);
        let text = v.encode();
        assert_eq!(
            text,
            r#"{"a":1,"b":[null,true],"s":"hi \"there\"\n","f":3.96171}"#
        );
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for n in [
            0.0,
            -0.0,
            1.5,
            3.961_709_234_117_3,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let text = Json::Num(n).encode();
            let back = parse(&text).unwrap().as_num().unwrap();
            assert_eq!(back, n, "{text}");
        }
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Json::num_or_null(f64::INFINITY), Json::Null);
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\" 1}",
            "[01e]",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let doc = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&doc).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn object_lookup_helpers() {
        let v = parse(r#"{"n":42,"s":"x","a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }
}
