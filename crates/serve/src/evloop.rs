//! The event-driven transport: one readiness loop multiplexing every
//! connection over a [`Poller`](crate::poll::Poller), replacing the
//! two-threads-per-connection model for the hot path.
//!
//! The loop is protocol-agnostic: it owns sockets, readiness, pooled
//! write buffers and vectored flushes, while each connection's *bytes*
//! are interpreted by a [`ConnDriver`]. The wire protocol (length-
//! prefixed frames, hello negotiation, binary codec) is one driver —
//! [`WireDriver`], installed for connections accepted on the primary
//! listener — and additional listeners may be registered with their own
//! [`DriverFactory`] (the HTTP explorer in `hft-http` is one), all
//! multiplexed on the same poller, worker pool and admission queue.
//!
//! Division of labor per event-loop round:
//!
//! 1. drain the [`Waker`](crate::poll::Waker) (pool workers poke it when
//!    they fill a response slot),
//! 2. accept any pending connections on any listener (nonblocking,
//!    until `WouldBlock`), installing the listener's driver,
//! 3. for each readable connection, read raw bytes and hand them to the
//!    driver, which parses incrementally and either answers immediately
//!    or submits work to the admission queue through its [`DriverCx`],
//! 4. pump every connection: the driver encodes answers that are ready
//!    (in request order, into pooled buffers) and the loop pushes bytes
//!    with vectored writes until the socket pushes back, then arms
//!    `EPOLLOUT` and lets readiness resume the flush.
//!
//! Responses are encoded under the protocol that was in force when
//! their request arrived, so a hello mid-pipeline never reorders or
//! re-codes earlier answers. Encode buffers come from a free-list
//! `BufPool` (hit/miss counters + free-list gauge under
//! `serve.bufpool_*`); decode and encode latencies land in
//! `serve.decode_ns`/`serve.encode_ns`, and wake-to-drain latency in
//! `serve.poll_wake_ns`.
//!
//! Shutdown mirrors the threaded path: a `shutdown` request answers
//! `ShuttingDown`, stops every acceptor, closes the admission queue
//! (pending jobs still drain), marks every connection read-closed, and
//! the loop exits once every outstanding response has been flushed.

use crate::api::{Request, Response};
use crate::binwire::{self, Proto};
use crate::poll::{Interest, Poller, SourceFd, Waker};
use crate::pool::{Queue, ResponseSlot, SubmitError};
use crate::server::ServeConfig;
use crate::service::Handler;
use crate::wire::FrameEvent;
use crate::wire::FrameReader;
use hft_obs::{Counter, Gauge, Histogram};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_WAKER: usize = 0;
/// Listener tokens occupy `1..=listener_count`; connections follow.
const TOKEN_LISTENERS: usize = 1;

/// Most buffers retained by the free list; beyond this, buffers are
/// dropped and the allocator gets them back.
const POOL_MAX_FREE: usize = 128;
/// Buffers that grew beyond this capacity are not retained (a single
/// huge metrics dump must not pin a huge free list forever).
const POOL_MAX_RETAINED_CAP: usize = 1 << 18;
/// Most frames combined into one vectored write.
const MAX_IOVECS: usize = 16;

#[cfg(unix)]
fn source_fd(s: &impl std::os::fd::AsRawFd) -> SourceFd {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn source_fd<T>(_s: &T) -> SourceFd {
    -1
}

/// A free list of reusable encode buffers with hit/miss telemetry.
struct BufPool {
    free: Vec<Vec<u8>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    free_gauge: Arc<Gauge>,
}

impl BufPool {
    fn new() -> BufPool {
        let r = hft_obs::global();
        BufPool {
            free: Vec::new(),
            hits: r.counter("serve.bufpool_hits"),
            misses: r.counter("serve.bufpool_misses"),
            free_gauge: r.gauge("serve.bufpool_free"),
        }
    }

    fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.hits.incr();
                self.free_gauge.set(self.free.len() as i64);
                buf
            }
            None => {
                self.misses.incr();
                Vec::with_capacity(4096)
            }
        }
    }

    fn put(&mut self, buf: Vec<u8>) {
        if self.free.len() < POOL_MAX_FREE && buf.capacity() <= POOL_MAX_RETAINED_CAP {
            self.free.push(buf);
            self.free_gauge.set(self.free.len() as i64);
        }
    }
}

/// What a [`ConnDriver`] callback may do: answer through the worker
/// pool, answer inline, push encoded bytes at the socket, and steer the
/// connection/server lifecycle. One `DriverCx` is materialized per
/// callback; it borrows the loop's buffer pool and the connection's
/// write queue, so drivers never own transport state.
pub struct DriverCx<'cx> {
    handler: &'cx dyn Handler,
    queue: &'cx Queue,
    waker: &'cx Arc<Waker>,
    pool: &'cx mut BufPool,
    wq: &'cx mut VecDeque<Vec<u8>>,
    close: bool,
    shutdown: bool,
}

impl DriverCx<'_> {
    /// The query engine serving this loop (shared by every driver).
    pub fn handler(&self) -> &dyn Handler {
        self.handler
    }

    /// Admit a request to the bounded worker pool. The returned slot
    /// fills on a pool worker and pokes the loop's waker; encode it from
    /// the driver's `pump`. Rejections are immediate and explicit.
    pub fn submit(&mut self, request: Request) -> Result<Arc<ResponseSlot>, SubmitError> {
        self.queue.submit_with(
            request,
            self.handler.serve_stats(),
            Some(Arc::clone(self.waker)),
        )
    }

    /// A pooled (cleared) encode buffer.
    pub fn buf(&mut self) -> Vec<u8> {
        self.pool.get()
    }

    /// Queue encoded bytes for the socket, in call order.
    pub fn send(&mut self, buf: Vec<u8>) {
        self.wq.push_back(buf);
    }

    /// Return an unused buffer to the pool.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.pool.put(buf);
    }

    /// Stop reading this connection; queued bytes still flush, then the
    /// socket closes.
    pub fn close_after_flush(&mut self) {
        self.close = true;
    }

    /// Whether this connection has been marked for close (by this
    /// callback or a server shutdown).
    pub fn closing(&self) -> bool {
        self.close || self.shutdown
    }

    /// Begin server shutdown: every acceptor stops, the admission queue
    /// closes (pending jobs still drain), every connection flushes and
    /// closes, then the loop exits.
    pub fn begin_shutdown(&mut self) {
        self.shutdown = true;
    }
}

/// A per-connection protocol state machine driven by the readiness
/// loop. The loop feeds raw bytes in and pumps answers out; the driver
/// owns parsing, request ordering, and response encoding.
pub trait ConnDriver: Send {
    /// Bytes arrived from the peer. Parse incrementally; a partial
    /// message must be retained for the next call.
    fn on_bytes(&mut self, bytes: &[u8], cx: &mut DriverCx<'_>);

    /// The peer half-closed its side cleanly. Queued answers still
    /// flush; the loop closes the connection once drained.
    fn on_eof(&mut self, cx: &mut DriverCx<'_>);

    /// Encode every answer that is ready, in order, via [`DriverCx::send`].
    /// Called once per loop round (slots may have filled, writes may
    /// have unblocked).
    fn pump(&mut self, cx: &mut DriverCx<'_>);

    /// No responses pending: together with an empty write queue this
    /// makes the connection drained for shutdown purposes.
    fn idle(&self) -> bool;
}

/// Creates a [`ConnDriver`] per accepted connection, for listeners
/// registered beside the primary wire listener.
pub trait DriverFactory: Sync {
    /// A driver for one newly accepted connection.
    fn new_conn(&self) -> Box<dyn ConnDriver + '_>;
}

/// An additional listener on the readiness loop, speaking the protocol
/// its factory produces (see [`crate::server::Server::run_with_extras`]).
pub struct ExtraListener<'a> {
    listener: TcpListener,
    factory: &'a dyn DriverFactory,
}

impl<'a> ExtraListener<'a> {
    /// Wrap an already-bound listener.
    pub fn new(listener: TcpListener, factory: &'a dyn DriverFactory) -> ExtraListener<'a> {
        ExtraListener { listener, factory }
    }

    /// Bind `addr` (port 0 picks a free port) for `factory`'s protocol.
    pub fn bind(addr: &str, factory: &'a dyn DriverFactory) -> io::Result<ExtraListener<'a>> {
        Ok(ExtraListener {
            listener: TcpListener::bind(addr)?,
            factory,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }
}

/// One queued wire answer, in request order.
enum Outgoing {
    /// Pre-encoded frame body (the hello-ack).
    Raw(Vec<u8>),
    /// A response known immediately (errors, overload, stats, metrics,
    /// shutting-down), encoded when it reaches the head of the queue.
    Ready(Box<Response>, Proto),
    /// A pool-worker slot; encoded under its protocol once filled.
    Slot(Arc<ResponseSlot>, Proto),
}

/// The length-prefixed wire protocol as a [`ConnDriver`]: hello
/// negotiation, magic-byte codec sniffing, queue-bypassing
/// `stats`/`metrics`, bounded admission for the rest — semantics
/// identical to the threaded reader's (see `server.rs`).
struct WireDriver {
    max_frame: usize,
    frames: FrameReader,
    proto: Proto,
    outq: VecDeque<Outgoing>,
    decode_ns: Arc<Histogram>,
    encode_ns: Arc<Histogram>,
}

impl WireDriver {
    fn new(max_frame: usize, decode_ns: Arc<Histogram>, encode_ns: Arc<Histogram>) -> WireDriver {
        WireDriver {
            max_frame,
            frames: FrameReader::new(),
            proto: Proto::default(),
            outq: VecDeque::new(),
            decode_ns,
            encode_ns,
        }
    }

    /// The dispatch table for one decoded frame.
    fn process_frame(&mut self, body: &[u8], cx: &mut DriverCx<'_>) {
        if let Some(hello) = binwire::parse_hello(body) {
            match hello {
                Ok(proto) => {
                    self.proto = proto;
                    self.outq
                        .push_back(Outgoing::Raw(binwire::hello_ack(proto)));
                }
                Err(e) => self.outq.push_back(Outgoing::Ready(
                    Box::new(Response::Error {
                        message: format!("bad hello: {e}"),
                    }),
                    self.proto,
                )),
            }
            return;
        }
        let stats = cx.handler().serve_stats();
        stats.on_received();
        let started = Instant::now();
        let decoded = binwire::sniff_request(body);
        self.decode_ns.record(started.elapsed().as_nanos() as u64);
        let request = match decoded {
            Ok(request) => request,
            Err(message) => {
                self.outq.push_back(Outgoing::Ready(
                    Box::new(Response::Error {
                        message: format!("bad request: {message}"),
                    }),
                    self.proto,
                ));
                return;
            }
        };
        match request {
            Request::Shutdown => {
                stats.on_completed(false);
                self.outq.push_back(Outgoing::Ready(
                    Box::new(Response::ShuttingDown),
                    self.proto,
                ));
                cx.begin_shutdown();
            }
            Request::Stats | Request::Metrics | Request::Traces { .. } => {
                // Queue-bypassing telemetry: must answer even when the
                // admission queue is saturated.
                let response = cx.handler().handle(&request);
                stats.on_completed(false);
                self.outq
                    .push_back(Outgoing::Ready(Box::new(response), self.proto));
            }
            request => match cx.submit(request) {
                Ok(slot) => self.outq.push_back(Outgoing::Slot(slot, self.proto)),
                Err(SubmitError::Overloaded) => self
                    .outq
                    .push_back(Outgoing::Ready(Box::new(Response::Overloaded), self.proto)),
                Err(SubmitError::Closed) => {
                    self.outq.push_back(Outgoing::Ready(
                        Box::new(Response::ShuttingDown),
                        self.proto,
                    ));
                    cx.close_after_flush();
                }
            },
        }
    }
}

impl ConnDriver for WireDriver {
    fn on_bytes(&mut self, bytes: &[u8], cx: &mut DriverCx<'_>) {
        self.frames.feed(bytes);
        while let Some(event) = self.frames.next(self.max_frame) {
            match event {
                FrameEvent::Frame(body) => {
                    self.process_frame(&body, cx);
                    if cx.closing() {
                        return;
                    }
                }
                FrameEvent::Oversized(len) => {
                    // The stream is desynchronized past this point:
                    // answer, flush, hang up.
                    cx.handler().serve_stats().on_received();
                    self.outq.push_back(Outgoing::Ready(
                        Box::new(Response::Error {
                            message: format!(
                                "oversized frame: {len} bytes (max {})",
                                self.max_frame
                            ),
                        }),
                        self.proto,
                    ));
                    cx.close_after_flush();
                    return;
                }
                // `FrameReader::next` never reports stream conditions.
                FrameEvent::Eof | FrameEvent::Idle => unreachable!(),
            }
        }
    }

    fn on_eof(&mut self, _cx: &mut DriverCx<'_>) {
        // A partial frame at EOF is simply dropped, matching the
        // threaded reader's drain-on-reader-exit.
    }

    fn pump(&mut self, cx: &mut DriverCx<'_>) {
        loop {
            let (response, proto) = match self.outq.front() {
                None => return,
                Some(Outgoing::Raw(_)) => {
                    let Some(Outgoing::Raw(body)) = self.outq.pop_front() else {
                        unreachable!()
                    };
                    let mut buf = cx.buf();
                    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
                    buf.extend_from_slice(&body);
                    cx.send(buf);
                    continue;
                }
                Some(Outgoing::Ready(..)) => {
                    let Some(Outgoing::Ready(response, proto)) = self.outq.pop_front() else {
                        unreachable!()
                    };
                    (*response, proto)
                }
                Some(Outgoing::Slot(slot, proto)) => match slot.try_take() {
                    None => return,
                    Some(response) => {
                        let proto = *proto;
                        self.outq.pop_front();
                        (response, proto)
                    }
                },
            };
            let mut buf = cx.buf();
            let started = Instant::now();
            buf.extend_from_slice(&[0, 0, 0, 0]);
            binwire::response_bytes_into(proto, &response, &mut buf);
            let len = (buf.len() - 4) as u32;
            buf[..4].copy_from_slice(&len.to_be_bytes());
            self.encode_ns.record(started.elapsed().as_nanos() as u64);
            cx.send(buf);
        }
    }

    fn idle(&self) -> bool {
        self.outq.is_empty()
    }
}

/// Per-connection state.
struct Conn<'f> {
    stream: TcpStream,
    fd: SourceFd,
    driver: Box<dyn ConnDriver + 'f>,
    /// Encoded frames awaiting the socket; front may be partially
    /// written (`woff` bytes already gone).
    wq: VecDeque<Vec<u8>>,
    woff: usize,
    want_write: bool,
    /// Stop reading; flush what is queued, then close.
    closing: bool,
    /// Unusable (write error / reset); drop without flushing.
    dead: bool,
}

impl Conn<'_> {
    fn drained(&self) -> bool {
        self.driver.idle() && self.wq.is_empty()
    }
}

/// Run the readiness loop until shutdown. Pool workers must already be
/// draining `queue`; the caller closes the queue after this returns
/// (the loop also closes it when a `shutdown` request arrives, which is
/// what lets pending slots fill during the drain phase). Connections on
/// `listener` speak the wire protocol; each entry in `extras` accepts
/// with its own driver.
pub(crate) fn drive<'f, H: Handler>(
    listener: &TcpListener,
    service: &H,
    queue: &Queue,
    config: &ServeConfig,
    extras: &'f [ExtraListener<'f>],
) -> io::Result<()> {
    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new()?);
    #[cfg(unix)]
    poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;

    let mut listeners: Vec<&TcpListener> = Vec::with_capacity(1 + extras.len());
    listeners.push(listener);
    for extra in extras {
        listeners.push(&extra.listener);
    }
    for (i, l) in listeners.iter().enumerate() {
        l.set_nonblocking(true)?;
        poller.register(source_fd(*l), TOKEN_LISTENERS + i, Interest::READ)?;
    }

    let r = hft_obs::global();
    let mut ev = EvLoop {
        service,
        queue,
        max_frame: config.max_frame,
        extras,
        token_base: TOKEN_LISTENERS + listeners.len(),
        poller,
        waker,
        conns: Vec::new(),
        pool: BufPool::new(),
        decode_ns: r.histogram("serve.decode_ns"),
        encode_ns: r.histogram("serve.encode_ns"),
        shutting_down: false,
    };

    let mut events = Vec::new();
    let mut accept_ready = vec![false; listeners.len()];
    loop {
        let timeout = if ev.shutting_down {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(500)
        };
        ev.poller.wait(&mut events, Some(timeout))?;

        accept_ready.iter_mut().for_each(|a| *a = false);
        for event in &events {
            match event.token {
                TOKEN_WAKER => ev.waker.drain(),
                t if t < ev.token_base => accept_ready[t - TOKEN_LISTENERS] = true,
                t => ev.on_conn_event(t - ev.token_base, event.readable),
            }
        }
        if !ev.shutting_down {
            for (i, ready) in accept_ready.iter().enumerate() {
                if *ready {
                    ev.accept_all(i, listeners[i])?;
                }
            }
        }
        // Pump unconditionally: slots may have filled (waker), writes
        // may have unblocked, reads may have queued answers.
        for idx in 0..ev.conns.len() {
            ev.pump_conn(idx);
        }
        ev.reap();
        if ev.shutting_down && ev.conns.iter().flatten().all(Conn::drained) {
            break;
        }
    }
    Ok(())
}

struct EvLoop<'a, 'f, H: Handler> {
    service: &'a H,
    queue: &'a Queue,
    max_frame: usize,
    extras: &'f [ExtraListener<'f>],
    token_base: usize,
    poller: Poller,
    waker: Arc<Waker>,
    conns: Vec<Option<Conn<'f>>>,
    pool: BufPool,
    decode_ns: Arc<Histogram>,
    encode_ns: Arc<Histogram>,
    shutting_down: bool,
}

impl<'f, H: Handler> EvLoop<'_, 'f, H> {
    /// Materialize a [`DriverCx`] over the loop + one connection, run a
    /// driver callback, then apply its lifecycle outcomes.
    fn with_cx<R>(
        &mut self,
        conn: &mut Conn<'f>,
        f: impl FnOnce(&mut (dyn ConnDriver + 'f), &mut DriverCx<'_>) -> R,
    ) -> R {
        let handler: &dyn Handler = self.service;
        let mut cx = DriverCx {
            handler,
            queue: self.queue,
            waker: &self.waker,
            pool: &mut self.pool,
            wq: &mut conn.wq,
            close: false,
            shutdown: false,
        };
        let result = f(conn.driver.as_mut(), &mut cx);
        let close = cx.close;
        let shutdown = cx.shutdown;
        if close {
            conn.closing = true;
        }
        if shutdown {
            self.begin_shutdown();
        }
        result
    }

    fn accept_all(&mut self, li: usize, listener: &TcpListener) -> io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => self.install(li, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn install(&mut self, li: usize, stream: TcpStream) {
        if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
            return;
        }
        let driver: Box<dyn ConnDriver + 'f> = if li == 0 {
            Box::new(WireDriver::new(
                self.max_frame,
                Arc::clone(&self.decode_ns),
                Arc::clone(&self.encode_ns),
            ))
        } else {
            self.extras[li - 1].factory.new_conn()
        };
        let fd = source_fd(&stream);
        let idx = match self.conns.iter().position(Option::is_none) {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if self
            .poller
            .register(fd, idx + self.token_base, Interest::READ)
            .is_err()
        {
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            fd,
            driver,
            wq: VecDeque::new(),
            woff: 0,
            want_write: false,
            closing: false,
            dead: false,
        });
    }

    fn on_conn_event(&mut self, idx: usize, readable: bool) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if readable && !conn.closing && !conn.dead {
            self.read_conn(&mut conn);
        }
        // Writability is handled by the unconditional pump pass.
        self.conns[idx] = Some(conn);
    }

    /// Read every byte currently available and feed it to the driver.
    fn read_conn(&mut self, conn: &mut Conn<'f>) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if conn.closing {
                return;
            }
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    self.with_cx(conn, |driver, cx| driver.on_eof(cx));
                    conn.closing = true;
                    return;
                }
                Ok(n) => {
                    self.with_cx(conn, |driver, cx| driver.on_bytes(&chunk[..n], cx));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Read errors still flush queued answers, matching
                    // the threaded writer's drain-on-reader-exit.
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        // Pending jobs still drain; new submissions answer ShuttingDown.
        self.queue.close();
        // Stop reading everywhere; what is queued still flushes.
        for conn in self.conns.iter_mut().flatten() {
            conn.closing = true;
        }
    }

    /// Let the driver encode what is ready, then write as much as the
    /// socket accepts.
    fn pump_conn(&mut self, idx: usize) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if !conn.dead {
            self.with_cx(&mut conn, |driver, cx| driver.pump(cx));
            self.flush_writes(&mut conn, idx);
        }
        self.conns[idx] = Some(conn);
    }

    fn flush_writes(&mut self, conn: &mut Conn<'f>, idx: usize) {
        loop {
            if conn.wq.is_empty() {
                if conn.want_write {
                    conn.want_write = false;
                    let _ = self
                        .poller
                        .modify(conn.fd, idx + self.token_base, Interest::READ);
                }
                return;
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOVECS.min(conn.wq.len()));
            let mut iter = conn.wq.iter();
            let front = iter.next().expect("nonempty wq");
            slices.push(IoSlice::new(&front[conn.woff..]));
            for buf in iter.take(MAX_IOVECS - 1) {
                slices.push(IoSlice::new(buf));
            }
            match (&conn.stream).write_vectored(&slices) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(mut wrote) => {
                    while wrote > 0 {
                        let remaining = conn.wq[0].len() - conn.woff;
                        if wrote >= remaining {
                            wrote -= remaining;
                            conn.woff = 0;
                            let done = conn.wq.pop_front().expect("nonempty wq");
                            self.pool.put(done);
                        } else {
                            conn.woff += wrote;
                            wrote = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.poller.modify(
                            conn.fd,
                            idx + self.token_base,
                            Interest::READ_WRITE,
                        );
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Drop dead connections and closing connections that have fully
    /// flushed, recycling their buffers.
    fn reap(&mut self) {
        for idx in 0..self.conns.len() {
            let done = match &self.conns[idx] {
                Some(conn) => conn.dead || (conn.closing && conn.drained()),
                None => false,
            };
            if done {
                let conn = self.conns[idx].take().expect("conn present");
                let _ = self.poller.deregister(conn.fd, idx + self.token_base);
                for buf in conn.wq {
                    self.pool.put(buf);
                }
                // `conn.stream` drops here, closing the socket.
            }
        }
    }
}
