//! The event-driven transport: one readiness loop multiplexing every
//! connection over a [`Poller`](crate::poll::Poller), replacing the
//! two-threads-per-connection model for the hot path.
//!
//! Division of labor per event-loop round:
//!
//! 1. drain the [`Waker`](crate::poll::Waker) (pool workers poke it when
//!    they fill a response slot),
//! 2. accept any pending connections (nonblocking, until `WouldBlock`),
//! 3. for each readable connection, pull complete frames out of its
//!    [`FrameReader`] and dispatch them exactly like the threaded
//!    reader does — hello negotiation, magic-byte codec sniffing,
//!    queue-bypassing `stats`/`metrics`, bounded admission for the rest,
//! 4. pump every connection: encode response slots that have filled
//!    (in request order, into pooled buffers) and push bytes with
//!    vectored writes until the socket pushes back, then arm `EPOLLOUT`
//!    and let readiness resume the flush.
//!
//! Responses are encoded under the protocol that was in force when
//! their request arrived, so a hello mid-pipeline never reorders or
//! re-codes earlier answers. Encode buffers come from a free-list
//! [`BufPool`] (hit/miss counters + free-list gauge under
//! `serve.bufpool_*`); decode and encode latencies land in
//! `serve.decode_ns`/`serve.encode_ns`, and wake-to-drain latency in
//! `serve.poll_wake_ns`.
//!
//! Shutdown mirrors the threaded path: a `shutdown` request answers
//! `ShuttingDown`, stops the acceptor, closes the admission queue
//! (pending jobs still drain), marks every connection read-closed, and
//! the loop exits once every outstanding response has been flushed.

use crate::api::{Request, Response};
use crate::binwire::{self, Proto};
use crate::poll::{Interest, Poller, SourceFd, Waker};
use crate::pool::{Queue, ResponseSlot, SubmitError};
use crate::server::ServeConfig;
use crate::service::Handler;
use crate::wire::FrameEvent;
use crate::wire::FrameReader;
use hft_obs::{Counter, Gauge, Histogram};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_BASE: usize = 2;

/// Most buffers retained by the free list; beyond this, buffers are
/// dropped and the allocator gets them back.
const POOL_MAX_FREE: usize = 128;
/// Buffers that grew beyond this capacity are not retained (a single
/// huge metrics dump must not pin a huge free list forever).
const POOL_MAX_RETAINED_CAP: usize = 1 << 18;
/// Most frames combined into one vectored write.
const MAX_IOVECS: usize = 16;

#[cfg(unix)]
fn source_fd(s: &impl std::os::fd::AsRawFd) -> SourceFd {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn source_fd<T>(_s: &T) -> SourceFd {
    -1
}

/// A free list of reusable encode buffers with hit/miss telemetry.
struct BufPool {
    free: Vec<Vec<u8>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    free_gauge: Arc<Gauge>,
}

impl BufPool {
    fn new() -> BufPool {
        let r = hft_obs::global();
        BufPool {
            free: Vec::new(),
            hits: r.counter("serve.bufpool_hits"),
            misses: r.counter("serve.bufpool_misses"),
            free_gauge: r.gauge("serve.bufpool_free"),
        }
    }

    fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.hits.incr();
                self.free_gauge.set(self.free.len() as i64);
                buf
            }
            None => {
                self.misses.incr();
                Vec::with_capacity(4096)
            }
        }
    }

    fn put(&mut self, buf: Vec<u8>) {
        if self.free.len() < POOL_MAX_FREE && buf.capacity() <= POOL_MAX_RETAINED_CAP {
            self.free.push(buf);
            self.free_gauge.set(self.free.len() as i64);
        }
    }
}

/// One queued answer, in request order.
enum Outgoing {
    /// Pre-encoded frame body (the hello-ack).
    Raw(Vec<u8>),
    /// A response known immediately (errors, overload, stats, metrics,
    /// shutting-down), encoded when it reaches the head of the queue.
    Ready(Response, Proto),
    /// A pool-worker slot; encoded under its protocol once filled.
    Slot(Arc<ResponseSlot>, Proto),
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    fd: SourceFd,
    frames: FrameReader,
    proto: Proto,
    outq: VecDeque<Outgoing>,
    /// Encoded frames awaiting the socket; front may be partially
    /// written (`woff` bytes already gone).
    wq: VecDeque<Vec<u8>>,
    woff: usize,
    want_write: bool,
    /// Stop reading; flush what is queued, then close.
    closing: bool,
    /// Unusable (write error / reset); drop without flushing.
    dead: bool,
}

impl Conn {
    fn drained(&self) -> bool {
        self.outq.is_empty() && self.wq.is_empty()
    }
}

/// Run the readiness loop until shutdown. Pool workers must already be
/// draining `queue`; the caller closes the queue after this returns
/// (the loop also closes it when a `shutdown` request arrives, which is
/// what lets pending slots fill during the drain phase).
pub(crate) fn drive<H: Handler>(
    listener: &TcpListener,
    service: &H,
    queue: &Queue,
    config: &ServeConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new()?);
    poller.register(source_fd(listener), TOKEN_LISTENER, Interest::READ)?;
    #[cfg(unix)]
    poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;

    let r = hft_obs::global();
    let mut ev = EvLoop {
        service,
        queue,
        max_frame: config.max_frame,
        poller,
        waker,
        conns: Vec::new(),
        pool: BufPool::new(),
        decode_ns: r.histogram("serve.decode_ns"),
        encode_ns: r.histogram("serve.encode_ns"),
        shutting_down: false,
    };

    let mut events = Vec::new();
    loop {
        let timeout = if ev.shutting_down {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(500)
        };
        ev.poller.wait(&mut events, Some(timeout))?;

        let mut accept_ready = false;
        for event in &events {
            match event.token {
                TOKEN_LISTENER => accept_ready = true,
                TOKEN_WAKER => ev.waker.drain(),
                token => ev.on_conn_event(token - TOKEN_BASE, event.readable),
            }
        }
        if accept_ready && !ev.shutting_down {
            ev.accept_all(listener)?;
        }
        // Pump unconditionally: slots may have filled (waker), writes
        // may have unblocked, reads may have queued answers.
        for idx in 0..ev.conns.len() {
            ev.pump_conn(idx);
        }
        ev.reap();
        if ev.shutting_down && ev.conns.iter().flatten().all(Conn::drained) {
            break;
        }
    }
    Ok(())
}

struct EvLoop<'a, H: Handler> {
    service: &'a H,
    queue: &'a Queue,
    max_frame: usize,
    poller: Poller,
    waker: Arc<Waker>,
    conns: Vec<Option<Conn>>,
    pool: BufPool,
    decode_ns: Arc<Histogram>,
    encode_ns: Arc<Histogram>,
    shutting_down: bool,
}

impl<H: Handler> EvLoop<'_, H> {
    fn accept_all(&mut self, listener: &TcpListener) -> io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => self.install(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn install(&mut self, stream: TcpStream) {
        if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
            return;
        }
        let fd = source_fd(&stream);
        let idx = match self.conns.iter().position(Option::is_none) {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if self
            .poller
            .register(fd, idx + TOKEN_BASE, Interest::READ)
            .is_err()
        {
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            fd,
            frames: FrameReader::new(),
            proto: Proto::default(),
            outq: VecDeque::new(),
            wq: VecDeque::new(),
            woff: 0,
            want_write: false,
            closing: false,
            dead: false,
        });
    }

    fn on_conn_event(&mut self, idx: usize, readable: bool) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if readable && !conn.closing && !conn.dead {
            self.read_conn(&mut conn);
        }
        // Writability is handled by the unconditional pump pass.
        self.conns[idx] = Some(conn);
    }

    /// Pull every complete frame currently available and dispatch it.
    fn read_conn(&mut self, conn: &mut Conn) {
        loop {
            let stream = &conn.stream;
            match conn.frames.read_from(&mut { stream }, self.max_frame) {
                Ok(FrameEvent::Frame(body)) => {
                    self.process_frame(conn, &body);
                    if conn.closing {
                        return;
                    }
                }
                Ok(FrameEvent::Idle) => return,
                Ok(FrameEvent::Eof) => {
                    conn.closing = true;
                    return;
                }
                Ok(FrameEvent::Oversized(len)) => {
                    // The stream is desynchronized past this point:
                    // answer, flush, hang up.
                    self.service.serve_stats().on_received();
                    conn.outq.push_back(Outgoing::Ready(
                        Response::Error {
                            message: format!(
                                "oversized frame: {len} bytes (max {})",
                                self.max_frame
                            ),
                        },
                        conn.proto,
                    ));
                    conn.closing = true;
                    return;
                }
                Err(_) => {
                    // Read errors still flush queued answers, matching
                    // the threaded writer's drain-on-reader-exit.
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    /// The dispatch table — semantics identical to the threaded
    /// reader's, plus hello negotiation (which the threaded path also
    /// performs; see `server.rs`).
    fn process_frame(&mut self, conn: &mut Conn, body: &[u8]) {
        if let Some(hello) = binwire::parse_hello(body) {
            match hello {
                Ok(proto) => {
                    conn.proto = proto;
                    conn.outq
                        .push_back(Outgoing::Raw(binwire::hello_ack(proto)));
                }
                Err(e) => conn.outq.push_back(Outgoing::Ready(
                    Response::Error {
                        message: format!("bad hello: {e}"),
                    },
                    conn.proto,
                )),
            }
            return;
        }
        let stats = self.service.serve_stats();
        stats.on_received();
        let started = Instant::now();
        let decoded = binwire::sniff_request(body);
        self.decode_ns.record(started.elapsed().as_nanos() as u64);
        let request = match decoded {
            Ok(request) => request,
            Err(message) => {
                conn.outq.push_back(Outgoing::Ready(
                    Response::Error {
                        message: format!("bad request: {message}"),
                    },
                    conn.proto,
                ));
                return;
            }
        };
        match request {
            Request::Shutdown => {
                stats.on_completed(false);
                conn.outq
                    .push_back(Outgoing::Ready(Response::ShuttingDown, conn.proto));
                self.begin_shutdown();
            }
            Request::Stats | Request::Metrics => {
                // Queue-bypassing telemetry: must answer even when the
                // admission queue is saturated.
                let response = self.service.handle(&request);
                stats.on_completed(false);
                conn.outq.push_back(Outgoing::Ready(response, conn.proto));
            }
            request => {
                match self
                    .queue
                    .submit_with(request, stats, Some(Arc::clone(&self.waker)))
                {
                    Ok(slot) => conn.outq.push_back(Outgoing::Slot(slot, conn.proto)),
                    Err(SubmitError::Overloaded) => conn
                        .outq
                        .push_back(Outgoing::Ready(Response::Overloaded, conn.proto)),
                    Err(SubmitError::Closed) => {
                        conn.outq
                            .push_back(Outgoing::Ready(Response::ShuttingDown, conn.proto));
                        conn.closing = true;
                    }
                }
            }
        }
    }

    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        // Pending jobs still drain; new submissions answer ShuttingDown.
        self.queue.close();
        // Stop reading everywhere; what is queued still flushes.
        for conn in self.conns.iter_mut().flatten() {
            conn.closing = true;
        }
    }

    /// Encode every answer that is ready (in order) and write as much
    /// as the socket accepts.
    fn pump_conn(&mut self, idx: usize) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if !conn.dead {
            self.encode_ready(&mut conn);
            self.flush_writes(&mut conn, idx);
        }
        self.conns[idx] = Some(conn);
    }

    fn encode_ready(&mut self, conn: &mut Conn) {
        loop {
            let (response, proto) = match conn.outq.front() {
                None => return,
                Some(Outgoing::Raw(_)) => {
                    let Some(Outgoing::Raw(body)) = conn.outq.pop_front() else {
                        unreachable!()
                    };
                    let mut buf = self.pool.get();
                    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
                    buf.extend_from_slice(&body);
                    conn.wq.push_back(buf);
                    continue;
                }
                Some(Outgoing::Ready(..)) => {
                    let Some(Outgoing::Ready(response, proto)) = conn.outq.pop_front() else {
                        unreachable!()
                    };
                    (response, proto)
                }
                Some(Outgoing::Slot(slot, proto)) => match slot.try_take() {
                    None => return,
                    Some(response) => {
                        let proto = *proto;
                        conn.outq.pop_front();
                        (response, proto)
                    }
                },
            };
            let mut buf = self.pool.get();
            let started = Instant::now();
            buf.extend_from_slice(&[0, 0, 0, 0]);
            binwire::response_bytes_into(proto, &response, &mut buf);
            let len = (buf.len() - 4) as u32;
            buf[..4].copy_from_slice(&len.to_be_bytes());
            self.encode_ns.record(started.elapsed().as_nanos() as u64);
            conn.wq.push_back(buf);
        }
    }

    fn flush_writes(&mut self, conn: &mut Conn, idx: usize) {
        loop {
            if conn.wq.is_empty() {
                if conn.want_write {
                    conn.want_write = false;
                    let _ = self
                        .poller
                        .modify(conn.fd, idx + TOKEN_BASE, Interest::READ);
                }
                return;
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOVECS.min(conn.wq.len()));
            let mut iter = conn.wq.iter();
            let front = iter.next().expect("nonempty wq");
            slices.push(IoSlice::new(&front[conn.woff..]));
            for buf in iter.take(MAX_IOVECS - 1) {
                slices.push(IoSlice::new(buf));
            }
            match (&conn.stream).write_vectored(&slices) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(mut wrote) => {
                    while wrote > 0 {
                        let remaining = conn.wq[0].len() - conn.woff;
                        if wrote >= remaining {
                            wrote -= remaining;
                            conn.woff = 0;
                            let done = conn.wq.pop_front().expect("nonempty wq");
                            self.pool.put(done);
                        } else {
                            conn.woff += wrote;
                            wrote = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self
                            .poller
                            .modify(conn.fd, idx + TOKEN_BASE, Interest::READ_WRITE);
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Drop dead connections and closing connections that have fully
    /// flushed, recycling their buffers.
    fn reap(&mut self) {
        for idx in 0..self.conns.len() {
            let done = match &self.conns[idx] {
                Some(conn) => conn.dead || (conn.closing && conn.drained()),
                None => false,
            };
            if done {
                let conn = self.conns[idx].take().expect("conn present");
                let _ = self.poller.deregister(conn.fd, idx + TOKEN_BASE);
                for buf in conn.wq {
                    self.pool.put(buf);
                }
                // `conn.stream` drops here, closing the socket.
            }
        }
    }
}
