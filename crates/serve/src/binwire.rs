//! The compact binary wire codec and the protocol-negotiation hello
//! frames.
//!
//! Framing is unchanged (4-byte big-endian length prefix, see
//! [`crate::wire`]); this module defines an alternative *body* encoding
//! next to the deterministic JSON one in [`crate::api`]:
//!
//! ```text
//! [0xB7] [kind] [payload…]
//!   kind 0x00  hello      (client → server: version, requested proto)
//!   kind 0x01  hello-ack  (server → client: version, granted proto)
//!   kind 0x02  request    (tag byte, then the variant's fields)
//!   kind 0x03  response   (tag byte, then the variant's fields)
//! ```
//!
//! The magic byte `0xB7` is a UTF-8 continuation byte, so no binary
//! body can ever be confused with a JSON one (JSON bodies start with
//! `{`) and vice versa. Field primitives:
//!
//! * unsigned integers — LEB128 varints (≤ 10 bytes, exact over `u64`,
//!   unlike the JSON codec's 2⁵³ double limit),
//! * `f64` — 8 bytes, little-endian IEEE-754 bits,
//! * strings — varint byte length + UTF-8 bytes,
//! * `Option<T>` — presence byte `0`/`1` then `T`,
//! * dates — varint year, month byte, day byte (validated on decode),
//! * vectors — varint element count + elements.
//!
//! Decoding is total: every length is bounds-checked against the bytes
//! actually present before any allocation, recursion (the `metrics`
//! registry value) is depth-capped, and every failure is a structured
//! [`DecodeError`] — truncated, bit-flipped or hostile frames can never
//! panic the decoder. Values that the JSON codec canonicalizes (e.g.
//! non-finite latencies encode as `null` and decode as `+∞`/`None`) are
//! normalized identically here, so `decode(encode(x))` equals the JSON
//! round trip of `x` on every variant — the fixed point the byte-level
//! verification harness relies on.

use crate::api::{Request, Response, SweepEntry, WireSpan, WireTrace};
use crate::json::Json;
use crate::stats::ServeSnapshot;
use hft_core::session::StatsSnapshot;
use hft_time::Date;

/// First byte of every binary-protocol frame body.
pub const MAGIC: u8 = 0xB7;
/// Binary-protocol version carried in hello frames.
pub const VERSION: u8 = 1;

/// Frame kinds (second byte of a binary body).
const KIND_HELLO: u8 = 0x00;
const KIND_HELLO_ACK: u8 = 0x01;
const KIND_REQUEST: u8 = 0x02;
const KIND_RESPONSE: u8 = 0x03;

/// Maximum nesting depth accepted when decoding a [`Json`] value (the
/// `metrics` registry payload is 3 levels deep; hostile frames must not
/// be able to recurse the decoder off the stack).
const MAX_JSON_DEPTH: usize = 32;

/// The per-connection wire encoding, as negotiated by the hello frame.
/// Connections start in [`Proto::Json`]; a hello frame switches them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// Deterministic JSON bodies (the debuggable default).
    #[default]
    Json,
    /// Compact binary bodies (this module's encoding).
    Binary,
}

impl Proto {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Proto> {
        match s {
            "json" => Some(Proto::Json),
            "bin" | "binary" => Some(Proto::Binary),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Proto::Json => "json",
            Proto::Binary => "bin",
        }
    }

    fn code(&self) -> u8 {
        match self {
            Proto::Json => 0,
            Proto::Binary => 1,
        }
    }

    fn from_code(code: u8) -> Option<Proto> {
        match code {
            0 => Some(Proto::Json),
            1 => Some(Proto::Binary),
            _ => None,
        }
    }
}

/// Why a binary frame failed to decode. Every variant is a protocol
/// error the server answers with a structured `Error` response — never
/// a panic, never a misparse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame ended before the declared structure did.
    Truncated,
    /// Bytes remained after the structure was fully decoded.
    Trailing(usize),
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// The kind byte did not name the expected frame kind.
    BadKind(u8),
    /// An unknown variant tag for the given frame kind.
    BadTag(&'static str, u8),
    /// A varint ran past 10 bytes or overflowed `u64`.
    BadVarint,
    /// A declared length exceeds the bytes present in the frame.
    BadLength(u64),
    /// String bytes were not valid UTF-8.
    BadUtf8,
    /// A date's year/month/day did not form a real calendar date.
    BadDate,
    /// An option's presence byte was neither 0 nor 1.
    BadPresence(u8),
    /// A JSON-value payload nested deeper than the decoder allows.
    TooDeep,
    /// A hello frame named an unknown protocol code.
    BadProto(u8),
    /// A hello frame named an unsupported protocol version.
    BadVersion(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "binary frame truncated"),
            DecodeError::Trailing(n) => write!(f, "binary frame has {n} trailing bytes"),
            DecodeError::BadMagic(b) => write!(f, "bad binary magic byte {b:#04x}"),
            DecodeError::BadKind(b) => write!(f, "bad binary frame kind {b:#04x}"),
            DecodeError::BadTag(kind, t) => write!(f, "unknown binary {kind} tag {t:#04x}"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::BadLength(n) => write!(f, "declared length {n} exceeds frame"),
            DecodeError::BadUtf8 => write!(f, "binary string is not UTF-8"),
            DecodeError::BadDate => write!(f, "binary date is not a real date"),
            DecodeError::BadPresence(b) => write!(f, "bad option presence byte {b:#04x}"),
            DecodeError::TooDeep => write!(f, "binary JSON value nested too deep"),
            DecodeError::BadProto(b) => write!(f, "unknown protocol code {b:#04x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Whether a frame body is binary-protocol (vs JSON).
pub fn is_binary(body: &[u8]) -> bool {
    body.first() == Some(&MAGIC)
}

/// The client hello frame requesting `proto`.
pub fn hello(proto: Proto) -> Vec<u8> {
    vec![MAGIC, KIND_HELLO, VERSION, proto.code()]
}

/// The server's hello acknowledgement granting `proto`.
pub fn hello_ack(proto: Proto) -> Vec<u8> {
    vec![MAGIC, KIND_HELLO_ACK, VERSION, proto.code()]
}

/// Classify a frame body as a hello (`Some`) or not (`None`); a `Some`
/// carries the requested protocol or the structured reason the hello is
/// unusable.
pub fn parse_hello(body: &[u8]) -> Option<Result<Proto, DecodeError>> {
    if body.len() < 2 || body[0] != MAGIC || body[1] != KIND_HELLO {
        return None;
    }
    Some(decode_hello_payload(body))
}

/// Decode a hello-ack frame body.
pub fn parse_hello_ack(body: &[u8]) -> Result<Proto, DecodeError> {
    if body.first() != Some(&MAGIC) {
        return Err(DecodeError::BadMagic(body.first().copied().unwrap_or(0)));
    }
    if body.get(1) != Some(&KIND_HELLO_ACK) {
        return Err(DecodeError::BadKind(body.get(1).copied().unwrap_or(0)));
    }
    decode_hello_payload(body)
}

fn decode_hello_payload(body: &[u8]) -> Result<Proto, DecodeError> {
    let version = *body.get(2).ok_or(DecodeError::Truncated)?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let code = *body.get(3).ok_or(DecodeError::Truncated)?;
    if body.len() > 4 {
        return Err(DecodeError::Trailing(body.len() - 4));
    }
    Proto::from_code(code).ok_or(DecodeError::BadProto(code))
}

// ---- Primitive writers. ----

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_date(buf: &mut Vec<u8>, d: &Date) {
    put_varint(buf, d.year() as u64);
    buf.push(d.month() as u8);
    buf.push(d.day() as u8);
}

/// Mirror of the JSON codec's `null` canonicalization: a non-finite
/// optional latency encodes as absent.
fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    match v.filter(|x| x.is_finite()) {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_f64(buf, x);
        }
    }
}

fn put_opt_varint(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_varint(buf, x);
        }
    }
}

/// Weather percentiles: the JSON codec writes non-finite values as
/// `null` and reads `null` back as `+∞`; normalizing at encode time
/// keeps the two codecs' fixed points identical.
fn put_latency(buf: &mut Vec<u8>, v: f64) {
    put_f64(buf, if v.is_finite() { v } else { f64::INFINITY });
}

fn put_json(buf: &mut Vec<u8>, v: &Json) {
    match v {
        Json::Null => buf.push(0),
        Json::Bool(false) => buf.push(1),
        Json::Bool(true) => buf.push(2),
        Json::Num(x) => {
            buf.push(3);
            put_f64(buf, *x);
        }
        Json::Str(s) => {
            buf.push(4);
            put_str(buf, s);
        }
        Json::Arr(items) => {
            buf.push(5);
            put_varint(buf, items.len() as u64);
            for item in items {
                put_json(buf, item);
            }
        }
        Json::Obj(pairs) => {
            buf.push(6);
            put_varint(buf, pairs.len() as u64);
            for (k, item) in pairs {
                put_str(buf, k);
                put_json(buf, item);
            }
        }
    }
}

// ---- Primitive readers. ----

/// A bounds-checked cursor over one frame body.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8().map_err(|_| DecodeError::Truncated)?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(DecodeError::BadVarint);
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::BadVarint)
    }

    /// A varint that must also fit the bytes still present — used for
    /// every length so hostile frames cannot force large allocations.
    fn len_prefix(&mut self) -> Result<usize, DecodeError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::BadLength(n));
        }
        Ok(n as usize)
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let raw = self.take(8)?;
        Ok(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len_prefix()?;
        let raw = self.take(n)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| DecodeError::BadUtf8)
    }

    fn date(&mut self) -> Result<Date, DecodeError> {
        let y = self.varint()?;
        let m = self.u8()?;
        let d = self.u8()?;
        if y > 9999 {
            return Err(DecodeError::BadDate);
        }
        Date::new(y as i32, m as u32, d as u32).map_err(|_| DecodeError::BadDate)
    }

    fn presence(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadPresence(b)),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, DecodeError> {
        Ok(if self.presence()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    fn opt_varint(&mut self) -> Result<Option<u64>, DecodeError> {
        Ok(if self.presence()? {
            Some(self.varint()?)
        } else {
            None
        })
    }

    /// A latency read mirrors the JSON `null → +∞` rule for any
    /// non-finite bits, so hostile NaN bits cannot smuggle a value the
    /// JSON codec could never produce.
    fn latency(&mut self) -> Result<f64, DecodeError> {
        let v = self.f64()?;
        Ok(if v.is_finite() { v } else { f64::INFINITY })
    }

    fn json(&mut self, depth: usize) -> Result<Json, DecodeError> {
        if depth >= MAX_JSON_DEPTH {
            return Err(DecodeError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Json::Null),
            1 => Ok(Json::Bool(false)),
            2 => Ok(Json::Bool(true)),
            3 => Ok(Json::Num(self.f64()?)),
            4 => Ok(Json::Str(self.str()?)),
            5 => {
                let n = self.len_prefix()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.json(depth + 1)?);
                }
                Ok(Json::Arr(items))
            }
            6 => {
                let n = self.len_prefix()?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.str()?;
                    pairs.push((k, self.json(depth + 1)?));
                }
                Ok(Json::Obj(pairs))
            }
            t => Err(DecodeError::BadTag("json value", t)),
        }
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::Trailing(self.bytes.len() - self.pos))
        }
    }
}

// ---- Request codec. ----

const REQ_GEOGRAPHIC: u8 = 0x01;
const REQ_SITE_SEARCH: u8 = 0x02;
const REQ_SHORTLIST: u8 = 0x03;
const REQ_NETWORK: u8 = 0x04;
const REQ_ROUTE: u8 = 0x05;
const REQ_APA: u8 = 0x06;
const REQ_WEATHER: u8 = 0x07;
const REQ_STATS: u8 = 0x08;
const REQ_METRICS: u8 = 0x09;
const REQ_SHUTDOWN: u8 = 0x0a;
const REQ_RACE: u8 = 0x0b;
const REQ_STRETCH_SWEEP: u8 = 0x0c;
const REQ_TRACES: u8 = 0x0d;

/// Append `req`'s binary body to `buf` (which is not cleared — pooled
/// buffers arrive already reset).
pub fn encode_request_into(req: &Request, buf: &mut Vec<u8>) {
    buf.push(MAGIC);
    buf.push(KIND_REQUEST);
    match req {
        Request::Geographic {
            lat_deg,
            lon_deg,
            radius_km,
        } => {
            buf.push(REQ_GEOGRAPHIC);
            put_f64(buf, *lat_deg);
            put_f64(buf, *lon_deg);
            put_f64(buf, *radius_km);
        }
        Request::SiteSearch { service, class } => {
            buf.push(REQ_SITE_SEARCH);
            put_str(buf, service);
            put_str(buf, class);
        }
        Request::Shortlist {
            lat_deg,
            lon_deg,
            radius_km,
            min_filings,
        } => {
            buf.push(REQ_SHORTLIST);
            put_f64(buf, *lat_deg);
            put_f64(buf, *lon_deg);
            put_f64(buf, *radius_km);
            put_varint(buf, *min_filings as u64);
        }
        Request::Network { licensee, date } => {
            buf.push(REQ_NETWORK);
            put_str(buf, licensee);
            put_date(buf, date);
        }
        Request::Route {
            licensee,
            date,
            from,
            to,
        } => {
            buf.push(REQ_ROUTE);
            put_str(buf, licensee);
            put_date(buf, date);
            put_str(buf, from);
            put_str(buf, to);
        }
        Request::Apa {
            licensee,
            date,
            from,
            to,
        } => {
            buf.push(REQ_APA);
            put_str(buf, licensee);
            put_date(buf, date);
            put_str(buf, from);
            put_str(buf, to);
        }
        Request::Weather {
            licensee,
            date,
            from,
            to,
            samples,
            seed,
        } => {
            buf.push(REQ_WEATHER);
            put_str(buf, licensee);
            put_date(buf, date);
            put_str(buf, from);
            put_str(buf, to);
            put_varint(buf, *samples as u64);
            put_varint(buf, *seed);
        }
        Request::Race {
            licensee,
            date,
            from,
            to,
            constellation,
            samples,
            seed,
        } => {
            buf.push(REQ_RACE);
            put_str(buf, licensee);
            put_date(buf, date);
            put_str(buf, from);
            put_str(buf, to);
            put_str(buf, constellation);
            put_varint(buf, *samples as u64);
            put_varint(buf, *seed);
        }
        Request::StretchSweep {
            licensee,
            date,
            constellation,
        } => {
            buf.push(REQ_STRETCH_SWEEP);
            put_str(buf, licensee);
            put_date(buf, date);
            put_str(buf, constellation);
        }
        Request::Stats => buf.push(REQ_STATS),
        Request::Metrics => buf.push(REQ_METRICS),
        Request::Traces { limit, trace_id } => {
            buf.push(REQ_TRACES);
            put_varint(buf, *limit as u64);
            match trace_id {
                None => buf.push(0),
                Some(id) => {
                    buf.push(1);
                    buf.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        Request::Shutdown => buf.push(REQ_SHUTDOWN),
    }
}

/// Encode one request as a fresh binary body.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_request_into(req, &mut buf);
    buf
}

/// Decode a binary request body.
pub fn decode_request(body: &[u8]) -> Result<Request, DecodeError> {
    let mut cur = Cur::new(body);
    let magic = cur.u8()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let kind = cur.u8()?;
    if kind != KIND_REQUEST {
        return Err(DecodeError::BadKind(kind));
    }
    let req = match cur.u8()? {
        REQ_GEOGRAPHIC => Request::Geographic {
            lat_deg: cur.f64()?,
            lon_deg: cur.f64()?,
            radius_km: cur.f64()?,
        },
        REQ_SITE_SEARCH => Request::SiteSearch {
            service: cur.str()?,
            class: cur.str()?,
        },
        REQ_SHORTLIST => Request::Shortlist {
            lat_deg: cur.f64()?,
            lon_deg: cur.f64()?,
            radius_km: cur.f64()?,
            min_filings: cur.varint()? as usize,
        },
        REQ_NETWORK => Request::Network {
            licensee: cur.str()?,
            date: cur.date()?,
        },
        REQ_ROUTE => Request::Route {
            licensee: cur.str()?,
            date: cur.date()?,
            from: cur.str()?,
            to: cur.str()?,
        },
        REQ_APA => Request::Apa {
            licensee: cur.str()?,
            date: cur.date()?,
            from: cur.str()?,
            to: cur.str()?,
        },
        REQ_WEATHER => Request::Weather {
            licensee: cur.str()?,
            date: cur.date()?,
            from: cur.str()?,
            to: cur.str()?,
            samples: cur.varint()? as usize,
            seed: cur.varint()?,
        },
        REQ_RACE => Request::Race {
            licensee: cur.str()?,
            date: cur.date()?,
            from: cur.str()?,
            to: cur.str()?,
            constellation: cur.str()?,
            samples: cur.varint()? as usize,
            seed: cur.varint()?,
        },
        REQ_STRETCH_SWEEP => Request::StretchSweep {
            licensee: cur.str()?,
            date: cur.date()?,
            constellation: cur.str()?,
        },
        REQ_STATS => Request::Stats,
        REQ_METRICS => Request::Metrics,
        REQ_TRACES => Request::Traces {
            limit: cur.varint()? as usize,
            trace_id: if cur.presence()? {
                Some(u128::from_le_bytes(
                    cur.take(16)?.try_into().expect("16 bytes"),
                ))
            } else {
                None
            },
        },
        REQ_SHUTDOWN => Request::Shutdown,
        t => return Err(DecodeError::BadTag("request", t)),
    };
    cur.finish()?;
    Ok(req)
}

// ---- Response codec. ----

const RESP_LICENSES: u8 = 0x01;
const RESP_SHORTLIST: u8 = 0x02;
const RESP_NETWORK: u8 = 0x03;
const RESP_ROUTE: u8 = 0x04;
const RESP_APA: u8 = 0x05;
const RESP_WEATHER: u8 = 0x06;
const RESP_STATS: u8 = 0x07;
const RESP_METRICS: u8 = 0x08;
const RESP_ERROR: u8 = 0x09;
const RESP_OVERLOADED: u8 = 0x0a;
const RESP_SHUTTING_DOWN: u8 = 0x0b;
const RESP_RACE: u8 = 0x0c;
const RESP_STRETCH_SWEEP: u8 = 0x0d;
const RESP_TRACES: u8 = 0x0e;

/// Trace flag bits (byte-packed on the wire).
const TRACE_FLAG_SAMPLED: u8 = 0b01;
const TRACE_FLAG_SLOW: u8 = 0b10;

/// Append `resp`'s binary body to `buf` (not cleared — pooled buffers
/// arrive already reset).
pub fn encode_response_into(resp: &Response, buf: &mut Vec<u8>) {
    buf.push(MAGIC);
    buf.push(KIND_RESPONSE);
    match resp {
        Response::Licenses { ids } => {
            buf.push(RESP_LICENSES);
            put_varint(buf, ids.len() as u64);
            for &id in ids {
                put_varint(buf, id);
            }
        }
        Response::Shortlist {
            geographic_candidates,
            service_filtered,
            shortlisted,
            names,
        } => {
            buf.push(RESP_SHORTLIST);
            put_varint(buf, *geographic_candidates);
            put_varint(buf, *service_filtered);
            put_varint(buf, *shortlisted);
            put_varint(buf, names.len() as u64);
            for name in names {
                put_str(buf, name);
            }
        }
        Response::Network {
            licensee,
            as_of,
            towers,
            links,
            active_licenses,
        } => {
            buf.push(RESP_NETWORK);
            put_str(buf, licensee);
            put_date(buf, as_of);
            put_varint(buf, *towers);
            put_varint(buf, *links);
            put_varint(buf, *active_licenses);
        }
        Response::Route {
            latency_ms,
            towers,
            length_m,
        } => {
            buf.push(RESP_ROUTE);
            put_opt_f64(buf, *latency_ms);
            put_opt_varint(buf, *towers);
            put_opt_f64(buf, *length_m);
        }
        Response::Apa { apa } => {
            buf.push(RESP_APA);
            put_opt_f64(buf, *apa);
        }
        Response::Weather {
            clear_ms,
            p50_ms,
            p95_ms,
            p99_ms,
            availability,
            samples,
        } => {
            buf.push(RESP_WEATHER);
            put_latency(buf, *clear_ms);
            put_latency(buf, *p50_ms);
            put_latency(buf, *p95_ms);
            put_latency(buf, *p99_ms);
            put_f64(buf, *availability);
            put_varint(buf, *samples);
        }
        Response::Race {
            from,
            to,
            constellation,
            geodesic_km,
            c_bound_ms,
            microwave_ms,
            fiber_ms,
            leo_ms,
            leo_isl_hops,
            mw_stretch,
            fiber_stretch,
            leo_stretch,
            winner,
            wx_clear_ms,
            wx_p50_ms,
            wx_p95_ms,
            wx_p99_ms,
            wx_availability,
            wx_samples,
        } => {
            buf.push(RESP_RACE);
            put_str(buf, from);
            put_str(buf, to);
            put_str(buf, constellation);
            put_f64(buf, *geodesic_km);
            put_f64(buf, *c_bound_ms);
            put_opt_f64(buf, *microwave_ms);
            put_f64(buf, *fiber_ms);
            put_opt_f64(buf, *leo_ms);
            put_opt_varint(buf, *leo_isl_hops);
            put_opt_f64(buf, *mw_stretch);
            put_f64(buf, *fiber_stretch);
            put_opt_f64(buf, *leo_stretch);
            put_str(buf, winner);
            put_latency(buf, *wx_clear_ms);
            put_latency(buf, *wx_p50_ms);
            put_latency(buf, *wx_p95_ms);
            put_latency(buf, *wx_p99_ms);
            put_f64(buf, *wx_availability);
            put_varint(buf, *wx_samples);
        }
        Response::StretchSweep { entries } => {
            buf.push(RESP_STRETCH_SWEEP);
            put_varint(buf, entries.len() as u64);
            for e in entries {
                put_str(buf, &e.pair);
                put_f64(buf, e.geodesic_km);
                put_opt_f64(buf, e.mw_stretch);
                put_f64(buf, e.fiber_stretch);
                put_opt_f64(buf, e.leo_stretch);
            }
        }
        Response::Stats { serve, session } => {
            buf.push(RESP_STATS);
            for v in [
                serve.received,
                serve.accepted,
                serve.rejected_overloaded,
                serve.completed,
                serve.errors,
                serve.flights_led,
                serve.flights_coalesced,
                serve.queue_wait_ns_total,
                serve.queue_wait_ns_max,
                serve.service_ns_total,
                serve.service_ns_max,
                serve.queue_high_water,
                serve.generation_swaps,
            ] {
                put_varint(buf, v);
            }
            for v in [
                session.network_hits,
                session.reconstructions,
                session.route_hits,
                session.route_misses,
                session.apa_hits,
                session.apa_misses,
                session.graph_hits,
                session.graph_misses,
            ] {
                put_varint(buf, v);
            }
        }
        Response::Metrics { registry } => {
            buf.push(RESP_METRICS);
            put_json(buf, registry);
        }
        Response::Traces { traces } => {
            buf.push(RESP_TRACES);
            put_varint(buf, traces.len() as u64);
            for t in traces {
                buf.extend_from_slice(&t.trace_id.to_le_bytes());
                put_str(buf, &t.label);
                let mut flags = 0u8;
                if t.sampled {
                    flags |= TRACE_FLAG_SAMPLED;
                }
                if t.slow {
                    flags |= TRACE_FLAG_SLOW;
                }
                buf.push(flags);
                put_varint(buf, t.total_ns);
                put_varint(buf, t.spans.len() as u64);
                for s in &t.spans {
                    put_str(buf, &s.name);
                    put_opt_varint(buf, s.parent.map(u64::from));
                    put_varint(buf, s.start_ns);
                    put_varint(buf, s.dur_ns);
                    put_opt_varint(buf, s.shard.map(u64::from));
                }
            }
        }
        Response::Error { message } => {
            buf.push(RESP_ERROR);
            put_str(buf, message);
        }
        Response::Overloaded => buf.push(RESP_OVERLOADED),
        Response::ShuttingDown => buf.push(RESP_SHUTTING_DOWN),
    }
}

/// Encode one response as a fresh binary body.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    encode_response_into(resp, &mut buf);
    buf
}

/// Decode a binary response body.
pub fn decode_response(body: &[u8]) -> Result<Response, DecodeError> {
    let mut cur = Cur::new(body);
    let magic = cur.u8()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let kind = cur.u8()?;
    if kind != KIND_RESPONSE {
        return Err(DecodeError::BadKind(kind));
    }
    let resp = match cur.u8()? {
        RESP_LICENSES => {
            let n = cur.len_prefix()?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(cur.varint()?);
            }
            Response::Licenses { ids }
        }
        RESP_SHORTLIST => {
            let geographic_candidates = cur.varint()?;
            let service_filtered = cur.varint()?;
            let shortlisted = cur.varint()?;
            let n = cur.len_prefix()?;
            let mut names = Vec::with_capacity(n);
            for _ in 0..n {
                names.push(cur.str()?);
            }
            Response::Shortlist {
                geographic_candidates,
                service_filtered,
                shortlisted,
                names,
            }
        }
        RESP_NETWORK => Response::Network {
            licensee: cur.str()?,
            as_of: cur.date()?,
            towers: cur.varint()?,
            links: cur.varint()?,
            active_licenses: cur.varint()?,
        },
        RESP_ROUTE => Response::Route {
            latency_ms: cur.opt_f64()?,
            towers: cur.opt_varint()?,
            length_m: cur.opt_f64()?,
        },
        RESP_APA => Response::Apa {
            apa: cur.opt_f64()?,
        },
        RESP_WEATHER => Response::Weather {
            clear_ms: cur.latency()?,
            p50_ms: cur.latency()?,
            p95_ms: cur.latency()?,
            p99_ms: cur.latency()?,
            availability: cur.f64()?,
            samples: cur.varint()?,
        },
        RESP_STATS => {
            let mut v = [0u64; 21];
            for slot in v.iter_mut() {
                *slot = cur.varint()?;
            }
            Response::Stats {
                serve: ServeSnapshot {
                    received: v[0],
                    accepted: v[1],
                    rejected_overloaded: v[2],
                    completed: v[3],
                    errors: v[4],
                    flights_led: v[5],
                    flights_coalesced: v[6],
                    queue_wait_ns_total: v[7],
                    queue_wait_ns_max: v[8],
                    service_ns_total: v[9],
                    service_ns_max: v[10],
                    queue_high_water: v[11],
                    generation_swaps: v[12],
                },
                session: StatsSnapshot {
                    network_hits: v[13],
                    reconstructions: v[14],
                    route_hits: v[15],
                    route_misses: v[16],
                    apa_hits: v[17],
                    apa_misses: v[18],
                    graph_hits: v[19],
                    graph_misses: v[20],
                },
            }
        }
        RESP_RACE => Response::Race {
            from: cur.str()?,
            to: cur.str()?,
            constellation: cur.str()?,
            geodesic_km: cur.f64()?,
            c_bound_ms: cur.f64()?,
            microwave_ms: cur.opt_f64()?,
            fiber_ms: cur.f64()?,
            leo_ms: cur.opt_f64()?,
            leo_isl_hops: cur.opt_varint()?,
            mw_stretch: cur.opt_f64()?,
            fiber_stretch: cur.f64()?,
            leo_stretch: cur.opt_f64()?,
            winner: cur.str()?,
            wx_clear_ms: cur.latency()?,
            wx_p50_ms: cur.latency()?,
            wx_p95_ms: cur.latency()?,
            wx_p99_ms: cur.latency()?,
            wx_availability: cur.f64()?,
            wx_samples: cur.varint()?,
        },
        RESP_STRETCH_SWEEP => {
            let n = cur.len_prefix()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(SweepEntry {
                    pair: cur.str()?,
                    geodesic_km: cur.f64()?,
                    mw_stretch: cur.opt_f64()?,
                    fiber_stretch: cur.f64()?,
                    leo_stretch: cur.opt_f64()?,
                });
            }
            Response::StretchSweep { entries }
        }
        RESP_METRICS => Response::Metrics {
            registry: cur.json(0)?,
        },
        RESP_TRACES => {
            let n = cur.len_prefix()?;
            let mut traces = Vec::with_capacity(n);
            for _ in 0..n {
                let trace_id = u128::from_le_bytes(cur.take(16)?.try_into().expect("16 bytes"));
                let label = cur.str()?;
                let flags = cur.u8()?;
                let total_ns = cur.varint()?;
                let m = cur.len_prefix()?;
                let mut spans = Vec::with_capacity(m);
                for _ in 0..m {
                    spans.push(WireSpan {
                        name: cur.str()?,
                        parent: match cur.opt_varint()? {
                            None => None,
                            Some(p) => Some(u32::try_from(p).map_err(|_| DecodeError::BadVarint)?),
                        },
                        start_ns: cur.varint()?,
                        dur_ns: cur.varint()?,
                        shard: match cur.opt_varint()? {
                            None => None,
                            Some(k) => Some(u32::try_from(k).map_err(|_| DecodeError::BadVarint)?),
                        },
                    });
                }
                traces.push(WireTrace {
                    trace_id,
                    label,
                    sampled: flags & TRACE_FLAG_SAMPLED != 0,
                    slow: flags & TRACE_FLAG_SLOW != 0,
                    total_ns,
                    spans,
                });
            }
            Response::Traces { traces }
        }
        RESP_ERROR => Response::Error {
            message: cur.str()?,
        },
        RESP_OVERLOADED => Response::Overloaded,
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        t => return Err(DecodeError::BadTag("response", t)),
    };
    cur.finish()?;
    Ok(resp)
}

// ---- Proto-dispatching conveniences. ----

/// Encode a request under `proto`.
pub fn request_bytes(proto: Proto, req: &Request) -> Vec<u8> {
    match proto {
        Proto::Json => req.encode(),
        Proto::Binary => encode_request(req),
    }
}

/// Append a response body under `proto` to `buf`.
pub fn response_bytes_into(proto: Proto, resp: &Response, buf: &mut Vec<u8>) {
    match proto {
        Proto::Json => buf.extend_from_slice(resp.encode().as_slice()),
        Proto::Binary => encode_response_into(resp, buf),
    }
}

/// Decode a request body by sniffing the magic byte: binary frames can
/// never start like JSON and vice versa, so the server accepts either
/// encoding on any connection (responses still follow the *negotiated*
/// protocol).
pub fn sniff_request(body: &[u8]) -> Result<Request, String> {
    if is_binary(body) {
        decode_request(body).map_err(|e| e.to_string())
    } else {
        Request::decode(body)
    }
}

/// Decode a response body under `proto`.
pub fn response_from(proto: Proto, body: &[u8]) -> Result<Response, String> {
    match proto {
        Proto::Json => Response::decode(body),
        Proto::Binary => decode_response(body).map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn date(y: i32, m: u32, d: u32) -> Date {
        Date::new(y, m, d).unwrap()
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Geographic {
                lat_deg: 41.7625,
                lon_deg: -88.1712,
                radius_km: 10.0,
            },
            Request::SiteSearch {
                service: "MG".into(),
                class: "FXO".into(),
            },
            Request::Shortlist {
                lat_deg: 41.0,
                lon_deg: -88.0,
                radius_km: 25.0,
                min_filings: 11,
            },
            Request::Network {
                licensee: "Alpha Networks".into(),
                date: date(2020, 4, 1),
            },
            Request::Route {
                licensee: "Alpha Networks".into(),
                date: date(2020, 4, 1),
                from: "CME".into(),
                to: "NY4".into(),
            },
            Request::Apa {
                licensee: "β Networks — 世界".into(),
                date: date(2019, 12, 31),
                from: "CME".into(),
                to: "NASDAQ".into(),
            },
            Request::Weather {
                licensee: "Alpha Networks".into(),
                date: date(2020, 4, 1),
                from: "CME".into(),
                to: "NY4".into(),
                samples: 60_000,
                seed: u64::MAX,
            },
            Request::Race {
                licensee: "Alpha Networks".into(),
                date: date(2020, 4, 1),
                from: "CME".into(),
                to: "NY4".into(),
                constellation: "starlink".into(),
                samples: 5_000,
                seed: 7,
            },
            Request::StretchSweep {
                licensee: "β Networks — 世界".into(),
                date: date(2016, 6, 1),
                constellation: "starlink".into(),
            },
            Request::Stats,
            Request::Metrics,
            Request::Traces {
                limit: 16,
                trace_id: None,
            },
            Request::Traces {
                limit: 1,
                trace_id: Some(0xdead_beef_0123_4567_89ab_cdef_f00d_cafe),
            },
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Licenses {
                ids: vec![0, 1, 127, 128, 300, u64::MAX],
            },
            Response::Shortlist {
                geographic_candidates: 57,
                service_filtered: 40,
                shortlisted: 29,
                names: vec!["Alpha".into(), "β — 世界".into(), String::new()],
            },
            Response::Network {
                licensee: "Alpha Networks".into(),
                as_of: date(2020, 4, 1),
                towers: 20,
                links: 19,
                active_licenses: 47,
            },
            Response::Route {
                latency_ms: Some(4.25),
                towers: Some(20),
                length_m: Some(1_180_000.0),
            },
            Response::Route {
                latency_ms: None,
                towers: None,
                length_m: None,
            },
            Response::Apa { apa: Some(0.75) },
            Response::Apa { apa: None },
            Response::Weather {
                clear_ms: 4.2,
                p50_ms: 4.3,
                p95_ms: f64::INFINITY,
                p99_ms: f64::INFINITY,
                availability: 0.97,
                samples: 60_000,
            },
            Response::Race {
                from: "CME".into(),
                to: "NY4".into(),
                constellation: "starlink".into(),
                geodesic_km: 1186.0,
                c_bound_ms: 3.956,
                microwave_ms: Some(3.982),
                fiber_ms: 7.12,
                leo_ms: Some(9.4),
                leo_isl_hops: Some(3),
                mw_stretch: Some(1.0066),
                fiber_stretch: 1.8,
                leo_stretch: Some(2.38),
                winner: "microwave".into(),
                wx_clear_ms: 3.982,
                wx_p50_ms: 3.982,
                wx_p95_ms: 4.2,
                wx_p99_ms: f64::INFINITY,
                wx_availability: 0.985,
                wx_samples: 5_000,
            },
            Response::Race {
                from: "CME".into(),
                to: "NASDAQ".into(),
                constellation: "starlink".into(),
                geodesic_km: 1176.0,
                c_bound_ms: 3.92,
                microwave_ms: None,
                fiber_ms: 7.06,
                leo_ms: None,
                leo_isl_hops: None,
                mw_stretch: None,
                fiber_stretch: 1.8,
                leo_stretch: None,
                winner: "fiber".into(),
                wx_clear_ms: f64::INFINITY,
                wx_p50_ms: f64::INFINITY,
                wx_p95_ms: f64::INFINITY,
                wx_p99_ms: f64::INFINITY,
                wx_availability: 0.0,
                wx_samples: 0,
            },
            Response::StretchSweep {
                entries: vec![
                    SweepEntry {
                        pair: "CME-NY4".into(),
                        geodesic_km: 1186.0,
                        mw_stretch: Some(1.0066),
                        fiber_stretch: 1.8,
                        leo_stretch: Some(2.38),
                    },
                    SweepEntry {
                        pair: "Tokyo-NewYork".into(),
                        geodesic_km: 10_850.0,
                        mw_stretch: None,
                        fiber_stretch: 1.8,
                        leo_stretch: Some(1.42),
                    },
                ],
            },
            Response::StretchSweep { entries: vec![] },
            Response::Stats {
                serve: ServeSnapshot {
                    received: 10,
                    accepted: 9,
                    rejected_overloaded: 1,
                    completed: 9,
                    errors: 2,
                    flights_led: 5,
                    flights_coalesced: 3,
                    queue_wait_ns_total: 123_456,
                    queue_wait_ns_max: 45_678,
                    service_ns_total: 999_999,
                    service_ns_max: 888_888,
                    queue_high_water: 7,
                    generation_swaps: 3,
                },
                session: StatsSnapshot {
                    network_hits: 1,
                    reconstructions: 2,
                    route_hits: 3,
                    route_misses: 4,
                    apa_hits: 5,
                    apa_misses: 6,
                    graph_hits: 7,
                    graph_misses: 8,
                },
            },
            Response::Metrics {
                registry: Json::Obj(vec![
                    (
                        "counters".into(),
                        Json::Obj(vec![("serve.received".into(), Json::Num(12.0))]),
                    ),
                    ("gauges".into(), Json::Obj(vec![])),
                    (
                        "histograms".into(),
                        Json::Obj(vec![(
                            "serve.service_ns".into(),
                            Json::Obj(vec![
                                ("count".into(), Json::Num(3.0)),
                                ("p50".into(), Json::Num(1500.0)),
                            ]),
                        )]),
                    ),
                ]),
            },
            Response::Traces {
                traces: vec![WireTrace {
                    trace_id: u128::MAX,
                    label: "shortlist".into(),
                    sampled: true,
                    slow: true,
                    total_ns: 61_000_000,
                    spans: vec![
                        WireSpan {
                            name: "serve.request".into(),
                            parent: None,
                            start_ns: 0,
                            dur_ns: 61_000_000,
                            shard: None,
                        },
                        WireSpan {
                            name: "queue.wait".into(),
                            parent: Some(0),
                            start_ns: 0,
                            dur_ns: 1_000_000,
                            shard: None,
                        },
                        WireSpan {
                            name: "shard.call".into(),
                            parent: Some(0),
                            start_ns: 1_000_000,
                            dur_ns: 59_000_000,
                            shard: Some(3),
                        },
                    ],
                }],
            },
            Response::Traces { traces: vec![] },
            Response::Error {
                message: "unknown data center \"LD4\"".into(),
            },
            Response::Overloaded,
            Response::ShuttingDown,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            assert!(is_binary(&bytes));
            let back = decode_request(&bytes).unwrap();
            assert_eq!(back, req);
            // Deterministic: re-encoding is byte-identical.
            assert_eq!(encode_request(&back), bytes);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            assert!(is_binary(&bytes));
            let back = decode_response(&bytes).unwrap();
            assert_eq!(back, resp);
            assert_eq!(encode_response(&back), bytes);
        }
    }

    #[test]
    fn binary_fixed_point_matches_json_fixed_point() {
        // The acceptance property: decoding the binary encoding lands on
        // exactly the value the JSON round trip lands on, variant by
        // variant — including the null/+∞/None canonicalizations. The
        // comparison stays inside the JSON codec's 2⁵³ integer domain
        // (the binary codec is exact over all of u64; JSON is not).
        let json_safe = |r: Response| match r {
            Response::Licenses { ids } => Response::Licenses {
                ids: ids.into_iter().map(|id| id.min((1 << 53) - 1)).collect(),
            },
            other => other,
        };
        let mut weird: Vec<Response> = sample_responses().into_iter().map(json_safe).collect();
        weird.push(Response::Route {
            latency_ms: Some(f64::INFINITY), // JSON writes null, reads None
            towers: Some(3),
            length_m: Some(f64::NAN), // likewise
        });
        weird.push(Response::Weather {
            clear_ms: f64::NAN, // JSON writes null, reads +∞
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: f64::NEG_INFINITY,
            availability: 1.0,
            samples: 10,
        });
        for resp in weird {
            let via_bin = decode_response(&encode_response(&resp)).unwrap();
            let via_json = Response::decode(&resp.encode()).unwrap();
            assert_eq!(via_bin, via_json, "fixed points diverge for {resp:?}");
        }
        let json_safe_req = |r: Request| match r {
            Request::Weather { seed, .. } if seed >= (1 << 53) => Request::Weather {
                licensee: "Alpha Networks".into(),
                date: date(2020, 4, 1),
                from: "CME".into(),
                to: "NY4".into(),
                samples: 60_000,
                seed: (1 << 53) - 1,
            },
            other => other,
        };
        for req in sample_requests().into_iter().map(json_safe_req) {
            let via_bin = decode_request(&encode_request(&req)).unwrap();
            let via_json = Request::decode(&req.encode()).unwrap();
            assert_eq!(via_bin, via_json);
        }
    }

    #[test]
    fn binary_is_smaller_than_json_on_the_wire() {
        for resp in sample_responses() {
            let bin = encode_response(&resp).len();
            let json = resp.encode().len();
            assert!(
                bin <= json,
                "binary ({bin} B) larger than JSON ({json} B) for {resp:?}"
            );
        }
    }

    #[test]
    fn hello_frames_round_trip_and_classify() {
        for proto in [Proto::Json, Proto::Binary] {
            let h = hello(proto);
            assert!(is_binary(&h));
            assert_eq!(parse_hello(&h), Some(Ok(proto)));
            let ack = hello_ack(proto);
            assert_eq!(parse_hello_ack(&ack), Ok(proto));
            // An ack is not a hello and a hello is not an ack.
            assert_eq!(parse_hello(&ack), None);
            assert!(parse_hello_ack(&h).is_err());
        }
        // Requests and JSON are not hellos.
        assert_eq!(parse_hello(&encode_request(&Request::Stats)), None);
        assert_eq!(parse_hello(b"{\"type\":\"stats\"}"), None);
        // Version and proto validation.
        assert_eq!(
            parse_hello(&[MAGIC, KIND_HELLO, 9, 0]),
            Some(Err(DecodeError::BadVersion(9)))
        );
        assert_eq!(
            parse_hello(&[MAGIC, KIND_HELLO, VERSION, 7]),
            Some(Err(DecodeError::BadProto(7)))
        );
        assert_eq!(
            parse_hello(&[MAGIC, KIND_HELLO]),
            Some(Err(DecodeError::Truncated))
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_structured_errors() {
        let bytes = encode_response(&sample_responses()[1]);
        for cut in 0..bytes.len() {
            let err = decode_response(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated
                        | DecodeError::BadLength(_)
                        | DecodeError::BadMagic(_)
                        | DecodeError::BadKind(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            decode_response(&padded).unwrap_err(),
            DecodeError::Trailing(1)
        );
    }

    #[test]
    fn hostile_lengths_never_allocate() {
        // Declares a 2^41-byte string in a 16-byte frame.
        let mut frame = vec![MAGIC, KIND_REQUEST, REQ_SITE_SEARCH];
        frame.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x40]);
        frame.extend_from_slice(b"xxxxxxx");
        match decode_request(&frame).unwrap_err() {
            DecodeError::BadLength(n) => assert_eq!(n, 1 << 41),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deep_json_nesting_is_rejected() {
        let mut frame = vec![MAGIC, KIND_RESPONSE, RESP_METRICS];
        for _ in 0..200 {
            frame.push(5); // array…
            frame.push(1); // …of one element
        }
        frame.push(0); // null at the bottom
        assert_eq!(decode_response(&frame).unwrap_err(), DecodeError::TooDeep);
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 11 continuation bytes.
        let mut frame = vec![MAGIC, KIND_RESPONSE, RESP_LICENSES, 1];
        frame.extend_from_slice(&[0xff; 10]);
        frame.push(0x7f);
        assert!(matches!(
            decode_response(&frame).unwrap_err(),
            DecodeError::BadVarint | DecodeError::BadLength(_)
        ));
    }

    #[test]
    fn proto_names_round_trip() {
        for proto in [Proto::Json, Proto::Binary] {
            assert_eq!(Proto::parse(proto.name()), Some(proto));
        }
        assert_eq!(Proto::parse("binary"), Some(Proto::Binary));
        assert_eq!(Proto::parse("msgpack"), None);
    }
}
