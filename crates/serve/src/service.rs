//! The in-process query engine: dispatches typed [`Request`]s onto an
//! [`AnalysisSession`] behind the single-flight layer.
//!
//! This is the same object whether the caller is a TCP connection
//! handler or a local thread — the wire server is a transport wrapper
//! around [`Service::handle`], which is what makes "served bytes must
//! equal direct-session bytes" a testable property.

use crate::api::{Request, Response, SweepEntry};
use crate::singleflight::Group;
use crate::stats::ServeStats;
use hft_core::corridor::{DataCenter, CME, EQUINIX_NY4, NASDAQ, NYSE};
use hft_core::session::AnalysisSession;
use hft_core::weather;
use hft_geodesy::LatLon;
use hft_race::{RaceEngine, RaceOutcome};
use hft_radio::WeatherSampler;
use hft_uls::scrape::ScrapeConfig;
use hft_uls::{RadioService, StationClass, UlsDatabase, UlsPortal};
use std::sync::Arc;

/// Resolve a data-center code used on the wire.
pub fn data_center(code: &str) -> Option<&'static DataCenter> {
    [&CME, &EQUINIX_NY4, &NYSE, &NASDAQ]
        .into_iter()
        .find(|dc| dc.code == code)
}

/// Anything that can answer requests for the transport layer: a
/// fixed-corpus [`Service`] or a generation-swapping
/// [`LiveService`](crate::live::LiveService). The wire server, the
/// connection handlers and the pool workers are generic over this, so
/// live serving reuses the whole transport stack unchanged.
pub trait Handler: Sync {
    /// Answer one request.
    fn handle(&self, req: &Request) -> Response;

    /// The serving-layer counters this handler reports into.
    fn serve_stats(&self) -> &ServeStats;
}

/// The query engine: one shared [`AnalysisSession`] plus the
/// single-flight group and the serving-layer counters.
///
/// A `Service` is pinned to exactly one corpus generation: its session
/// caches and its single-flight group never see requests from another
/// generation (flight keys carry the generation number, and a live
/// server builds a fresh `Service` per generation), so a stale memoized
/// network can never answer a post-swap query.
pub struct Service<'a> {
    session: AnalysisSession<'a>,
    generation: u64,
    flights: Group<Response>,
    stats: Arc<ServeStats>,
    race: RaceEngine,
}

impl<'a> Service<'a> {
    /// A service over a borrowed license corpus (generation 0, its own
    /// counters) — the fixed-corpus server path.
    pub fn new(db: &'a UlsDatabase) -> Service<'a> {
        Service {
            session: AnalysisSession::new(db),
            generation: 0,
            flights: Group::new(),
            stats: Arc::new(ServeStats::default()),
            race: RaceEngine::new(),
        }
    }

    /// A service pinned to a published corpus snapshot. The session
    /// co-owns the corpus (so the snapshot outlives the store's next
    /// publish), and `stats` is shared so counters accumulate across a
    /// live server's generations.
    pub fn over_snapshot(
        db: Arc<UlsDatabase>,
        generation: u64,
        stats: Arc<ServeStats>,
    ) -> Service<'static> {
        Service {
            session: AnalysisSession::shared(db),
            generation,
            flights: Group::new(),
            stats,
            race: RaceEngine::new(),
        }
    }

    /// The underlying analysis session.
    pub fn session(&self) -> &AnalysisSession<'a> {
        &self.session
    }

    /// The corpus generation this engine is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The serving-layer counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The latency-race engine (and its caches) pinned to this
    /// service's corpus generation.
    pub fn race_engine(&self) -> &RaceEngine {
        &self.race
    }

    /// The corpus (always present: both constructors supply one).
    fn portal(&self) -> &UlsDatabase {
        self.session
            .db()
            .expect("service sessions always carry a portal")
    }

    /// Answer one request, coalescing concurrent identical work.
    ///
    /// Safe to call from many threads at once; this is the entry point
    /// pool workers use.
    pub fn handle(&self, req: &Request) -> Response {
        let epoch_of = |licensee: &str, date| self.session.epoch(licensee, date);
        match req.flight_key(&epoch_of) {
            None => self.compute(req),
            Some(key) => {
                // The generation prefix keeps coalescing within one
                // corpus generation even if a Group were ever shared.
                let key = format!("g{}|{key}", self.generation);
                let (response, leader) = self.flights.run(&key, || self.compute(req));
                if leader {
                    self.stats.on_flight_led();
                } else {
                    self.stats.on_flight_coalesced();
                }
                response
            }
        }
    }

    /// The uncoalesced computation: one direct [`AnalysisSession`] (or
    /// portal) call per request kind.
    fn compute(&self, req: &Request) -> Response {
        match req {
            Request::Geographic {
                lat_deg,
                lon_deg,
                radius_km,
            } => match LatLon::new(*lat_deg, *lon_deg) {
                Err(e) => err(format!("bad coordinates: {e}")),
                Ok(center) => Response::Licenses {
                    ids: canonical_ids(self.portal().geographic_search(&center, *radius_km)),
                },
            },
            Request::SiteSearch { service, class } => Response::Licenses {
                ids: canonical_ids(self.portal().site_search(
                    &RadioService::from_code(service),
                    &StationClass::from_code(class),
                )),
            },
            Request::Shortlist {
                lat_deg,
                lon_deg,
                radius_km,
                min_filings,
            } => match LatLon::new(*lat_deg, *lon_deg) {
                Err(e) => err(format!("bad coordinates: {e}")),
                Ok(reference) => {
                    let config = ScrapeConfig {
                        radius_km: *radius_km,
                        min_filings: *min_filings,
                    };
                    match self.session.scrape(&reference, &config) {
                        None => err("session has no portal".to_string()),
                        Some(outcome) => Response::Shortlist {
                            geographic_candidates: outcome.report.geographic_candidates as u64,
                            service_filtered: outcome.report.service_filtered as u64,
                            shortlisted: outcome.report.shortlisted as u64,
                            names: outcome.shortlist.clone(),
                        },
                    }
                }
            },
            Request::Network { licensee, date } => {
                let net = self.session.network(licensee, *date);
                Response::Network {
                    licensee: licensee.clone(),
                    as_of: *date,
                    towers: net.tower_count() as u64,
                    links: net.link_count() as u64,
                    active_licenses: self.session.active_count(licensee, *date) as u64,
                }
            }
            Request::Route {
                licensee,
                date,
                from,
                to,
            } => match pair(from, to) {
                Err(e) => err(e),
                Ok((a, b)) => match self.session.route(licensee, *date, a, b) {
                    None => Response::Route {
                        latency_ms: None,
                        towers: None,
                        length_m: None,
                    },
                    Some(route) => Response::Route {
                        latency_ms: Some(route.latency_ms),
                        towers: Some(route.towers as u64),
                        length_m: Some(route.length_m),
                    },
                },
            },
            Request::Apa {
                licensee,
                date,
                from,
                to,
            } => match pair(from, to) {
                Err(e) => err(e),
                Ok((a, b)) => Response::Apa {
                    apa: self.session.apa(licensee, *date, a, b),
                },
            },
            Request::Weather {
                licensee,
                date,
                from,
                to,
                samples,
                seed,
            } => match pair(from, to) {
                Err(e) => err(e),
                Ok((a, b)) => {
                    if *samples == 0 || *samples > 1_000_000 {
                        return err(format!("samples must be in 1..=1000000, got {samples}"));
                    }
                    let net = self.session.network(licensee, *date);
                    let rg = self.session.routing_graph(licensee, *date, a, b);
                    let sampler = WeatherSampler::stormy_season();
                    match weather::conditional_latency_on(
                        &rg, &net, a, b, &sampler, *samples, *seed,
                    ) {
                        None => err(format!("{licensee}: no route {from}->{to}")),
                        Some(o) => Response::Weather {
                            clear_ms: o.clear_ms,
                            p50_ms: o.p50_ms,
                            p95_ms: o.p95_ms,
                            p99_ms: o.p99_ms,
                            availability: o.availability,
                            samples: o.samples as u64,
                        },
                    }
                }
            },
            Request::Race {
                licensee,
                date,
                from,
                to,
                constellation,
                samples,
                seed,
            } => match pair(from, to) {
                Err(e) => err(e),
                Ok((a, b)) => {
                    if *samples == 0 || *samples > 1_000_000 {
                        return err(format!("samples must be in 1..=1000000, got {samples}"));
                    }
                    match self.race.race(
                        &self.session,
                        licensee,
                        *date,
                        a,
                        b,
                        constellation,
                        *samples,
                        *seed,
                    ) {
                        Err(e) => err(e),
                        Ok(outcome) => race_response(outcome),
                    }
                }
            },
            Request::StretchSweep {
                licensee,
                date,
                constellation,
            } => match self
                .race
                .stretch_sweep(&self.session, licensee, *date, constellation)
            {
                Err(e) => err(e),
                Ok(entries) => Response::StretchSweep {
                    entries: entries
                        .into_iter()
                        .map(|e| SweepEntry {
                            pair: e.pair,
                            geodesic_km: e.geodesic_km,
                            mw_stretch: e.mw_stretch,
                            fiber_stretch: e.fiber_stretch,
                            leo_stretch: e.leo_stretch,
                        })
                        .collect(),
                },
            },
            Request::Stats => Response::Stats {
                serve: self.stats.snapshot(),
                session: self.session.stats(),
            },
            Request::Metrics => Response::Metrics {
                registry: metrics_json(),
            },
            Request::Traces { limit, trace_id } => traces_response(*limit, *trace_id),
            Request::Shutdown => Response::ShuttingDown,
        }
    }
}

impl Handler for Service<'_> {
    fn handle(&self, req: &Request) -> Response {
        Service::handle(self, req)
    }

    fn serve_stats(&self) -> &ServeStats {
        self.stats()
    }
}

fn pair(from: &str, to: &str) -> Result<(&'static DataCenter, &'static DataCenter), String> {
    let a = data_center(from).ok_or_else(|| format!("unknown data center {from:?}"))?;
    let b = data_center(to).ok_or_else(|| format!("unknown data center {to:?}"))?;
    Ok((a, b))
}

fn err(message: String) -> Response {
    Response::Error { message }
}

/// Flatten a [`RaceOutcome`] onto the wire shape. An absent weather
/// model (no corpus microwave route) encodes as the empty Monte Carlo:
/// zero samples, zero availability, infinite latencies — the same
/// degenerate distribution an MC over a permanently-down link yields,
/// and byte-identical across shards that do not own the licensee.
fn race_response(o: RaceOutcome) -> Response {
    let (mw_stretch, fiber_stretch, leo_stretch) =
        (o.mw_stretch(), o.fiber_stretch(), o.leo_stretch());
    let wx = o.weather;
    Response::Race {
        from: o.from,
        to: o.to,
        constellation: o.constellation,
        geodesic_km: o.geodesic_km,
        c_bound_ms: o.c_bound_ms,
        microwave_ms: o.microwave_ms,
        fiber_ms: o.fiber_ms,
        leo_ms: o.leo_ms,
        leo_isl_hops: o.leo_isl_hops,
        mw_stretch,
        fiber_stretch,
        leo_stretch,
        winner: o.winner,
        wx_clear_ms: wx.map_or(f64::INFINITY, |w| w.clear_ms),
        wx_p50_ms: wx.map_or(f64::INFINITY, |w| w.p50_ms),
        wx_p95_ms: wx.map_or(f64::INFINITY, |w| w.p95_ms),
        wx_p99_ms: wx.map_or(f64::INFINITY, |w| w.p99_ms),
        wx_availability: wx.map_or(0.0, |w| w.availability),
        wx_samples: wx.map_or(0, |w| w.samples as u64),
    }
}

/// Wire ordering of a license search result: ascending ids.
///
/// The portal returns corpus-insertion order, which is an artifact of
/// load order and — decisively — cannot be reconstructed from disjoint
/// shard corpora. Sorting by id makes the wire answer a pure function
/// of the *set* of matching licenses, so a shard router can k-way-merge
/// per-shard answers into exactly the bytes a single-corpus service
/// would have produced.
fn canonical_ids(licenses: Vec<&hft_uls::License>) -> Vec<u64> {
    let mut ids: Vec<u64> = licenses.iter().map(|l| l.id.0).collect();
    ids.sort_unstable();
    ids
}

/// The flight recorder's answer to [`Request::Traces`]: one exact trace
/// by id, or the slowest `limit` records. The recorder is process-wide,
/// so the same helper serves a single [`Service`], a live server and a
/// shard router.
pub(crate) fn traces_response(limit: usize, trace_id: Option<u128>) -> Response {
    let records = match trace_id {
        Some(id) => hft_obs::find_trace(id).into_iter().collect(),
        None => hft_obs::trace_snapshot(limit.min(256)),
    };
    Response::Traces {
        traces: records.iter().map(crate::api::WireTrace::of).collect(),
    }
}

/// The global telemetry registry as a wire-encodable JSON value.
///
/// Rendered through `hft_obs::expo::render_json` and re-parsed, so the
/// wire payload is byte-for-byte the registry's own deterministic
/// exposition (sorted names, fixed summary key order).
pub fn metrics_json() -> crate::json::Json {
    let snap = hft_obs::global().snapshot();
    crate::json::parse(&hft_obs::expo::render_json(&snap))
        .expect("registry exposition is well-formed JSON")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_center_codes_resolve() {
        assert_eq!(data_center("CME").unwrap().code, "CME");
        assert_eq!(data_center("NY4").unwrap().code, "NY4");
        assert_eq!(data_center("NYSE").unwrap().code, "NYSE");
        assert_eq!(data_center("NASDAQ").unwrap().code, "NASDAQ");
        assert!(data_center("LD4").is_none());
    }
}
