//! A zero-dependency readiness poller: epoll on Linux/x86-64 (raw
//! syscalls — the workspace vendors no libc), and a portable
//! spurious-ready fallback everywhere else.
//!
//! The API is the small slice of `mio` the event loop needs: register a
//! socket under a `usize` token with read/write interest, block in
//! [`Poller::wait`], and get back `(token, readable, writable)` events.
//! The fallback backend reports *every* registered token as ready after
//! a short sleep — spuriously, but correctly: the event loop only ever
//! performs nonblocking reads and writes, so a spurious wake costs one
//! `WouldBlock` syscall, never a stall and never a torn frame.
//!
//! [`Waker`] lets pool workers interrupt a blocked `wait` when they
//! fill a response slot. It is a self-connected nonblocking UDP socket
//! (portable, no pipes, no eventfd) with an atomic arm flag so a burst
//! of completions costs one datagram, and it times the wake-to-drain
//! gap into the `serve.poll_wake_ns` histogram.

use std::io;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The raw handle type sockets are registered by.
#[cfg(unix)]
pub type SourceFd = std::os::fd::RawFd;
/// The raw handle type sockets are registered by.
#[cfg(not(unix))]
pub type SourceFd = i64;

/// What readiness a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the socket is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the socket accepts more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the socket was registered under.
    pub token: usize,
    /// Bytes may be readable (or the peer closed).
    pub readable: bool,
    /// The socket may accept writes.
    pub writable: bool,
}

/// The Linux/x86-64 epoll backend, speaking to the kernel directly:
/// the workspace vendors no libc crate, so `epoll_create1`, `epoll_ctl`,
/// `epoll_wait` and `close` are raw `syscall` instructions. This is the
/// only unsafe code in the crate and it is confined to this module.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod sys {
    use std::io;

    const SYS_CLOSE: u64 = 3;
    const SYS_EPOLL_WAIT: u64 = 232;
    const SYS_EPOLL_CTL: u64 = 233;
    const SYS_EPOLL_CREATE1: u64 = 291;

    pub const EPOLL_CTL_ADD: u64 = 1;
    pub const EPOLL_CTL_DEL: u64 = 2;
    pub const EPOLL_CTL_MOD: u64 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: u64 = 0x80000;

    /// The kernel's epoll_event layout (packed on x86-64).
    #[repr(C, packed)]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// One x86-64 `syscall` instruction. Arguments follow the kernel
    /// convention (rdi, rsi, rdx, r10); rcx/r11 are clobbered by the
    /// instruction itself. A negative return is `-errno`.
    unsafe fn syscall4(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64) -> i64 {
        let ret: i64;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as i64 => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes one integer flag and touches no
        // user memory.
        check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) }).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: u64, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: the event struct outlives the call; the kernel copies
        // it before returning. DEL ignores the pointer.
        check(unsafe {
            syscall4(
                SYS_EPOLL_CTL,
                epfd as u64,
                op,
                fd as u64,
                &mut ev as *mut EpollEvent as u64,
            )
        })
        .map(|_| ())
    }

    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the kernel writes at most `events.len()` entries into
        // the buffer we own for the duration of the call.
        check(unsafe {
            syscall4(
                SYS_EPOLL_WAIT,
                epfd as u64,
                events.as_mut_ptr() as u64,
                events.len() as u64,
                timeout_ms as u32 as u64,
            )
        })
        .map(|n| n as usize)
    }

    pub fn close(fd: i32) {
        // SAFETY: closing an fd we own; the result is advisory.
        let _ = unsafe { syscall4(SYS_CLOSE, fd as u64, 0, 0, 0) };
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
struct Backend {
    epfd: i32,
    buf: Mutex<Vec<sys::EpollEvent>>,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Backend {
    fn new() -> io::Result<Backend> {
        Ok(Backend {
            epfd: sys::epoll_create1()?,
            buf: Mutex::new(vec![sys::EpollEvent::default(); 256]),
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    fn register(&self, fd: SourceFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            Self::mask(interest),
            token as u64,
        )
    }

    fn modify(&self, fd: SourceFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            Self::mask(interest),
            token as u64,
        )
    }

    fn deregister(&self, fd: SourceFd, _token: usize) -> io::Result<()> {
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let mut buf = self.buf.lock().expect("poll buf");
        let n = match sys::epoll_wait(self.epfd, &mut buf, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &buf[..n] {
            let bits = ev.events;
            let hup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            out.push(Event {
                token: ev.data as usize,
                // Errors and hangups surface as readability: the next
                // nonblocking read reports the real condition.
                readable: bits & sys::EPOLLIN != 0 || hup,
                writable: bits & sys::EPOLLOUT != 0,
            });
        }
        Ok(())
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for Backend {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

/// The portable fallback: no kernel readiness at all. `wait` sleeps
/// ~1 ms and reports every registered token ready for everything it
/// registered interest in. Spurious by design — see the module docs.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
struct Backend {
    registered: Mutex<std::collections::HashMap<usize, Interest>>,
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
impl Backend {
    fn new() -> io::Result<Backend> {
        Ok(Backend {
            registered: Mutex::new(std::collections::HashMap::new()),
        })
    }

    fn register(&self, _fd: SourceFd, token: usize, interest: Interest) -> io::Result<()> {
        self.registered
            .lock()
            .expect("poll reg")
            .insert(token, interest);
        Ok(())
    }

    fn modify(&self, fd: SourceFd, token: usize, interest: Interest) -> io::Result<()> {
        self.register(fd, token, interest)
    }

    fn deregister(&self, _fd: SourceFd, token: usize) -> io::Result<()> {
        self.registered.lock().expect("poll reg").remove(&token);
        Ok(())
    }

    fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let nap = timeout
            .unwrap_or(Duration::from_millis(1))
            .min(Duration::from_millis(1));
        std::thread::sleep(nap);
        for (&token, &interest) in self.registered.lock().expect("poll reg").iter() {
            out.push(Event {
                token,
                readable: interest.readable,
                writable: interest.writable,
            });
        }
        Ok(())
    }
}

/// The readiness poller. See the module docs for backend selection.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Create a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::new()?,
        })
    }

    /// Start watching `fd` under `token`.
    pub fn register(&self, fd: SourceFd, token: usize, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)
    }

    /// Change the interest set of a registered socket.
    pub fn modify(&self, fd: SourceFd, token: usize, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)
    }

    /// Stop watching `fd` (registered under `token`). Advisory —
    /// closing the socket also works.
    pub fn deregister(&self, fd: SourceFd, token: usize) -> io::Result<()> {
        self.backend.deregister(fd, token)
    }

    /// Block until at least one event, the timeout, or a wake. Events
    /// are appended to `out` (which is cleared first).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        self.backend.wait(out, timeout)
    }
}

/// Wakes a [`Poller`] blocked in `wait` from another thread.
///
/// Register its [`Waker::fd`] under a reserved token (epoll backend);
/// the fallback backend needs no registration because its `wait` always
/// returns within a millisecond.
pub struct Waker {
    sock: UdpSocket,
    armed: AtomicBool,
    armed_at: Mutex<Option<Instant>>,
    wake_ns: std::sync::Arc<hft_obs::Histogram>,
}

impl Waker {
    /// A waker backed by a self-connected nonblocking UDP socket on
    /// loopback.
    pub fn new() -> io::Result<Waker> {
        let sock = UdpSocket::bind(("127.0.0.1", 0))?;
        sock.connect(sock.local_addr()?)?;
        sock.set_nonblocking(true)?;
        Ok(Waker {
            sock,
            armed: AtomicBool::new(false),
            armed_at: Mutex::new(None),
            wake_ns: hft_obs::global().histogram("serve.poll_wake_ns"),
        })
    }

    /// The raw handle to register with the poller.
    #[cfg(unix)]
    pub fn fd(&self) -> SourceFd {
        use std::os::fd::AsRawFd;
        self.sock.as_raw_fd()
    }

    /// The raw handle to register with the poller.
    #[cfg(not(unix))]
    pub fn fd(&self) -> SourceFd {
        -1
    }

    /// Interrupt the poller. Coalescing: a burst of wakes between two
    /// drains sends one datagram.
    pub fn wake(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) {
            *self.armed_at.lock().expect("waker") = Some(Instant::now());
            // A full (unread) socket buffer still wakes the poller;
            // loopback send cannot meaningfully fail beyond that.
            let _ = self.sock.send(&[1]);
        }
    }

    /// Consume pending wakes; called by the event loop when its token
    /// fires. Records the wake-to-drain latency.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::Release);
        if let Some(at) = self.armed_at.lock().expect("waker").take() {
            self.wake_ns.record(at.elapsed().as_nanos() as u64);
        }
        let mut buf = [0u8; 16];
        while self.sock.recv(&mut buf).is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    #[cfg(unix)]
    fn fd_of(s: &impl std::os::fd::AsRawFd) -> SourceFd {
        s.as_raw_fd()
    }

    #[cfg(unix)]
    #[test]
    fn listener_readability_surfaces() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(fd_of(&listener), 7, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable) || events.is_empty());

        let _client = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "no accept readiness event");
        }
    }

    #[cfg(unix)]
    #[test]
    fn stream_read_and_write_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(fd_of(&server_side), 3, Interest::READ_WRITE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        let (mut saw_read, mut saw_write) = (false, false);
        while !(saw_read && saw_write) {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            for e in &events {
                if e.token == 3 {
                    saw_read |= e.readable;
                    saw_write |= e.writable;
                }
            }
            assert!(Instant::now() < deadline, "missing readiness");
        }

        // Dropping write interest stops writable events (epoll backend;
        // the fallback stays spurious, which is also fine).
        poller
            .modify(fd_of(&server_side), 3, Interest::READ)
            .unwrap();
        let mut buf = [0u8; 8];
        let mut s = &server_side;
        let _ = s.read(&mut buf);
        poller.deregister(fd_of(&server_side), 3).unwrap();
    }

    #[test]
    fn waker_interrupts_wait() {
        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        #[cfg(unix)]
        poller.register(waker.fd(), 1, Interest::READ).unwrap();

        let started = Instant::now();
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
            w.wake(); // coalesced
        });
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            if events.iter().any(|e| e.token == 1 && e.readable) {
                break;
            }
            #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
            if started.elapsed() >= Duration::from_millis(30) {
                break;
            }
            assert!(Instant::now() < deadline, "wake never surfaced");
        }
        waker.drain();
        t.join().unwrap();
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
