//! hft-serve: a concurrent analysis query service over the ULS portal
//! and the shared [`AnalysisSession`](hft_core::session::AnalysisSession).
//!
//! The crate is layered, transport-last:
//!
//! 1. [`api`] — the typed [`Request`](api::Request)/[`Response`](api::Response)
//!    enums with a deterministic JSON codec.
//! 2. [`service`] — the in-process query engine; TCP is a wrapper around
//!    [`Service::handle`](service::Service::handle).
//! 3. [`singleflight`] — concurrent identical cold requests coalesce
//!    onto one session computation.
//! 4. [`pool`] — bounded FIFO admission with explicit `Overloaded`
//!    backpressure; never unbounded buffering.
//! 5. [`wire`] + [`server`] — length-prefixed frames over TCP, an
//!    in-order per-connection outbox, and a blocking/pipelining client.
//! 6. [`live`] — a generation-following engine over an ingest
//!    [`SnapshotStore`](hft_ingest::SnapshotStore): one
//!    [`Service`](service::Service) per corpus generation, swapped when
//!    the ingest applier publishes, so session memoization can never
//!    serve a stale corpus.
//!
//! Observability lives in [`stats`]: every admission, rejection, queue
//! wait, service time, and single-flight outcome is counted and exposed
//! through the `stats` request and the shutdown dump.

// Unsafe is denied crate-wide; the one exception is the raw epoll
// syscall shim in `poll::sys`, which carries a module-scoped allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod binwire;
pub mod evloop;
pub mod json;
pub mod live;
pub mod poll;
pub mod pool;
pub mod router;
pub mod server;
pub mod service;
pub mod singleflight;
pub mod stats;
pub mod wire;

pub use api::{Request, Response, WireSpan, WireTrace};
pub use binwire::Proto;
pub use evloop::{ConnDriver, DriverCx, DriverFactory, ExtraListener};
pub use live::LiveService;
pub use router::ShardRouter;
pub use server::{Client, IoMode, ServeConfig, Server};
pub use service::{Handler, Service};
pub use stats::{ServeSnapshot, ServeStats};
