//! Live serving over a mutating corpus: a [`Handler`] that follows a
//! [`SnapshotStore`] and swaps query engines as generations publish.
//!
//! The invariant that makes this safe is *one engine per generation*:
//! each published corpus generation gets its own [`Service`] — fresh
//! `AnalysisSession` memoization caches, fresh single-flight group —
//! built over a shared handle to that generation's corpus. Cache
//! invalidation is therefore by construction, not by bookkeeping: a
//! network memoized against generation *N* lives in generation *N*'s
//! engine, which no request routed after the swap to *N+1* can reach.
//! Requests already inside the old engine finish against it — the
//! engine's session co-owns its corpus `Arc`, so the corpus stays alive
//! and consistent until the last in-flight query drops it.
//!
//! Staleness detection is a single atomic load
//! ([`SnapshotStore::generation`]) per request; the engine mutex is
//! taken only to clone the engine handle out (and, rarely, to rebuild
//! it), never while computing a response.

use crate::api::{Request, Response};
use crate::service::{Handler, Service};
use crate::stats::ServeStats;
use hft_ingest::SnapshotStore;
use std::sync::{Arc, Mutex};

/// A generation-following query engine. See the module docs.
pub struct LiveService {
    store: Arc<SnapshotStore>,
    engine: Mutex<Arc<Service<'static>>>,
    stats: Arc<ServeStats>,
    /// Registry handles, resolved once (labeled by shard when this
    /// service is one fleet shard's worker).
    swap_ns: Arc<hft_obs::Histogram>,
    staleness_ms: Arc<hft_obs::Gauge>,
}

impl LiveService {
    /// A live service over `store`, starting from its current snapshot.
    pub fn new(store: Arc<SnapshotStore>) -> LiveService {
        LiveService::build(store, None)
    }

    /// A live service acting as fleet shard `shard`'s worker: identical
    /// behavior, but its serve counters and swap/staleness series carry
    /// a `shard` label in the global registry.
    pub fn for_shard(store: Arc<SnapshotStore>, shard: u32) -> LiveService {
        LiveService::build(store, Some(shard))
    }

    fn build(store: Arc<SnapshotStore>, shard: Option<u32>) -> LiveService {
        let stats = Arc::new(match shard {
            None => ServeStats::default(),
            Some(k) => ServeStats::for_shard(k),
        });
        let registry = hft_obs::global();
        let name = |base: &str| match shard {
            None => base.to_string(),
            Some(k) => hft_obs::registry::labeled(base, "shard", &k.to_string()),
        };
        let snap = store.current();
        let engine = Arc::new(Service::over_snapshot(
            snap.db_arc(),
            snap.generation(),
            Arc::clone(&stats),
        ));
        LiveService {
            store,
            engine: Mutex::new(engine),
            stats,
            swap_ns: registry.histogram(&name("serve.generation_swap_ns")),
            staleness_ms: registry.gauge(&name("serve.snapshot_staleness_ms")),
        }
    }

    /// The serving-layer counters (shared by every generation's engine).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The snapshot store this service follows.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The engine for the store's current generation, building a fresh
    /// one first if the corpus advanced since the last request.
    pub fn engine(&self) -> Arc<Service<'static>> {
        let current = self.store.generation();
        let mut engine = self.engine.lock().expect("live engine");
        if engine.generation() != current {
            let snap = self.store.current();
            if engine.generation() != snap.generation() {
                let started = std::time::Instant::now();
                *engine = Arc::new(Service::over_snapshot(
                    snap.db_arc(),
                    snap.generation(),
                    Arc::clone(&self.stats),
                ));
                self.stats.on_generation_swap();
                self.swap_ns.record(started.elapsed().as_nanos() as u64);
            }
        }
        // How far behind the last publish this request is served —
        // near zero in steady state, growing only if the ingest
        // follower stalls.
        self.staleness_ms
            .set(self.store.last_publish_age().as_millis() as i64);
        Arc::clone(&engine)
    }

    /// The generation the next request will be served against.
    pub fn generation(&self) -> u64 {
        self.engine().generation()
    }
}

impl Handler for LiveService {
    fn handle(&self, req: &Request) -> Response {
        self.engine().handle(req)
    }

    fn serve_stats(&self) -> &ServeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::LatLon;
    use hft_time::Date;
    use hft_uls::{
        CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService,
        StationClass, TowerSite, UlsDatabase,
    };

    fn lic(id: u64, lat: f64) -> License {
        let tx = TowerSite::at(LatLon::new(lat, -88.17).unwrap());
        let rx = TowerSite::at(LatLon::new(lat + 0.2, -87.67).unwrap());
        License {
            id: LicenseId(id),
            call_sign: CallSign(format!("WQ{id}")),
            licensee: "Alpha Networks".into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: Date::new(2015, 6, 17).unwrap(),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx,
                rx,
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        }
    }

    fn count(live: &LiveService) -> usize {
        match live.handle(&Request::Geographic {
            lat_deg: 41.1,
            lon_deg: -88.17,
            radius_km: 100.0,
        }) {
            Response::Licenses { ids } => ids.len(),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn live_service_swaps_engines_with_the_store() {
        let store = Arc::new(SnapshotStore::new(UlsDatabase::from_licenses(vec![lic(
            1, 41.0,
        )])));
        let live = LiveService::new(Arc::clone(&store));
        assert_eq!(live.generation(), 0);
        assert_eq!(count(&live), 1);

        // Hold the generation-0 engine across a publish: it must keep
        // answering from its own corpus.
        let pinned = live.engine();
        store.publish(
            Arc::new(UlsDatabase::from_licenses(vec![lic(1, 41.0), lic(2, 41.2)])),
            None,
        );
        assert_eq!(count(&live), 2, "new requests see generation 1");
        assert_eq!(live.generation(), 1);
        assert_eq!(pinned.generation(), 0);
        match pinned.handle(&Request::Geographic {
            lat_deg: 41.1,
            lon_deg: -88.17,
            radius_km: 100.0,
        }) {
            Response::Licenses { ids } => assert_eq!(ids.len(), 1, "pinned engine stays on gen 0"),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(live.stats().snapshot().generation_swaps, 1);
    }

    #[test]
    fn memoized_networks_never_leak_across_generations() {
        let date = Date::new(2016, 1, 1).unwrap();
        let store = Arc::new(SnapshotStore::new(UlsDatabase::from_licenses(vec![lic(
            1, 41.0,
        )])));
        let live = LiveService::new(Arc::clone(&store));
        let req = Request::Network {
            licensee: "Alpha Networks".into(),
            date,
        };
        let before = live.handle(&req);
        match &before {
            Response::Network { towers, .. } => assert_eq!(*towers, 2),
            other => panic!("unexpected response {other:?}"),
        }
        // Grow the licensee's network; the old session has it memoized,
        // but the swap routes to a fresh engine.
        store.publish(
            Arc::new(UlsDatabase::from_licenses(vec![lic(1, 41.0), lic(2, 42.0)])),
            None,
        );
        match live.handle(&req) {
            Response::Network { towers, .. } => assert_eq!(towers, 4),
            other => panic!("unexpected response {other:?}"),
        }
    }
}
