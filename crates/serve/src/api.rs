//! The typed query surface: every request the service answers and every
//! response it produces, with the JSON mapping used on the wire.
//!
//! The variants cover the paper's query mix end to end — the §2.1 portal
//! searches, the §2.2 shortlist funnel, snapshot reconstruction
//! ([`Request::Network`]), per-pair route/APA (Tables 1–3), and the §5
//! weather Monte Carlo — plus `stats` (observability) and `shutdown`
//! (graceful drain). Encoding is deterministic: one canonical key order
//! per variant, so two encodings of equal values are byte-identical and
//! the load harness can diff served bytes against locally computed ones.

use crate::json::{self, Json};
use hft_time::Date;

/// A query, as submitted by a client (wire) or caller (in-process).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// §2.1 "Geographic Search": license ids with any site within
    /// `radius_km` of a point.
    Geographic {
        /// Search-center latitude, degrees.
        lat_deg: f64,
        /// Search-center longitude, degrees.
        lon_deg: f64,
        /// Search radius, km.
        radius_km: f64,
    },
    /// §2.1 "Site License Search": license ids by service + class code.
    SiteSearch {
        /// Radio service code (e.g. `MG`).
        service: String,
        /// Station class code (e.g. `FXO`).
        class: String,
    },
    /// §2.2 scrape funnel: the shortlist around a reference point.
    Shortlist {
        /// Reference latitude, degrees.
        lat_deg: f64,
        /// Reference longitude, degrees.
        lon_deg: f64,
        /// Geographic-search radius, km.
        radius_km: f64,
        /// Minimum filings to stay shortlisted.
        min_filings: usize,
    },
    /// A licensee's reconstructed network summary as of a date.
    Network {
        /// Licensee name (exact).
        licensee: String,
        /// As-of date.
        date: Date,
    },
    /// Lowest-latency route between two data centers as of a date.
    Route {
        /// Licensee name.
        licensee: String,
        /// As-of date.
        date: Date,
        /// Origin data-center code (`CME`, `NY4`, `NYSE`, `NASDAQ`).
        from: String,
        /// Destination data-center code.
        to: String,
    },
    /// Alternate path availability between two data centers.
    Apa {
        /// Licensee name.
        licensee: String,
        /// As-of date.
        date: Date,
        /// Origin data-center code.
        from: String,
        /// Destination data-center code.
        to: String,
    },
    /// The §5 weather Monte Carlo (stormy-season sampler).
    Weather {
        /// Licensee name.
        licensee: String,
        /// As-of date.
        date: Date,
        /// Origin data-center code.
        from: String,
        /// Destination data-center code.
        to: String,
        /// Weather states to sample.
        samples: usize,
        /// RNG seed (deterministic outcomes per seed).
        seed: u64,
    },
    /// A cross-substrate latency race between two data centers: the
    /// licensee's corpus-reconstructed microwave route vs fiber vs a
    /// LEO constellation vs the vacuum geodesic limit, with
    /// weather-adjusted availability windows on the microwave leg.
    Race {
        /// Licensee whose corpus network runs the microwave leg.
        licensee: String,
        /// As-of date.
        date: Date,
        /// Origin data-center code.
        from: String,
        /// Destination data-center code.
        to: String,
        /// LEO constellation name (`starlink`).
        constellation: String,
        /// Weather states to sample on the microwave leg.
        samples: usize,
        /// RNG seed (deterministic outcomes per seed).
        seed: u64,
    },
    /// Sweep the standard segment set (corridor pairs + the §6
    /// transoceanic segments) and reduce each race to stretch factors
    /// vs the vacuum bound — the input of the stretch-CDF figure.
    StretchSweep {
        /// Licensee whose corpus network runs the corridor microwave legs.
        licensee: String,
        /// As-of date.
        date: Date,
        /// LEO constellation name (`starlink`).
        constellation: String,
    },
    /// Server + session counters.
    Stats,
    /// The full process-wide telemetry registry (counters, gauges,
    /// latency histograms) in its deterministic JSON form.
    Metrics,
    /// Captured request traces from the flight recorder: the slowest
    /// `limit` records, or one exact trace by id.
    Traces {
        /// Maximum records to return (slowest first).
        limit: usize,
        /// Fetch one specific trace instead of the slowest set.
        trace_id: Option<u128>,
    },
    /// Graceful shutdown: stop accepting, drain, dump stats.
    Shutdown,
}

/// An answer. `Error` carries a human-readable reason; `Overloaded` is
/// the admission-queue backpressure rejection (never an error in the
/// protocol sense — the client may retry).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// License ids, in portal result order.
    Licenses {
        /// Matching license ids.
        ids: Vec<u64>,
    },
    /// The §2.2 funnel outcome.
    Shortlist {
        /// Licensees with any license in the search region.
        geographic_candidates: u64,
        /// Licensees surviving the MG/FXO filter.
        service_filtered: u64,
        /// Licensees surviving the volume filter.
        shortlisted: u64,
        /// The shortlisted names, sorted.
        names: Vec<String>,
    },
    /// Network summary (counts, not the full graph — use the CLI's YAML
    /// dump for geometry).
    Network {
        /// Licensee name.
        licensee: String,
        /// The exact requested as-of date.
        as_of: Date,
        /// Towers in the reconstructed network.
        towers: u64,
        /// Microwave links.
        links: u64,
        /// Licenses active on the as-of date.
        active_licenses: u64,
    },
    /// Route answer; all fields `None` when not connected.
    Route {
        /// One-way latency, ms.
        latency_ms: Option<f64>,
        /// Towers traversed.
        towers: Option<u64>,
        /// Total path length, m.
        length_m: Option<f64>,
    },
    /// APA answer; `None` when not connected.
    Apa {
        /// Alternate-path availability, fraction.
        apa: Option<f64>,
    },
    /// Weather Monte Carlo outcome. Percentiles can be `+∞` (encoded as
    /// JSON `null`) when the network is down in that tail.
    Weather {
        /// Clear-sky latency, ms.
        clear_ms: f64,
        /// Median conditional latency, ms.
        p50_ms: f64,
        /// 95th-percentile conditional latency, ms.
        p95_ms: f64,
        /// 99th-percentile conditional latency, ms.
        p99_ms: f64,
        /// Fraction of states with the network connected.
        availability: f64,
        /// States sampled.
        samples: u64,
    },
    /// One cross-substrate race. All latencies are one-way ms; the
    /// `wx_*` fields are the §5 weather Monte Carlo on the microwave
    /// leg — when no corpus route exists (`microwave_ms` is `null`) the
    /// weather block degrades to `wx_samples == 0`, availability `0`,
    /// and `+∞` percentiles (encoded as JSON `null`).
    Race {
        /// Origin data-center code.
        from: String,
        /// Destination data-center code.
        to: String,
        /// Constellation raced on the LEO leg.
        constellation: String,
        /// Geodesic distance, km.
        geodesic_km: f64,
        /// Vacuum geodesic limit, ms.
        c_bound_ms: f64,
        /// Corpus microwave leg, ms (`None` when unroutable).
        microwave_ms: Option<f64>,
        /// Fiber leg, ms.
        fiber_ms: f64,
        /// LEO leg, ms (`None` when the constellation cannot route it).
        leo_ms: Option<f64>,
        /// Inter-satellite hops on the LEO leg.
        leo_isl_hops: Option<u64>,
        /// Microwave stretch factor vs the vacuum bound.
        mw_stretch: Option<f64>,
        /// Fiber stretch factor.
        fiber_stretch: f64,
        /// LEO stretch factor.
        leo_stretch: Option<f64>,
        /// The winning substrate (`microwave`, `LEO` or `fiber`).
        winner: String,
        /// Clear-sky microwave latency, ms (`+∞` when no weather run).
        wx_clear_ms: f64,
        /// Median weather-conditional latency, ms.
        wx_p50_ms: f64,
        /// 95th-percentile weather-conditional latency, ms.
        wx_p95_ms: f64,
        /// 99th-percentile weather-conditional latency, ms.
        wx_p99_ms: f64,
        /// Fraction of weather states with the microwave leg connected.
        wx_availability: f64,
        /// Weather states sampled (`0` when no weather run).
        wx_samples: u64,
    },
    /// The stretch-factor sweep, one entry per swept segment.
    StretchSweep {
        /// Swept segments in deterministic order.
        entries: Vec<SweepEntry>,
    },
    /// Serve + session counters.
    Stats {
        /// The serving layer's counters.
        serve: crate::stats::ServeSnapshot,
        /// The analysis session's cache counters.
        session: hft_core::session::StatsSnapshot,
    },
    /// The telemetry registry snapshot, as the deterministic JSON object
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}` rendered
    /// by `hft_obs::expo::render_json`.
    Metrics {
        /// The registry object (sorted names, fixed summary key order).
        registry: Json,
    },
    /// Flight-recorder traces, slowest first.
    Traces {
        /// The captured traces.
        traces: Vec<WireTrace>,
    },
    /// The request could not be served (unknown licensee field values,
    /// malformed frame, bad date, ...).
    Error {
        /// Why.
        message: String,
    },
    /// Admission queue full — backpressure, retry later.
    Overloaded,
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
}

/// One [`Response::StretchSweep`] segment, reduced to stretch factors
/// vs the vacuum geodesic bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEntry {
    /// Segment name, `FROM-TO`.
    pub pair: String,
    /// Geodesic distance, km.
    pub geodesic_km: f64,
    /// Microwave stretch (`None` when unroutable/infeasible).
    pub mw_stretch: Option<f64>,
    /// Fiber stretch.
    pub fiber_stretch: f64,
    /// LEO stretch (`None` when unroutable).
    pub leo_stretch: Option<f64>,
}

impl SweepEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("pair".into(), s(&self.pair)),
            ("geodesic_km".into(), n(self.geodesic_km)),
            ("mw_stretch".into(), opt_n(self.mw_stretch)),
            ("fiber_stretch".into(), n(self.fiber_stretch)),
            ("leo_stretch".into(), opt_n(self.leo_stretch)),
        ])
    }

    fn from_json(v: &Json) -> Result<SweepEntry, String> {
        Ok(SweepEntry {
            pair: need_str(v, "pair")?.to_string(),
            geodesic_km: need_num(v, "geodesic_km")?,
            mw_stretch: opt_num(v, "mw_stretch")?,
            fiber_stretch: need_num(v, "fiber_stretch")?,
            leo_stretch: opt_num(v, "leo_stretch")?,
        })
    }
}

/// One captured trace in its wire form: a [`Response::Traces`] entry.
/// Mirrors `hft_obs::TraceRecord` with owned strings so it survives
/// decoding on the client side.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTrace {
    /// 128-bit trace id.
    pub trace_id: u128,
    /// Request kind that produced the trace (e.g. `shortlist`).
    pub label: String,
    /// Kept by head sampling.
    pub sampled: bool,
    /// Kept by tail capture (over the slow threshold).
    pub slow: bool,
    /// Root duration, ns.
    pub total_ns: u64,
    /// The span tree, preorder, root first.
    pub spans: Vec<WireSpan>,
}

/// One span of a [`WireTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireSpan {
    /// Span name (dotted taxonomy).
    pub name: String,
    /// Parent index within the trace; `None` for the root.
    pub parent: Option<u32>,
    /// Start offset from the root, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Shard the span ran against, when shard-addressed.
    pub shard: Option<u32>,
}

impl WireTrace {
    /// Build the wire form of a flight-recorder record.
    pub fn of(rec: &hft_obs::TraceRecord) -> WireTrace {
        WireTrace {
            trace_id: rec.trace_id,
            label: rec.label.to_string(),
            sampled: rec.sampled,
            slow: rec.slow,
            total_ns: rec.total_ns,
            spans: rec
                .tree
                .spans
                .iter()
                .map(|s| WireSpan {
                    name: s.name.to_string(),
                    parent: s.parent,
                    start_ns: s.start_ns,
                    dur_ns: s.dur_ns,
                    shard: s.shard,
                })
                .collect(),
        }
    }

    /// A text waterfall for terminals: header line, then one indented
    /// line per span with offset, duration and shard tag.
    pub fn render(&self) -> String {
        use hft_obs::span::format_ns;
        let mut out = format!(
            "trace {} {} {}{}{}\n",
            hft_obs::format_trace_id(self.trace_id),
            self.label,
            format_ns(self.total_ns),
            if self.slow { " SLOW" } else { "" },
            if self.sampled { " sampled" } else { "" },
        );
        let mut depth = vec![0usize; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                if let Some(d) = depth.get(p as usize).copied() {
                    depth[i] = d + 1;
                }
            }
            out.push_str("  ");
            for _ in 0..depth[i] {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{} +{} {}",
                s.name,
                format_ns(s.start_ns),
                format_ns(s.dur_ns)
            ));
            if let Some(shard) = s.shard {
                out.push_str(&format!(" [shard {shard}]"));
            }
            out.push('\n');
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "trace_id".into(),
                s(&hft_obs::format_trace_id(self.trace_id)),
            ),
            ("label".into(), s(&self.label)),
            ("sampled".into(), Json::Bool(self.sampled)),
            ("slow".into(), Json::Bool(self.slow)),
            ("total_ns".into(), u(self.total_ns)),
            (
                "spans".into(),
                Json::Arr(self.spans.iter().map(WireSpan::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<WireTrace, String> {
        let arr = v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("trace: missing spans")?;
        Ok(WireTrace {
            trace_id: hft_obs::parse_trace_id(need_str(v, "trace_id")?)
                .ok_or("trace: bad trace_id")?,
            label: need_str(v, "label")?.to_string(),
            sampled: need_bool(v, "sampled")?,
            slow: need_bool(v, "slow")?,
            total_ns: need_u64(v, "total_ns")?,
            spans: arr
                .iter()
                .map(WireSpan::from_json)
                .collect::<Result<Vec<WireSpan>, _>>()?,
        })
    }
}

impl WireSpan {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), s(&self.name)),
            (
                "parent".into(),
                self.parent.map(|p| u(p as u64)).unwrap_or(Json::Null),
            ),
            ("start_ns".into(), u(self.start_ns)),
            ("dur_ns".into(), u(self.dur_ns)),
            (
                "shard".into(),
                self.shard.map(|k| u(k as u64)).unwrap_or(Json::Null),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<WireSpan, String> {
        Ok(WireSpan {
            name: need_str(v, "name")?.to_string(),
            parent: match v.get("parent") {
                Some(Json::Null) | None => None,
                Some(x) => Some(x.as_u64().ok_or("span: bad parent")? as u32),
            },
            start_ns: need_u64(v, "start_ns")?,
            dur_ns: need_u64(v, "dur_ns")?,
            shard: match v.get("shard") {
                Some(Json::Null) | None => None,
                Some(x) => Some(x.as_u64().ok_or("span: bad shard")? as u32),
            },
        })
    }
}

fn obj(type_name: &str, mut rest: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("type".to_string(), Json::Str(type_name.to_string()))];
    pairs.append(&mut rest);
    Json::Obj(pairs)
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn n(v: f64) -> Json {
    Json::Num(v)
}

fn u(v: u64) -> Json {
    Json::Num(v as f64)
}

fn opt_n(v: Option<f64>) -> Json {
    v.map(Json::num_or_null).unwrap_or(Json::Null)
}

impl Request {
    /// The canonical JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Geographic {
                lat_deg,
                lon_deg,
                radius_km,
            } => obj(
                "geographic",
                vec![
                    ("lat_deg".into(), n(*lat_deg)),
                    ("lon_deg".into(), n(*lon_deg)),
                    ("radius_km".into(), n(*radius_km)),
                ],
            ),
            Request::SiteSearch { service, class } => obj(
                "site_search",
                vec![("service".into(), s(service)), ("class".into(), s(class))],
            ),
            Request::Shortlist {
                lat_deg,
                lon_deg,
                radius_km,
                min_filings,
            } => obj(
                "shortlist",
                vec![
                    ("lat_deg".into(), n(*lat_deg)),
                    ("lon_deg".into(), n(*lon_deg)),
                    ("radius_km".into(), n(*radius_km)),
                    ("min_filings".into(), u(*min_filings as u64)),
                ],
            ),
            Request::Network { licensee, date } => obj(
                "network",
                vec![
                    ("licensee".into(), s(licensee)),
                    ("date".into(), s(&date.to_iso())),
                ],
            ),
            Request::Route {
                licensee,
                date,
                from,
                to,
            } => obj(
                "route",
                vec![
                    ("licensee".into(), s(licensee)),
                    ("date".into(), s(&date.to_iso())),
                    ("from".into(), s(from)),
                    ("to".into(), s(to)),
                ],
            ),
            Request::Apa {
                licensee,
                date,
                from,
                to,
            } => obj(
                "apa",
                vec![
                    ("licensee".into(), s(licensee)),
                    ("date".into(), s(&date.to_iso())),
                    ("from".into(), s(from)),
                    ("to".into(), s(to)),
                ],
            ),
            Request::Weather {
                licensee,
                date,
                from,
                to,
                samples,
                seed,
            } => obj(
                "weather",
                vec![
                    ("licensee".into(), s(licensee)),
                    ("date".into(), s(&date.to_iso())),
                    ("from".into(), s(from)),
                    ("to".into(), s(to)),
                    ("samples".into(), u(*samples as u64)),
                    ("seed".into(), u(*seed)),
                ],
            ),
            Request::Race {
                licensee,
                date,
                from,
                to,
                constellation,
                samples,
                seed,
            } => obj(
                "race",
                vec![
                    ("licensee".into(), s(licensee)),
                    ("date".into(), s(&date.to_iso())),
                    ("from".into(), s(from)),
                    ("to".into(), s(to)),
                    ("constellation".into(), s(constellation)),
                    ("samples".into(), u(*samples as u64)),
                    ("seed".into(), u(*seed)),
                ],
            ),
            Request::StretchSweep {
                licensee,
                date,
                constellation,
            } => obj(
                "stretch_sweep",
                vec![
                    ("licensee".into(), s(licensee)),
                    ("date".into(), s(&date.to_iso())),
                    ("constellation".into(), s(constellation)),
                ],
            ),
            Request::Stats => obj("stats", vec![]),
            Request::Metrics => obj("metrics", vec![]),
            Request::Traces { limit, trace_id } => obj(
                "traces",
                vec![
                    ("limit".into(), u(*limit as u64)),
                    (
                        "trace_id".into(),
                        trace_id
                            .map(|id| s(&hft_obs::format_trace_id(id)))
                            .unwrap_or(Json::Null),
                    ),
                ],
            ),
            Request::Shutdown => obj("shutdown", vec![]),
        }
    }

    /// The request's wire type name (`geographic`, `traces`, ...): the
    /// label used on trace records and per-kind metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Geographic { .. } => "geographic",
            Request::SiteSearch { .. } => "site_search",
            Request::Shortlist { .. } => "shortlist",
            Request::Network { .. } => "network",
            Request::Route { .. } => "route",
            Request::Apa { .. } => "apa",
            Request::Weather { .. } => "weather",
            Request::Race { .. } => "race",
            Request::StretchSweep { .. } => "stretch_sweep",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Traces { .. } => "traces",
            Request::Shutdown => "shutdown",
        }
    }

    /// Encode to canonical wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().encode().into_bytes()
    }

    /// Decode from wire bytes (UTF-8 JSON).
    pub fn decode(bytes: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let v = json::parse(text).map_err(|e| e.to_string())?;
        Request::from_json(&v)
    }

    /// Decode from a parsed JSON value.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let kind = need_str(v, "type")?;
        match kind {
            "geographic" => Ok(Request::Geographic {
                lat_deg: need_num(v, "lat_deg")?,
                lon_deg: need_num(v, "lon_deg")?,
                radius_km: need_num(v, "radius_km")?,
            }),
            "site_search" => Ok(Request::SiteSearch {
                service: need_str(v, "service")?.to_string(),
                class: need_str(v, "class")?.to_string(),
            }),
            "shortlist" => Ok(Request::Shortlist {
                lat_deg: need_num(v, "lat_deg")?,
                lon_deg: need_num(v, "lon_deg")?,
                radius_km: need_num(v, "radius_km")?,
                min_filings: need_u64(v, "min_filings")? as usize,
            }),
            "network" => Ok(Request::Network {
                licensee: need_str(v, "licensee")?.to_string(),
                date: need_date(v)?,
            }),
            "route" => Ok(Request::Route {
                licensee: need_str(v, "licensee")?.to_string(),
                date: need_date(v)?,
                from: need_str(v, "from")?.to_string(),
                to: need_str(v, "to")?.to_string(),
            }),
            "apa" => Ok(Request::Apa {
                licensee: need_str(v, "licensee")?.to_string(),
                date: need_date(v)?,
                from: need_str(v, "from")?.to_string(),
                to: need_str(v, "to")?.to_string(),
            }),
            "weather" => Ok(Request::Weather {
                licensee: need_str(v, "licensee")?.to_string(),
                date: need_date(v)?,
                from: need_str(v, "from")?.to_string(),
                to: need_str(v, "to")?.to_string(),
                samples: need_u64(v, "samples")? as usize,
                seed: need_u64(v, "seed")?,
            }),
            "race" => Ok(Request::Race {
                licensee: need_str(v, "licensee")?.to_string(),
                date: need_date(v)?,
                from: need_str(v, "from")?.to_string(),
                to: need_str(v, "to")?.to_string(),
                constellation: need_str(v, "constellation")?.to_string(),
                samples: need_u64(v, "samples")? as usize,
                seed: need_u64(v, "seed")?,
            }),
            "stretch_sweep" => Ok(Request::StretchSweep {
                licensee: need_str(v, "licensee")?.to_string(),
                date: need_date(v)?,
                constellation: need_str(v, "constellation")?.to_string(),
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "traces" => Ok(Request::Traces {
                limit: match v.get("limit") {
                    Some(Json::Null) | None => 16,
                    Some(x) => x.as_u64().ok_or("traces: bad limit")? as usize,
                },
                trace_id: match v.get("trace_id") {
                    Some(Json::Null) | None => None,
                    Some(x) => Some(
                        x.as_str()
                            .and_then(hft_obs::parse_trace_id)
                            .ok_or("traces: bad trace_id")?,
                    ),
                },
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }

    /// The single-flight identity of this request, or `None` for
    /// control requests (`stats`, `metrics`, `shutdown`) that are never
    /// coalesced.
    ///
    /// Date-bearing requests key on the licensee's **epoch** under the
    /// session's corpus, not the raw date: two requests for dates inside
    /// the same lifecycle epoch are provably the same computation (see
    /// `hft_core::session`), so they coalesce too. `epoch_of` is the
    /// session's resolver.
    pub fn flight_key(&self, epoch_of: &dyn Fn(&str, Date) -> usize) -> Option<String> {
        let b = |x: f64| x.to_bits();
        match self {
            Request::Geographic {
                lat_deg,
                lon_deg,
                radius_km,
            } => Some(format!(
                "geo|{:016x}|{:016x}|{:016x}",
                b(*lat_deg),
                b(*lon_deg),
                b(*radius_km)
            )),
            Request::SiteSearch { service, class } => Some(format!("site|{service}|{class}")),
            Request::Shortlist {
                lat_deg,
                lon_deg,
                radius_km,
                min_filings,
            } => Some(format!(
                "short|{:016x}|{:016x}|{:016x}|{min_filings}",
                b(*lat_deg),
                b(*lon_deg),
                b(*radius_km)
            )),
            Request::Network { licensee, date } => {
                // The exact as-of date is restamped on the response, so
                // the key carries the date itself, not just the epoch.
                Some(format!(
                    "net|{licensee}|e{}|{}",
                    epoch_of(licensee, *date),
                    date.to_iso()
                ))
            }
            Request::Route {
                licensee,
                date,
                from,
                to,
            } => Some(format!(
                "route|{licensee}|e{}|{from}|{to}",
                epoch_of(licensee, *date)
            )),
            Request::Apa {
                licensee,
                date,
                from,
                to,
            } => Some(format!(
                "apa|{licensee}|e{}|{from}|{to}",
                epoch_of(licensee, *date)
            )),
            Request::Weather {
                licensee,
                date,
                from,
                to,
                samples,
                seed,
            } => Some(format!(
                "wx|{licensee}|e{}|{from}|{to}|{samples}|{seed}",
                epoch_of(licensee, *date)
            )),
            Request::Race {
                licensee,
                date,
                from,
                to,
                constellation,
                samples,
                seed,
            } => Some(format!(
                "race|{licensee}|e{}|{from}|{to}|{constellation}|{samples}|{seed}",
                epoch_of(licensee, *date)
            )),
            Request::StretchSweep {
                licensee,
                date,
                constellation,
            } => Some(format!(
                "sweep|{licensee}|e{}|{constellation}",
                epoch_of(licensee, *date)
            )),
            Request::Stats | Request::Metrics | Request::Traces { .. } | Request::Shutdown => None,
        }
    }
}

impl Response {
    /// The canonical JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Licenses { ids } => obj(
                "licenses",
                vec![(
                    "ids".into(),
                    Json::Arr(ids.iter().map(|&id| u(id)).collect()),
                )],
            ),
            Response::Shortlist {
                geographic_candidates,
                service_filtered,
                shortlisted,
                names,
            } => obj(
                "shortlist",
                vec![
                    ("geographic_candidates".into(), u(*geographic_candidates)),
                    ("service_filtered".into(), u(*service_filtered)),
                    ("shortlisted".into(), u(*shortlisted)),
                    (
                        "names".into(),
                        Json::Arr(names.iter().map(|x| s(x)).collect()),
                    ),
                ],
            ),
            Response::Network {
                licensee,
                as_of,
                towers,
                links,
                active_licenses,
            } => obj(
                "network",
                vec![
                    ("licensee".into(), s(licensee)),
                    ("as_of".into(), s(&as_of.to_iso())),
                    ("towers".into(), u(*towers)),
                    ("links".into(), u(*links)),
                    ("active_licenses".into(), u(*active_licenses)),
                ],
            ),
            Response::Route {
                latency_ms,
                towers,
                length_m,
            } => obj(
                "route",
                vec![
                    ("latency_ms".into(), opt_n(*latency_ms)),
                    ("towers".into(), towers.map(u).unwrap_or(Json::Null)),
                    ("length_m".into(), opt_n(*length_m)),
                ],
            ),
            Response::Apa { apa } => obj("apa", vec![("apa".into(), opt_n(*apa))]),
            Response::Weather {
                clear_ms,
                p50_ms,
                p95_ms,
                p99_ms,
                availability,
                samples,
            } => obj(
                "weather",
                vec![
                    ("clear_ms".into(), Json::num_or_null(*clear_ms)),
                    ("p50_ms".into(), Json::num_or_null(*p50_ms)),
                    ("p95_ms".into(), Json::num_or_null(*p95_ms)),
                    ("p99_ms".into(), Json::num_or_null(*p99_ms)),
                    ("availability".into(), n(*availability)),
                    ("samples".into(), u(*samples)),
                ],
            ),
            Response::Race {
                from,
                to,
                constellation,
                geodesic_km,
                c_bound_ms,
                microwave_ms,
                fiber_ms,
                leo_ms,
                leo_isl_hops,
                mw_stretch,
                fiber_stretch,
                leo_stretch,
                winner,
                wx_clear_ms,
                wx_p50_ms,
                wx_p95_ms,
                wx_p99_ms,
                wx_availability,
                wx_samples,
            } => obj(
                "race",
                vec![
                    ("from".into(), s(from)),
                    ("to".into(), s(to)),
                    ("constellation".into(), s(constellation)),
                    ("geodesic_km".into(), n(*geodesic_km)),
                    ("c_bound_ms".into(), n(*c_bound_ms)),
                    ("microwave_ms".into(), opt_n(*microwave_ms)),
                    ("fiber_ms".into(), n(*fiber_ms)),
                    ("leo_ms".into(), opt_n(*leo_ms)),
                    (
                        "leo_isl_hops".into(),
                        leo_isl_hops.map(u).unwrap_or(Json::Null),
                    ),
                    ("mw_stretch".into(), opt_n(*mw_stretch)),
                    ("fiber_stretch".into(), n(*fiber_stretch)),
                    ("leo_stretch".into(), opt_n(*leo_stretch)),
                    ("winner".into(), s(winner)),
                    ("wx_clear_ms".into(), Json::num_or_null(*wx_clear_ms)),
                    ("wx_p50_ms".into(), Json::num_or_null(*wx_p50_ms)),
                    ("wx_p95_ms".into(), Json::num_or_null(*wx_p95_ms)),
                    ("wx_p99_ms".into(), Json::num_or_null(*wx_p99_ms)),
                    ("wx_availability".into(), n(*wx_availability)),
                    ("wx_samples".into(), u(*wx_samples)),
                ],
            ),
            Response::StretchSweep { entries } => obj(
                "stretch_sweep",
                vec![(
                    "entries".into(),
                    Json::Arr(entries.iter().map(SweepEntry::to_json).collect()),
                )],
            ),
            Response::Stats { serve, session } => obj(
                "stats",
                vec![
                    ("serve".into(), serve.to_json()),
                    ("session".into(), session_to_json(session)),
                ],
            ),
            Response::Metrics { registry } => {
                obj("metrics", vec![("registry".into(), registry.clone())])
            }
            Response::Traces { traces } => obj(
                "traces",
                vec![(
                    "traces".into(),
                    Json::Arr(traces.iter().map(WireTrace::to_json).collect()),
                )],
            ),
            Response::Error { message } => obj("error", vec![("message".into(), s(message))]),
            Response::Overloaded => obj("overloaded", vec![]),
            Response::ShuttingDown => obj("shutting_down", vec![]),
        }
    }

    /// Encode to canonical wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().encode().into_bytes()
    }

    /// Decode from wire bytes (UTF-8 JSON).
    pub fn decode(bytes: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let v = json::parse(text).map_err(|e| e.to_string())?;
        Response::from_json(&v)
    }

    /// Decode from a parsed JSON value.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let kind = need_str(v, "type")?;
        match kind {
            "licenses" => {
                let arr = v
                    .get("ids")
                    .and_then(Json::as_arr)
                    .ok_or("licenses: missing ids")?;
                let ids = arr
                    .iter()
                    .map(|x| x.as_u64().ok_or("licenses: non-integer id"))
                    .collect::<Result<Vec<u64>, _>>()?;
                Ok(Response::Licenses { ids })
            }
            "shortlist" => {
                let arr = v
                    .get("names")
                    .and_then(Json::as_arr)
                    .ok_or("shortlist: missing names")?;
                let names = arr
                    .iter()
                    .map(|x| x.as_str().map(str::to_string).ok_or("shortlist: bad name"))
                    .collect::<Result<Vec<String>, _>>()?;
                Ok(Response::Shortlist {
                    geographic_candidates: need_u64(v, "geographic_candidates")?,
                    service_filtered: need_u64(v, "service_filtered")?,
                    shortlisted: need_u64(v, "shortlisted")?,
                    names,
                })
            }
            "network" => Ok(Response::Network {
                licensee: need_str(v, "licensee")?.to_string(),
                as_of: Date::parse_iso(need_str(v, "as_of")?).map_err(|e| e.to_string())?,
                towers: need_u64(v, "towers")?,
                links: need_u64(v, "links")?,
                active_licenses: need_u64(v, "active_licenses")?,
            }),
            "route" => Ok(Response::Route {
                latency_ms: opt_num(v, "latency_ms")?,
                towers: match v.get("towers") {
                    Some(Json::Null) | None => None,
                    Some(x) => Some(x.as_u64().ok_or("route: bad towers")?),
                },
                length_m: opt_num(v, "length_m")?,
            }),
            "apa" => Ok(Response::Apa {
                apa: opt_num(v, "apa")?,
            }),
            "weather" => Ok(Response::Weather {
                clear_ms: inf_num(v, "clear_ms")?,
                p50_ms: inf_num(v, "p50_ms")?,
                p95_ms: inf_num(v, "p95_ms")?,
                p99_ms: inf_num(v, "p99_ms")?,
                availability: need_num(v, "availability")?,
                samples: need_u64(v, "samples")?,
            }),
            "race" => Ok(Response::Race {
                from: need_str(v, "from")?.to_string(),
                to: need_str(v, "to")?.to_string(),
                constellation: need_str(v, "constellation")?.to_string(),
                geodesic_km: need_num(v, "geodesic_km")?,
                c_bound_ms: need_num(v, "c_bound_ms")?,
                microwave_ms: opt_num(v, "microwave_ms")?,
                fiber_ms: need_num(v, "fiber_ms")?,
                leo_ms: opt_num(v, "leo_ms")?,
                leo_isl_hops: match v.get("leo_isl_hops") {
                    Some(Json::Null) | None => None,
                    Some(x) => Some(x.as_u64().ok_or("race: bad leo_isl_hops")?),
                },
                mw_stretch: opt_num(v, "mw_stretch")?,
                fiber_stretch: need_num(v, "fiber_stretch")?,
                leo_stretch: opt_num(v, "leo_stretch")?,
                winner: need_str(v, "winner")?.to_string(),
                wx_clear_ms: inf_num(v, "wx_clear_ms")?,
                wx_p50_ms: inf_num(v, "wx_p50_ms")?,
                wx_p95_ms: inf_num(v, "wx_p95_ms")?,
                wx_p99_ms: inf_num(v, "wx_p99_ms")?,
                wx_availability: need_num(v, "wx_availability")?,
                wx_samples: need_u64(v, "wx_samples")?,
            }),
            "stretch_sweep" => {
                let arr = v
                    .get("entries")
                    .and_then(Json::as_arr)
                    .ok_or("stretch_sweep: missing entries")?;
                let entries = arr
                    .iter()
                    .map(SweepEntry::from_json)
                    .collect::<Result<Vec<SweepEntry>, _>>()?;
                Ok(Response::StretchSweep { entries })
            }
            "stats" => Ok(Response::Stats {
                serve: crate::stats::ServeSnapshot::from_json(
                    v.get("serve").ok_or("stats: missing serve")?,
                )?,
                session: session_from_json(v.get("session").ok_or("stats: missing session")?)?,
            }),
            "metrics" => Ok(Response::Metrics {
                registry: v
                    .get("registry")
                    .cloned()
                    .ok_or("metrics: missing registry")?,
            }),
            "traces" => {
                let arr = v
                    .get("traces")
                    .and_then(Json::as_arr)
                    .ok_or("traces: missing traces")?;
                Ok(Response::Traces {
                    traces: arr
                        .iter()
                        .map(WireTrace::from_json)
                        .collect::<Result<Vec<WireTrace>, _>>()?,
                })
            }
            "error" => Ok(Response::Error {
                message: need_str(v, "message")?.to_string(),
            }),
            "overloaded" => Ok(Response::Overloaded),
            "shutting_down" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

fn session_to_json(s: &hft_core::session::StatsSnapshot) -> Json {
    Json::Obj(vec![
        ("network_hits".into(), u(s.network_hits)),
        ("reconstructions".into(), u(s.reconstructions)),
        ("route_hits".into(), u(s.route_hits)),
        ("route_misses".into(), u(s.route_misses)),
        ("apa_hits".into(), u(s.apa_hits)),
        ("apa_misses".into(), u(s.apa_misses)),
        ("graph_hits".into(), u(s.graph_hits)),
        ("graph_misses".into(), u(s.graph_misses)),
    ])
}

fn session_from_json(v: &Json) -> Result<hft_core::session::StatsSnapshot, String> {
    Ok(hft_core::session::StatsSnapshot {
        network_hits: need_u64(v, "network_hits")?,
        reconstructions: need_u64(v, "reconstructions")?,
        route_hits: need_u64(v, "route_hits")?,
        route_misses: need_u64(v, "route_misses")?,
        apa_hits: need_u64(v, "apa_hits")?,
        apa_misses: need_u64(v, "apa_misses")?,
        graph_hits: need_u64(v, "graph_hits")?,
        graph_misses: need_u64(v, "graph_misses")?,
    })
}

fn need_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn need_num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn need_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field {key:?}")),
    }
}

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn need_date(v: &Json) -> Result<Date, String> {
    Date::parse_iso(need_str(v, "date")?).map_err(|e| format!("bad date: {e}"))
}

/// `null` → `None`, number → `Some`.
fn opt_num(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        Some(Json::Null) | None => Ok(None),
        Some(x) => x
            .as_num()
            .map(Some)
            .ok_or_else(|| format!("bad numeric field {key:?}")),
    }
}

/// `null` → `+∞` (the weather percentiles' "network down" encoding).
fn inf_num(v: &Json, key: &str) -> Result<f64, String> {
    Ok(opt_num(v, key)?.unwrap_or(f64::INFINITY))
}
