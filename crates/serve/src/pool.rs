//! The bounded worker pool: a FIFO admission queue with a hard depth
//! cap, explicit `Overloaded` rejections, and per-request queue-wait /
//! service-time measurement.
//!
//! Backpressure is structural: [`Queue::submit`] never blocks and never
//! buffers beyond the configured depth — when the queue is full the
//! request is rejected *immediately* and the caller answers
//! [`Response::Overloaded`]. Connection handlers therefore cannot pile
//! unbounded work onto a slow server; clients see the rejection and can
//! retry.

use crate::api::{Request, Response};
use crate::poll::Waker;
use crate::service::Handler;
use crate::stats::ServeStats;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A one-shot response slot a submitter can block on (threaded writer)
/// or poll with a poller wake on fill (evented loop).
pub struct ResponseSlot {
    state: Mutex<Option<Response>>,
    cv: Condvar,
    /// Poked on `fill` so a readiness loop parked in `Poller::wait`
    /// learns the response is ready; `None` for threaded connections,
    /// whose writer blocks on the condvar instead.
    waker: Option<Arc<Waker>>,
}

impl std::fmt::Debug for ResponseSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseSlot")
            .field("filled", &self.try_peek())
            .field("waker", &self.waker.is_some())
            .finish()
    }
}

impl ResponseSlot {
    /// An empty slot.
    pub fn new() -> Arc<ResponseSlot> {
        ResponseSlot::with_waker(None)
    }

    /// An empty slot that pokes `waker` when filled.
    pub fn with_waker(waker: Option<Arc<Waker>>) -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
            waker,
        })
    }

    /// A slot already holding `response` (used for in-order `Overloaded`
    /// answers on pipelined connections).
    pub fn filled(response: Response) -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot {
            state: Mutex::new(Some(response)),
            cv: Condvar::new(),
            waker: None,
        })
    }

    /// Publish the response and wake the waiter.
    pub fn fill(&self, response: Response) {
        let mut state = self.state.lock().expect("slot state");
        *state = Some(response);
        self.cv.notify_all();
        drop(state);
        if let Some(waker) = &self.waker {
            waker.wake();
        }
    }

    fn try_peek(&self) -> bool {
        self.state.lock().expect("slot state").is_some()
    }

    /// Non-blocking check; returns the response once filled.
    pub fn try_take(&self) -> Option<Response> {
        self.state.lock().expect("slot state").take()
    }

    /// Block until the response is available.
    pub fn wait(&self) -> Response {
        let mut state = self.state.lock().expect("slot state");
        loop {
            if let Some(response) = state.take() {
                return response;
            }
            state = self.cv.wait(state).expect("slot wait");
        }
    }
}

struct Job {
    request: Request,
    enqueued: Instant,
    /// Trace identity minted at admission — the queue is the single
    /// admission point shared by the threaded plane, the evented loop
    /// and the HTTP driver, so every pooled request gets one.
    ctx: hft_obs::TraceContext,
    slot: Arc<ResponseSlot>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    open: bool,
}

/// The bounded FIFO admission queue.
pub struct Queue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    depth: usize,
}

/// Why a submission was not admitted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its depth cap.
    Overloaded,
    /// The queue has been closed (server shutting down).
    Closed,
}

impl Queue {
    /// A queue admitting at most `depth` waiting requests.
    pub fn new(depth: usize) -> Queue {
        Queue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// The configured depth cap.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Admit a request. Returns the slot the response will land in, or
    /// an immediate rejection — never blocks, never over-buffers.
    pub fn submit(
        &self,
        request: Request,
        stats: &ServeStats,
    ) -> Result<Arc<ResponseSlot>, SubmitError> {
        self.submit_with(request, stats, None)
    }

    /// [`Queue::submit`] with a poller wake attached to the slot, for
    /// submitters that poll instead of block.
    pub fn submit_with(
        &self,
        request: Request,
        stats: &ServeStats,
        waker: Option<Arc<Waker>>,
    ) -> Result<Arc<ResponseSlot>, SubmitError> {
        let mut inner = self.inner.lock().expect("queue");
        if !inner.open {
            return Err(SubmitError::Closed);
        }
        if inner.jobs.len() >= self.depth {
            stats.on_overloaded();
            return Err(SubmitError::Overloaded);
        }
        let slot = ResponseSlot::with_waker(waker);
        inner.jobs.push_back(Job {
            request,
            enqueued: Instant::now(),
            ctx: hft_obs::TraceContext::mint(),
            slot: Arc::clone(&slot),
        });
        stats.on_accepted(inner.jobs.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(slot)
    }

    /// Close the queue: pending jobs still drain, new submissions fail.
    pub fn close(&self) {
        self.inner.lock().expect("queue").open = false;
        self.not_empty.notify_all();
    }

    fn next_job(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue wait");
        }
    }

    /// A worker loop: drain jobs until the queue closes and empties.
    /// Run one of these per pool worker (typically on a scoped thread).
    pub fn worker<H: Handler>(&self, handler: &H) {
        while let Some(job) = self.next_job() {
            let stats = handler.serve_stats();
            let wait_ns = job.enqueued.elapsed().as_nanos() as u64;
            stats.on_queue_wait(wait_ns);
            let started = Instant::now();
            let response = {
                // Root of each request's span tree, backdated to the
                // enqueue instant so queue wait is inside the window;
                // closing it files the tree into the sample ring, the
                // slow-query log and (when traced) the flight recorder.
                let _span =
                    hft_obs::trace_root("serve.request", job.request.kind(), job.ctx, job.enqueued);
                hft_obs::annotate("queue.wait", 0, wait_ns);
                handler.handle(&job.request)
            };
            stats.on_service(started.elapsed().as_nanos() as u64);
            stats.on_completed(matches!(response, Response::Error { .. }));
            job.slot.fill(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use hft_uls::UlsDatabase;

    #[test]
    fn overload_rejection_when_no_worker_drains() {
        let db = UlsDatabase::new();
        let service = Service::new(&db);
        let queue = Queue::new(2);
        let req = Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        };
        assert!(queue.submit(req.clone(), service.stats()).is_ok());
        assert!(queue.submit(req.clone(), service.stats()).is_ok());
        assert_eq!(
            queue.submit(req.clone(), service.stats()).unwrap_err(),
            SubmitError::Overloaded,
            "third submission must bounce off the depth-2 queue"
        );
        let snap = service.stats().snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected_overloaded, 1);
        assert_eq!(snap.queue_high_water, 2);
    }

    #[test]
    fn worker_drains_fifo_and_measures() {
        let db = UlsDatabase::new();
        let service = Service::new(&db);
        let queue = Queue::new(16);
        let slots: Vec<_> = (0..5)
            .map(|_| {
                queue
                    .submit(
                        Request::SiteSearch {
                            service: "MG".into(),
                            class: "FXO".into(),
                        },
                        service.stats(),
                    )
                    .unwrap()
            })
            .collect();
        queue.close();
        queue.worker(&service); // drains everything, then returns
        for slot in slots {
            assert_eq!(slot.wait(), Response::Licenses { ids: vec![] });
        }
        let snap = service.stats().snapshot();
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.errors, 0);
        assert!(snap.service_ns_total > 0);
    }

    #[test]
    fn closed_queue_rejects_submissions() {
        let db = UlsDatabase::new();
        let service = Service::new(&db);
        let queue = Queue::new(4);
        queue.close();
        assert_eq!(
            queue.submit(Request::Stats, service.stats()).unwrap_err(),
            SubmitError::Closed
        );
    }
}
