//! Single-flight deduplication: concurrent identical computations
//! coalesce onto one leader; followers block until the leader publishes
//! its result.
//!
//! The session's own caches make *repeat* requests cheap, but they do
//! not stop N concurrent *cold* requests from each running the same
//! reconstruction — `AnalysisSession` deliberately computes outside its
//! cache locks. This layer closes that gap at the serving boundary:
//! requests with equal keys (same request identity, same corpus epoch)
//! share one computation.
//!
//! Panic safety: if a leader panics, its flight is marked abandoned and
//! every follower retries (one becomes the new leader) instead of
//! hanging on a result that will never arrive.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

enum FlightState<T> {
    Pending,
    Done(T),
    Abandoned,
}

struct Flight<T> {
    state: Mutex<FlightState<T>>,
    cv: Condvar,
}

/// A group of keyed in-flight computations.
pub struct Group<T: Clone> {
    inflight: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for Group<T> {
    fn default() -> Self {
        Group {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

/// Removes the leader's map entry and wakes followers even if `compute`
/// panics (followers then observe `Abandoned` and retry).
struct LeaderGuard<'g, T: Clone> {
    group: &'g Group<T>,
    key: &'g str,
    flight: &'g Arc<Flight<T>>,
    finished: bool,
}

impl<T: Clone> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        self.group
            .inflight
            .lock()
            .expect("singleflight map")
            .remove(self.key);
        if !self.finished {
            *self.flight.state.lock().expect("flight state") = FlightState::Abandoned;
            self.flight.cv.notify_all();
        }
    }
}

impl<T: Clone> Group<T> {
    /// An empty group.
    pub fn new() -> Group<T> {
        Group::default()
    }

    /// Run `compute` under `key`, coalescing with any identical call
    /// already in flight. Returns the result and whether this call was
    /// the leader (ran the computation itself).
    pub fn run(&self, key: &str, compute: impl FnOnce() -> T) -> (T, bool) {
        loop {
            let flight = {
                let mut map = self.inflight.lock().expect("singleflight map");
                if let Some(existing) = map.get(key) {
                    Follow(Arc::clone(existing))
                } else {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        cv: Condvar::new(),
                    });
                    map.insert(key.to_string(), Arc::clone(&flight));
                    Lead(flight)
                }
            };
            match flight {
                Lead(flight) => {
                    let mut guard = LeaderGuard {
                        group: self,
                        key,
                        flight: &flight,
                        finished: false,
                    };
                    let value = {
                        let _span = hft_obs::child_span("singleflight.lead");
                        compute()
                    };
                    {
                        let mut state = flight.state.lock().expect("flight state");
                        *state = FlightState::Done(value.clone());
                    }
                    guard.finished = true;
                    drop(guard); // remove map entry *before* waking followers
                    flight.cv.notify_all();
                    return (value, true);
                }
                Follow(flight) => {
                    let _span = hft_obs::child_span("singleflight.wait");
                    let mut state = flight.state.lock().expect("flight state");
                    loop {
                        match &*state {
                            FlightState::Done(value) => return (value.clone(), false),
                            FlightState::Abandoned => break, // leader panicked: retry
                            FlightState::Pending => {
                                state = flight.cv.wait(state).expect("flight wait");
                            }
                        }
                    }
                }
            }
        }
    }
}

enum Role<T> {
    Lead(Arc<Flight<T>>),
    Follow(Arc<Flight<T>>),
}
use Role::{Follow, Lead};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_calls_each_lead() {
        let g: Group<u32> = Group::new();
        let evals = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, leader) = g.run("k", || {
                evals.fetch_add(1, Ordering::SeqCst);
                7
            });
            assert_eq!(v, 7);
            assert!(leader, "nothing in flight between sequential calls");
        }
        assert_eq!(evals.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn concurrent_identical_calls_coalesce() {
        let g: Group<u64> = Group::new();
        let evals = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        let results: Vec<(u64, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        g.run("slow", || {
                            evals.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            42
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&(v, _)| v == 42));
        let leaders = results.iter().filter(|&&(_, lead)| lead).count();
        assert_eq!(
            evals.load(Ordering::SeqCst),
            leaders,
            "every evaluation has exactly one leader"
        );
        assert!(
            leaders < 8,
            "with a 50 ms leader and a barrier start, followers must coalesce"
        );
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let g: Group<usize> = Group::new();
        let evals = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for i in 0..4 {
                let g = &g;
                let evals = &evals;
                scope.spawn(move || {
                    g.run(&format!("k{i}"), || {
                        evals.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                });
            }
        });
        assert_eq!(evals.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn leader_panic_releases_followers() {
        let g = Arc::new(Group::<u8>::new());
        let started = Arc::new(std::sync::Barrier::new(2));
        let g2 = Arc::clone(&g);
        let started2 = Arc::clone(&started);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g2.run("k", || {
                    started2.wait();
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("leader dies");
                })
            }));
            assert!(result.is_err());
        });
        started.wait(); // follower joins only once the leader is inside compute
        let (v, leader) = g.run("k", || 9);
        assert_eq!(v, 9);
        assert!(leader, "follower must retry as the new leader");
        panicker.join().unwrap();
    }
}
