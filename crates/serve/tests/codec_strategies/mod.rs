//! Shared proptest strategies generating every `Request`/`Response`
//! variant, used by both wire-codec property suites (`prop_wire` for
//! the JSON codec, `prop_binwire` for the binary codec). Values stay
//! inside the JSON codec's exact-integer range (< 2^53) so the same
//! generated population is valid under both codecs and cross-codec
//! fixed-point comparisons are meaningful.

#![allow(dead_code)]

use hft_serve::api::{Request, Response, SweepEntry};
use hft_time::Date;
use proptest::prelude::*;

pub fn date() -> impl Strategy<Value = Date> {
    (2015i32..2026, 1u32..13, 1u32..29)
        .prop_map(|(y, m, d)| Date::new(y, m, d).expect("in-range date"))
}

/// Arbitrary printable text, including JSON-hostile characters.
pub fn text() -> impl Strategy<Value = String> {
    "[ -~\"\\\\/\u{00e9}\u{4e16}]{0,24}"
}

pub fn dc() -> BoxedStrategy<String> {
    prop_oneof![
        Just("CME".to_string()),
        Just("NY4".to_string()),
        Just("NYSE".to_string()),
        text(),
    ]
    .boxed()
}

pub fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        (-90.0f64..90.0, -180.0f64..180.0, 0.0f64..5000.0).prop_map(
            |(lat_deg, lon_deg, radius_km)| {
                Request::Geographic {
                    lat_deg,
                    lon_deg,
                    radius_km,
                }
            }
        ),
        (text(), text()).prop_map(|(service, class)| Request::SiteSearch { service, class }),
        (-90.0f64..90.0, -180.0f64..180.0, 0.0f64..5000.0, 0u32..100).prop_map(
            |(lat_deg, lon_deg, radius_km, min_filings)| Request::Shortlist {
                lat_deg,
                lon_deg,
                radius_km,
                min_filings: min_filings as usize,
            }
        ),
        (text(), date()).prop_map(|(licensee, date)| Request::Network { licensee, date }),
        (text(), date(), dc(), dc()).prop_map(|(licensee, date, from, to)| Request::Route {
            licensee,
            date,
            from,
            to,
        }),
        (text(), date(), dc(), dc()).prop_map(|(licensee, date, from, to)| Request::Apa {
            licensee,
            date,
            from,
            to,
        }),
        // Seeds share the codec's exact-integer range (< 2^53): JSON
        // numbers are doubles on the wire.
        (text(), date(), dc(), dc(), 1u32..10_000, 0u64..(1 << 53)).prop_map(
            |(licensee, date, from, to, samples, seed)| Request::Weather {
                licensee,
                date,
                from,
                to,
                samples: samples as usize,
                seed,
            }
        ),
        (
            text(),
            date(),
            dc(),
            dc(),
            constellation(),
            1u32..10_000,
            0u64..(1 << 53)
        )
            .prop_map(|(licensee, date, from, to, constellation, samples, seed)| {
                Request::Race {
                    licensee,
                    date,
                    from,
                    to,
                    constellation,
                    samples: samples as usize,
                    seed,
                }
            }),
        (text(), date(), constellation()).prop_map(|(licensee, date, constellation)| {
            Request::StretchSweep {
                licensee,
                date,
                constellation,
            }
        }),
        Just(Request::Stats),
        Just(Request::Metrics),
        traces_request(),
        Just(Request::Shutdown),
    ]
    .boxed()
}

/// A flight-recorder fetch: bounded limit, optional full-range trace
/// id. Ids ride the JSON wire as 32-hex strings (and the binary wire
/// as raw 16 bytes), so the whole `u128` range is exact under both
/// codecs even though plain JSON numbers are not.
pub fn traces_request() -> BoxedStrategy<Request> {
    (0usize..10_000, proptest::option::of(trace_id()))
        .prop_map(|(limit, trace_id)| Request::Traces { limit, trace_id })
        .boxed()
}

/// Full-range 128-bit trace ids, composed from two 64-bit halves (the
/// vendored proptest has no native `u128` strategy).
pub fn trace_id() -> impl Strategy<Value = u128> {
    (proptest::num::u64::ANY, proptest::num::u64::ANY)
        .prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

/// Coin-flip strategy (no native `bool` in the vendored proptest).
pub fn flag() -> BoxedStrategy<bool> {
    prop_oneof![Just(false), Just(true)].boxed()
}

pub fn constellation() -> BoxedStrategy<String> {
    prop_oneof![Just("starlink".to_string()), text()].boxed()
}

/// Counter values stay below 2^53 so the JSON number representation is
/// exact (the codec's documented integer range).
pub fn counter() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

pub fn serve_snapshot() -> impl Strategy<Value = hft_serve::ServeSnapshot> {
    (
        (
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
        ),
        (
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
        ),
    )
        .prop_map(|(a, b)| hft_serve::ServeSnapshot {
            received: a.0,
            accepted: a.1,
            rejected_overloaded: a.2,
            completed: a.3,
            errors: a.4,
            flights_led: a.5,
            flights_coalesced: b.0,
            queue_wait_ns_total: b.1,
            queue_wait_ns_max: b.2,
            service_ns_total: b.3,
            service_ns_max: b.4,
            queue_high_water: b.5,
            generation_swaps: b.6,
        })
}

pub fn session_snapshot() -> impl Strategy<Value = hft_core::session::StatsSnapshot> {
    (
        (counter(), counter(), counter(), counter()),
        (counter(), counter(), counter(), counter()),
    )
        .prop_map(|(a, b)| hft_core::session::StatsSnapshot {
            network_hits: a.0,
            reconstructions: a.1,
            route_hits: a.2,
            route_misses: a.3,
            apa_hits: b.0,
            apa_misses: b.1,
            graph_hits: b.2,
            graph_misses: b.3,
        })
}

/// Latency-like values, including the `+∞` (network down) encoding.
pub fn latency() -> BoxedStrategy<f64> {
    prop_oneof![0.0f64..100.0, Just(f64::INFINITY)].boxed()
}

/// One stretch-sweep row. Optional legs are finite when present — the
/// wire encodes an absent leg and a non-finite one identically, so only
/// finite `Some` values round-trip as `Some`.
pub fn sweep_entry() -> impl Strategy<Value = SweepEntry> {
    (
        text(),
        0.0f64..5.0e4,
        proptest::option::of(1.0f64..10.0),
        1.0f64..10.0,
        proptest::option::of(1.0f64..10.0),
    )
        .prop_map(
            |(pair, geodesic_km, mw_stretch, fiber_stretch, leo_stretch)| SweepEntry {
                pair,
                geodesic_km,
                mw_stretch,
                fiber_stretch,
                leo_stretch,
            },
        )
}

/// A full race outcome: optional per-substrate legs finite-when-present
/// (same rule as [`sweep_entry`]), weather latencies latency-shaped
/// (`+∞` encodes a down network / absent Monte Carlo).
pub fn race_response() -> BoxedStrategy<Response> {
    (
        (text(), dc(), constellation()),
        (0.0f64..5.0e4, 0.0f64..200.0),
        (
            proptest::option::of(0.0f64..200.0),
            0.0f64..200.0,
            proptest::option::of(0.0f64..200.0),
            proptest::option::of(counter()),
        ),
        (
            proptest::option::of(1.0f64..10.0),
            1.0f64..10.0,
            proptest::option::of(1.0f64..10.0),
            text(),
        ),
        (latency(), latency(), latency(), latency()),
        (0.0f64..1.0, counter()),
    )
        .prop_map(|(id, geo, legs, stretch, wx, tail)| Response::Race {
            from: id.0,
            to: id.1,
            constellation: id.2,
            geodesic_km: geo.0,
            c_bound_ms: geo.1,
            microwave_ms: legs.0,
            fiber_ms: legs.1,
            leo_ms: legs.2,
            leo_isl_hops: legs.3,
            mw_stretch: stretch.0,
            fiber_stretch: stretch.1,
            leo_stretch: stretch.2,
            winner: stretch.3,
            wx_clear_ms: wx.0,
            wx_p50_ms: wx.1,
            wx_p95_ms: wx.2,
            wx_p99_ms: wx.3,
            wx_availability: tail.0,
            wx_samples: tail.1,
        })
        .boxed()
}

/// Registry-shaped payloads for `Response::Metrics`: the three fixed
/// sections with sorted metric names and integer values, matching what
/// `hft_obs::expo::render_json` emits.
pub fn registry_json() -> impl Strategy<Value = hft_serve::json::Json> {
    use hft_serve::json::Json;
    use std::collections::BTreeMap;
    const NAMES: [&str; 6] = [
        "serve.received",
        "session.network_hits",
        "ingest.quarantined{reason=\"bad_record\"}",
        "uls.site_searches",
        "obs.slow_queries",
        "serve.service_ns",
    ];
    const SUMMARY_KEYS: [&str; 8] = ["count", "sum", "min", "max", "p50", "p90", "p99", "p999"];
    let entry = || (0usize..NAMES.len(), counter());
    let hist_entry = (0usize..NAMES.len(), proptest::collection::vec(counter(), 8));
    (
        proptest::collection::vec(entry(), 0..4),
        proptest::collection::vec(entry(), 0..4),
        proptest::collection::vec(hist_entry, 0..3),
    )
        .prop_map(|(counters, gauges, hists)| {
            // Sorted, deduplicated names — the registry's own invariant.
            let flat = |entries: Vec<(usize, u64)>| {
                let m: BTreeMap<&str, u64> =
                    entries.into_iter().map(|(i, v)| (NAMES[i], v)).collect();
                Json::Obj(
                    m.into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                        .collect(),
                )
            };
            let hists: BTreeMap<&str, Vec<u64>> =
                hists.into_iter().map(|(i, v)| (NAMES[i], v)).collect();
            let hists = Json::Obj(
                hists
                    .into_iter()
                    .map(|(k, vals)| {
                        let pairs = SUMMARY_KEYS
                            .iter()
                            .zip(vals)
                            .map(|(key, v)| (key.to_string(), Json::Num(v as f64)))
                            .collect();
                        (k.to_string(), Json::Obj(pairs))
                    })
                    .collect(),
            );
            Json::Obj(vec![
                ("counters".into(), flat(counters)),
                ("gauges".into(), flat(gauges)),
                ("histograms".into(), hists),
            ])
        })
}

/// One span of a captured trace. Offsets and durations stay below
/// 2^53 (exact JSON doubles); parent indices are not validated by the
/// codec, so arbitrary small indices exercise the encoding without
/// implying a well-formed tree.
pub fn wire_span() -> impl Strategy<Value = hft_serve::WireSpan> {
    (
        text(),
        proptest::option::of(0u32..1024),
        counter(),
        counter(),
        proptest::option::of(0u32..64),
    )
        .prop_map(
            |(name, parent, start_ns, dur_ns, shard)| hft_serve::WireSpan {
                name,
                parent,
                start_ns,
                dur_ns,
                shard,
            },
        )
}

/// A full flight-recorder record, trace id spanning the whole `u128`
/// range (hex-string / raw-bytes encodings are exact — see
/// [`traces_request`]).
pub fn wire_trace() -> impl Strategy<Value = hft_serve::WireTrace> {
    (
        trace_id(),
        text(),
        flag(),
        flag(),
        counter(),
        proptest::collection::vec(wire_span(), 0..8),
    )
        .prop_map(
            |(trace_id, label, sampled, slow, total_ns, spans)| hft_serve::WireTrace {
                trace_id,
                label,
                sampled,
                slow,
                total_ns,
                spans,
            },
        )
}

pub fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        proptest::collection::vec(counter(), 0..20).prop_map(|ids| Response::Licenses { ids }),
        (
            counter(),
            counter(),
            counter(),
            proptest::collection::vec(text(), 0..8)
        )
            .prop_map(
                |(geographic_candidates, service_filtered, shortlisted, names)| {
                    Response::Shortlist {
                        geographic_candidates,
                        service_filtered,
                        shortlisted,
                        names,
                    }
                }
            ),
        (text(), date(), counter(), counter(), counter()).prop_map(
            |(licensee, as_of, towers, links, active_licenses)| Response::Network {
                licensee,
                as_of,
                towers,
                links,
                active_licenses,
            }
        ),
        (
            proptest::option::of(0.0f64..100.0),
            proptest::option::of(counter()),
            proptest::option::of(0.0f64..2.0e6)
        )
            .prop_map(|(latency_ms, towers, length_m)| Response::Route {
                latency_ms,
                towers,
                length_m,
            }),
        proptest::option::of(0.0f64..1.0).prop_map(|apa| Response::Apa { apa }),
        (
            (latency(), latency(), latency(), latency()),
            0.0f64..1.0,
            counter()
        )
            .prop_map(|(p, availability, samples)| Response::Weather {
                clear_ms: p.0,
                p50_ms: p.1,
                p95_ms: p.2,
                p99_ms: p.3,
                availability,
                samples,
            }),
        race_response(),
        proptest::collection::vec(sweep_entry(), 0..6)
            .prop_map(|entries| Response::StretchSweep { entries }),
        (serve_snapshot(), session_snapshot())
            .prop_map(|(serve, session)| Response::Stats { serve, session }),
        registry_json().prop_map(|registry| Response::Metrics { registry }),
        proptest::collection::vec(wire_trace(), 0..4)
            .prop_map(|traces| Response::Traces { traces }),
        text().prop_map(|message| Response::Error { message }),
        Just(Response::Overloaded),
        Just(Response::ShuttingDown),
    ]
    .boxed()
}
