//! End-to-end distributed tracing over a sharded fleet: a scatter
//! request served by an evented 4-shard router must leave a retrievable
//! flight-recorder trace whose waterfall attributes wall time across
//! queue wait, per-shard service legs (stitched from the scatter
//! threads under one root) and the merge — and the trace must be
//! fetchable both as "slowest set" and by exact id over the binary
//! wire.
//!
//! Lives in its own test binary: it flips the process-global trace
//! sampling stride and slow threshold.

use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hft_ingest::ShardedStore;
use hft_serve::api::{Request, Response};
use hft_serve::{Client, IoMode, Proto, ServeConfig, Server, ShardRouter};
use hft_uls::shard::ShardStrategy;
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn eco() -> &'static GeneratedEcosystem {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    ECO.get_or_init(|| generate(&chicago_nj(), 2020))
}

#[test]
fn scatter_request_yields_cross_shard_waterfall() {
    // Trace every request and mark everything slow so the one scatter
    // request below is captured by both head sampling and tail capture.
    hft_obs::set_trace_sample_every(1);
    hft_obs::set_slow_threshold_ns(0);
    hft_obs::clear_traces();

    let eco = eco();
    let store = ShardedStore::seeded(&eco.db, 4, ShardStrategy::LicenseeHash, None);
    let router = ShardRouter::over(&store);
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        io: IoMode::Evented,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run_with(&router));
        let mut client = Client::connect_with(&addr, Proto::Binary).expect("connect");

        // Geographic search has no licensee to route by — it scatters
        // to all four shards.
        let scatter = Request::Geographic {
            lat_deg: 41.7625,
            lon_deg: -88.1712,
            radius_km: 25.0,
        };
        match client.call(&scatter).expect("scatter answer") {
            Response::Licenses { .. } => {}
            other => panic!("unexpected scatter answer: {other:?}"),
        }

        let Response::Traces { traces } = client
            .call(&Request::Traces {
                limit: 8,
                trace_id: None,
            })
            .expect("traces answer")
        else {
            panic!("expected Response::Traces");
        };
        let trace = traces
            .iter()
            .find(|t| t.label == "geographic")
            .unwrap_or_else(|| {
                let labels: Vec<&str> = traces.iter().map(|t| t.label.as_str()).collect();
                panic!("no geographic trace captured; labels: {labels:?}")
            });
        assert!(trace.sampled, "stride-1 head sampling must mark it");
        assert!(trace.slow, "zero threshold must mark it slow");
        assert_ne!(trace.trace_id, 0, "minted trace id");

        // Waterfall shape: the worker's root, the backdated queue-wait
        // annotation, the scatter/merge structure, and per-shard legs
        // stitched from at least two distinct shards.
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(trace.spans[0].name, "serve.request");
        assert!(trace.spans[0].parent.is_none(), "span 0 is the root");
        for want in ["queue.wait", "router.scatter", "router.merge"] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        let shards: BTreeSet<u32> = trace
            .spans
            .iter()
            .filter(|s| s.name == "shard.call")
            .filter_map(|s| s.shard)
            .collect();
        assert!(
            shards.len() >= 2,
            "cross-shard stitching: want legs from >=2 shards, got {shards:?} in {names:?}"
        );

        // Wall-time attribution: every span (queue wait, shard legs,
        // merge) sits inside the root's window on the same clock.
        let total = trace.total_ns;
        assert_eq!(trace.spans[0].dur_ns, total);
        for s in &trace.spans {
            assert!(
                s.start_ns + s.dur_ns <= total,
                "span {} [{} +{}] escapes the root window of {total}ns",
                s.name,
                s.start_ns,
                s.dur_ns
            );
        }

        // Fetch-by-id returns exactly that trace.
        let Response::Traces { traces: by_id } = client
            .call(&Request::Traces {
                limit: 8,
                trace_id: Some(trace.trace_id),
            })
            .expect("trace by id")
        else {
            panic!("expected Response::Traces");
        };
        assert_eq!(by_id.len(), 1, "exact-id fetch returns one record");
        assert_eq!(by_id[0], *trace);

        // An unknown id degrades to an empty set, not an error.
        let Response::Traces { traces: none } = client
            .call(&Request::Traces {
                limit: 8,
                trace_id: Some(0xdead_beef),
            })
            .expect("unknown id answer")
        else {
            panic!("expected Response::Traces");
        };
        assert!(none.is_empty(), "unknown id yields no traces");

        match client.call(&Request::Shutdown).expect("shutdown answer") {
            Response::ShuttingDown => {}
            other => panic!("unexpected shutdown answer: {other:?}"),
        }
        handle.join().expect("server thread").expect("clean exit");
    });
}
