//! End-to-end coverage of the binary wire protocol and the two I/O
//! planes: a binary-negotiating client must get byte-identical answers
//! (post-decode) to a direct in-process session on both the evented
//! and the threaded plane, JSON and binary clients must coexist on one
//! server, and a connection that upgrades mid-stream must see its
//! pre-hello answers in JSON and post-hello answers in binary.

use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hft_serve::api::{Request, Response};
use hft_serve::binwire;
use hft_serve::wire::{self, FrameEvent, FrameReader, DEFAULT_MAX_FRAME};
use hft_serve::{Client, IoMode, Proto, ServeConfig, Server, Service};
use hft_time::Date;
use std::net::TcpStream;
use std::sync::OnceLock;

fn eco() -> &'static GeneratedEcosystem {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    ECO.get_or_init(|| generate(&chicago_nj(), 2020))
}

fn mix() -> Vec<Request> {
    let eco = eco();
    let licensee = eco.connected_2020.first().unwrap().clone();
    let date = Date::new(2020, 4, 1).unwrap();
    vec![
        Request::Geographic {
            lat_deg: 41.7625,
            lon_deg: -88.1712,
            radius_km: 10.0,
        },
        Request::Shortlist {
            lat_deg: 41.7625,
            lon_deg: -88.1712,
            radius_km: 10.0,
            min_filings: 11,
        },
        Request::Network {
            licensee: licensee.clone(),
            date,
        },
        Request::Route {
            licensee: licensee.clone(),
            date,
            from: "CME".into(),
            to: "NY4".into(),
        },
        Request::Weather {
            licensee: licensee.clone(),
            date,
            from: "CME".into(),
            to: "NY4".into(),
            samples: 200,
            seed: 7,
        },
        // Error paths must be identical over the binary wire too.
        Request::Network {
            licensee: "No Such Networks LLC".into(),
            date,
        },
    ]
}

fn next_frame(reader: &mut FrameReader, stream: &mut TcpStream) -> Vec<u8> {
    loop {
        match reader.read_from(stream, DEFAULT_MAX_FRAME).unwrap() {
            FrameEvent::Frame(body) => return body,
            FrameEvent::Idle => continue,
            other => panic!("unexpected frame event: {other:?}"),
        }
    }
}

fn bind(io: IoMode) -> Server {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        queue_depth: 32,
        io,
        ..ServeConfig::default()
    })
    .unwrap()
}

/// Binary client, serial and pipelined, against each I/O plane: the
/// wire format cannot change an answer.
fn binary_round_trips_on(io: IoMode) {
    let eco = eco();
    let mix = mix();
    let reference = Service::new(&eco.db);
    let expected: Vec<Vec<u8>> = mix.iter().map(|r| reference.handle(r).encode()).collect();

    let server = bind(io);
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&eco.db).unwrap());

        let mut bin = Client::connect_with(&addr, Proto::Binary).unwrap();
        assert_eq!(bin.proto(), Proto::Binary);
        for (request, want) in mix.iter().zip(&expected) {
            let got = bin.call(request).unwrap();
            assert_eq!(&got.encode(), want, "binary serial answer for {request:?}");
        }

        // Pipelined binary alongside a plain JSON client on the same
        // server: both see the same bytes post-decode.
        let mut piped = Client::connect_with(&addr, Proto::Binary).unwrap();
        let mut json = Client::connect(&addr).unwrap();
        for request in &mix {
            piped.send(request).unwrap();
        }
        piped.flush().unwrap();
        for (request, want) in mix.iter().zip(&expected) {
            assert_eq!(&json.call(request).unwrap().encode(), want);
            let got = piped.recv().unwrap();
            assert_eq!(
                &got.encode(),
                want,
                "binary pipelined answer for {request:?}"
            );
        }

        let ack = bin.call(&Request::Shutdown).unwrap();
        assert_eq!(ack, Response::ShuttingDown);
        let stats = handle.join().unwrap();
        assert!(stats.received > 3 * mix.len() as u64);
        assert_eq!(stats.rejected_overloaded, 0);
    });
}

#[test]
fn binary_round_trips_evented() {
    binary_round_trips_on(IoMode::Evented);
}

#[test]
fn binary_round_trips_threaded() {
    binary_round_trips_on(IoMode::Threaded);
}

/// A raw socket that starts in JSON, upgrades mid-stream, and keeps
/// pipelining: answers to requests sent before the hello arrive as
/// JSON, the hello is acknowledged in order, and answers after it
/// arrive in binary — per-request protocol bookkeeping, not
/// per-connection guesswork.
#[test]
fn mid_stream_hello_switches_response_codec_in_order() {
    let eco = eco();
    let request = Request::SiteSearch {
        service: "MG".into(),
        class: "FXO".into(),
    };
    let want = Service::new(&eco.db).handle(&request).encode();

    let server = bind(IoMode::Evented);
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&eco.db).unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        // JSON request, hello, binary request — all flooded before
        // reading a single response.
        wire::write_frame(&mut stream, &request.encode()).unwrap();
        wire::write_frame(&mut stream, &binwire::hello(Proto::Binary)).unwrap();
        wire::write_frame(&mut stream, &binwire::encode_request(&request)).unwrap();

        let mut reader = FrameReader::new();

        let first = next_frame(&mut reader, &mut stream);
        assert!(!binwire::is_binary(&first), "pre-hello answer must be JSON");
        assert_eq!(first, want);

        let ack = next_frame(&mut reader, &mut stream);
        assert_eq!(binwire::parse_hello_ack(&ack).unwrap(), Proto::Binary);

        let second = next_frame(&mut reader, &mut stream);
        assert!(
            binwire::is_binary(&second),
            "post-hello answer must be binary"
        );
        let decoded = binwire::decode_response(&second).unwrap();
        assert_eq!(decoded.encode(), want);

        // Shut down over the upgraded connection.
        wire::write_frame(&mut stream, &binwire::encode_request(&Request::Shutdown)).unwrap();
        let ack = next_frame(&mut reader, &mut stream);
        assert_eq!(
            binwire::decode_response(&ack).unwrap(),
            Response::ShuttingDown
        );
        handle.join().unwrap();
    });
}

/// A malformed binary frame (bad variant tag) answers a structured
/// error in the connection's protocol and the connection survives for
/// the next well-formed request.
#[test]
fn malformed_binary_frame_answers_error_and_survives() {
    let eco = eco();
    let server = bind(IoMode::Evented);
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&eco.db).unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut stream, &binwire::hello(Proto::Binary)).unwrap();
        wire::write_frame(&mut stream, &[binwire::MAGIC, 0x02, 0xee]).unwrap();
        wire::write_frame(
            &mut stream,
            &binwire::encode_request(&Request::SiteSearch {
                service: "MG".into(),
                class: "FXO".into(),
            }),
        )
        .unwrap();

        let mut reader = FrameReader::new();

        assert_eq!(
            binwire::parse_hello_ack(&next_frame(&mut reader, &mut stream)).unwrap(),
            Proto::Binary
        );
        match binwire::decode_response(&next_frame(&mut reader, &mut stream)).unwrap() {
            Response::Error { message } => {
                assert!(message.contains("request"), "got {message:?}")
            }
            other => panic!("expected error, got {other:?}"),
        }
        // The connection still answers the well-formed follow-up.
        match binwire::decode_response(&next_frame(&mut reader, &mut stream)).unwrap() {
            Response::Licenses { .. } => {}
            other => panic!("expected licenses, got {other:?}"),
        }

        wire::write_frame(&mut stream, &binwire::encode_request(&Request::Shutdown)).unwrap();
        assert_eq!(
            binwire::decode_response(&next_frame(&mut reader, &mut stream)).unwrap(),
            Response::ShuttingDown
        );
        handle.join().unwrap();
    });
}
