//! Binary wire-codec robustness: every request/response variant must
//! survive a binary encode→decode round trip and agree with the JSON
//! codec post-decode, and hostile inputs — truncations, bit flips,
//! trailing garbage, arbitrary bytes — must produce structured
//! [`DecodeError`]s, never panics and never a truncation silently
//! accepted as valid. Mirrors `prop_wire` for the JSON codec.

mod codec_strategies;

use codec_strategies::{request, response};
use hft_serve::binwire::{self, DecodeError};
use hft_serve::Proto;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Binary round trip is the identity, and re-encoding the decoded
    /// value is byte-identical (the encoder is canonical).
    #[test]
    fn every_request_round_trips_binary(req in request()) {
        let bytes = binwire::encode_request(&req);
        prop_assert!(binwire::is_binary(&bytes));
        let back = binwire::decode_request(&bytes).expect("canonical encoding must decode");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(binwire::encode_request(&back), bytes);
    }

    #[test]
    fn every_response_round_trips_binary(resp in response()) {
        let bytes = binwire::encode_response(&resp);
        let back = binwire::decode_response(&bytes).expect("canonical encoding must decode");
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(binwire::encode_response(&back), bytes);
    }

    /// Cross-codec fixed point: the same request sniffed from its JSON
    /// bytes and from its binary bytes is the same value, and a decoded
    /// binary response re-encoded with the JSON codec matches the JSON
    /// codec applied directly — wire format cannot change an answer.
    #[test]
    fn codecs_agree_post_decode(req in request(), resp in response()) {
        let from_json = binwire::sniff_request(&req.encode()).expect("json decodes");
        let from_bin = binwire::sniff_request(&binwire::encode_request(&req)).expect("bin decodes");
        prop_assert_eq!(&from_json, &from_bin);
        prop_assert_eq!(&from_json, &req);
        let via_bin = binwire::decode_response(&binwire::encode_response(&resp)).unwrap();
        prop_assert_eq!(via_bin.encode(), resp.encode());
    }

    /// Every proper prefix of a valid frame fails to decode with a
    /// structured error: a truncation is never mistaken for a shorter
    /// valid message (frames carry no padding, so no prefix of one
    /// message is another complete message).
    #[test]
    fn truncated_request_frames_error_never_validate(req in request()) {
        let bytes = binwire::encode_request(&req);
        for cut in 0..bytes.len() {
            match binwire::decode_request(&bytes[..cut]) {
                Err(e) => { let _ = format!("{e}"); }
                Ok(got) => prop_assert!(
                    false,
                    "prefix {cut}/{} of {:?} decoded as {:?}",
                    bytes.len(), req, got
                ),
            }
        }
    }

    #[test]
    fn truncated_response_frames_error_never_validate(resp in response()) {
        let bytes = binwire::encode_response(&resp);
        for cut in 0..bytes.len() {
            prop_assert!(
                binwire::decode_response(&bytes[..cut]).is_err(),
                "prefix {cut}/{} decoded as valid", bytes.len()
            );
        }
    }

    /// Flipping any single bit never panics, and whatever decodes (a
    /// flip inside a value payload can legitimately yield a different
    /// valid value) must itself round-trip consistently.
    #[test]
    fn bit_flipped_request_frames_never_panic(req in request(), pos in 0usize..10_000, bit in 0u8..8) {
        let mut bytes = binwire::encode_request(&req);
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        match binwire::decode_request(&bytes) {
            Err(e) => { let _ = format!("{e}"); }
            Ok(got) => {
                let re = binwire::encode_request(&got);
                prop_assert_eq!(binwire::decode_request(&re).expect("re-encode decodes"), got);
            }
        }
    }

    #[test]
    fn bit_flipped_response_frames_never_panic(resp in response(), pos in 0usize..10_000, bit in 0u8..8) {
        let mut bytes = binwire::encode_response(&resp);
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        match binwire::decode_response(&bytes) {
            Err(e) => { let _ = format!("{e}"); }
            Ok(got) => {
                let re = binwire::encode_response(&got);
                prop_assert_eq!(binwire::decode_response(&re).expect("re-encode decodes"), got);
            }
        }
    }

    /// Trailing garbage after a complete message is a structured
    /// `Trailing` error, not silently ignored.
    #[test]
    fn trailing_bytes_are_rejected(req in request(), junk in proptest::collection::vec(proptest::num::u8::ANY, 1..16)) {
        let mut bytes = binwire::encode_request(&req);
        bytes.extend_from_slice(&junk);
        prop_assert!(matches!(
            binwire::decode_request(&bytes),
            Err(DecodeError::Trailing(_))
        ));
    }

    /// Arbitrary bytes never panic any binary-plane entry point,
    /// magic-prefixed or not.
    #[test]
    fn arbitrary_bytes_never_panic_binary_decoders(
        bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..200),
    ) {
        let _ = binwire::decode_request(&bytes);
        let _ = binwire::decode_response(&bytes);
        let _ = binwire::parse_hello(&bytes);
        let _ = binwire::parse_hello_ack(&bytes);
        let _ = binwire::sniff_request(&bytes);
        let _ = binwire::response_from(Proto::Binary, &bytes);
        let _ = binwire::is_binary(&bytes);
        let mut forced = bytes.clone();
        if forced.is_empty() {
            forced.push(binwire::MAGIC);
        } else {
            forced[0] = binwire::MAGIC;
        }
        let _ = binwire::decode_request(&forced);
        let _ = binwire::decode_response(&forced);
        let _ = binwire::sniff_request(&forced);
        let _ = binwire::parse_hello(&forced);
    }
}

// ---- Deterministic hostile cases. ----

#[test]
fn malformed_binary_frames_are_structured_errors() {
    // Wrong magic: the binary decoders refuse, the sniffer treats it
    // as JSON and reports a JSON parse error.
    assert!(matches!(
        binwire::decode_request(&[0x00, 0x02]),
        Err(DecodeError::BadMagic(0x00))
    ));
    // Unknown frame kind.
    assert!(matches!(
        binwire::decode_request(&[binwire::MAGIC, 0x7f]),
        Err(DecodeError::BadKind(0x7f))
    ));
    // Unknown request tag.
    let bad_tag = vec![binwire::MAGIC, 0x02, 0xee];
    assert!(matches!(
        binwire::decode_request(&bad_tag),
        Err(DecodeError::BadTag(_, 0xee))
    ));
    // A declared string length far past the end of the frame must be
    // rejected from the header alone, before any allocation.
    let mut greedy = vec![binwire::MAGIC, 0x02, 0x02]; // site_search tag
    greedy.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x7f]); // ~34 GB length
    assert!(matches!(
        binwire::decode_request(&greedy),
        Err(DecodeError::BadLength(_))
    ));
    // Hello with an unknown protocol code.
    let mut hello = binwire::hello(Proto::Binary);
    hello[3] = 0x9c;
    assert!(matches!(
        binwire::parse_hello(&hello),
        Some(Err(DecodeError::BadProto(0x9c)))
    ));
    // Hello from a future protocol version.
    let mut hello = binwire::hello(Proto::Binary);
    hello[2] = binwire::VERSION + 1;
    assert!(matches!(
        binwire::parse_hello(&hello),
        Some(Err(DecodeError::BadVersion(_)))
    ));
}
