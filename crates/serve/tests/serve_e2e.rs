//! End-to-end service tests over the calibrated Chicago–NJ corpus:
//! single-flight cold-request coalescing, byte-identical wire answers,
//! pipelined in-order delivery, and graceful shutdown.

use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hft_serve::api::{Request, Response};
use hft_serve::{Client, ServeConfig, Server, Service};
use hft_time::Date;
use std::sync::{Barrier, OnceLock};

fn eco() -> &'static GeneratedEcosystem {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    ECO.get_or_init(|| generate(&chicago_nj(), 2020))
}

fn paper_date() -> Date {
    Date::new(2020, 4, 1).unwrap()
}

/// Satellite check: N threads issuing the same *cold* request must
/// observe exactly one underlying session computation. The session's own
/// cache cannot provide this (it deliberately computes outside its
/// locks); the single-flight layer must.
#[test]
fn concurrent_cold_requests_reconstruct_once() {
    let eco = eco();
    let licensee = eco.connected_2020.first().expect("modeled networks");
    let service = Service::new(&eco.db);
    assert_eq!(service.session().stats().reconstructions, 0);

    const N: usize = 8;
    let barrier = Barrier::new(N);
    let request = Request::Network {
        licensee: licensee.clone(),
        date: paper_date(),
    };
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    service.handle(&request)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let first = &responses[0];
    assert!(matches!(first, Response::Network { towers, .. } if *towers > 0));
    assert!(responses.iter().all(|r| r == first), "all answers equal");
    let session = service.session().stats();
    assert_eq!(
        session.reconstructions, 1,
        "one cold reconstruction total across {N} concurrent requests; got {session:?}"
    );
    let serve = service.stats().snapshot();
    assert_eq!(serve.flights_led + serve.flights_coalesced, N as u64);
    assert!(serve.flights_led >= 1);
}

/// The wire server must answer byte-for-byte what a direct in-process
/// `Service` computes — the transport adds nothing and loses nothing.
#[test]
fn served_bytes_equal_direct_session_bytes() {
    let eco = eco();
    let licensee = eco.connected_2020.first().unwrap().clone();
    let date = paper_date();
    let mix = vec![
        Request::Geographic {
            lat_deg: 41.7625,
            lon_deg: -88.1712,
            radius_km: 10.0,
        },
        Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        },
        Request::Shortlist {
            lat_deg: 41.7625,
            lon_deg: -88.1712,
            radius_km: 10.0,
            min_filings: 11,
        },
        Request::Network {
            licensee: licensee.clone(),
            date,
        },
        Request::Route {
            licensee: licensee.clone(),
            date,
            from: "CME".into(),
            to: "NY4".into(),
        },
        Request::Apa {
            licensee: licensee.clone(),
            date,
            from: "CME".into(),
            to: "NY4".into(),
        },
        Request::Weather {
            licensee: licensee.clone(),
            date,
            from: "CME".into(),
            to: "NY4".into(),
            samples: 200,
            seed: 7,
        },
        // Error paths must be identical over the wire too.
        Request::Route {
            licensee: licensee.clone(),
            date,
            from: "CME".into(),
            to: "LD4".into(),
        },
        Request::Network {
            licensee: "No Such Networks LLC".into(),
            date,
        },
    ];

    let reference = Service::new(&eco.db);
    let expected: Vec<Vec<u8>> = mix.iter().map(|r| reference.handle(r).encode()).collect();

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        queue_depth: 32,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&eco.db).unwrap());

        // Serial round trips.
        let mut client = Client::connect(&addr).unwrap();
        for (request, want) in mix.iter().zip(&expected) {
            let got = client.call(request).unwrap();
            assert_eq!(&got.encode(), want, "serial answer for {request:?}");
        }

        // Pipelined: flood all requests, then read responses in order.
        let mut pipelined = Client::connect(&addr).unwrap();
        for request in &mix {
            pipelined.send(request).unwrap();
        }
        pipelined.flush().unwrap();
        for (request, want) in mix.iter().zip(&expected) {
            let got = pipelined.recv().unwrap();
            assert_eq!(&got.encode(), want, "pipelined answer for {request:?}");
        }

        // Stats exposes the work we just did.
        let stats = client.call(&Request::Stats).unwrap();
        match stats {
            Response::Stats { serve, session } => {
                assert!(serve.completed >= 2 * mix.len() as u64);
                assert_eq!(serve.rejected_overloaded, 0);
                assert!(session.reconstructions >= 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // Graceful shutdown: acknowledged, then the server drains.
        let ack = client.call(&Request::Shutdown).unwrap();
        assert_eq!(ack, Response::ShuttingDown);
        let final_stats = handle.join().unwrap();
        assert!(final_stats.received >= 2 * mix.len() as u64 + 2);
        assert_eq!(final_stats.errors, 2, "exactly the two error-path requests");
    });
}

/// `metrics` over the wire renders the full telemetry registry: serve
/// counters, session counters, and latency histograms with the fixed
/// summary-key order, all without touching the admission queue.
#[test]
fn metrics_request_exposes_registry_over_the_wire() {
    let eco = eco();
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&eco.db).unwrap());

        let mut client = Client::connect(&addr).unwrap();
        // Drive some real work through the pool so the serve.* family
        // is warm regardless of which tests ran before this one.
        for _ in 0..3 {
            client
                .call(&Request::SiteSearch {
                    service: "MG".into(),
                    class: "FXO".into(),
                })
                .unwrap();
        }

        let response = client.call(&Request::Metrics).unwrap();
        let registry = match response {
            Response::Metrics { registry } => registry,
            other => panic!("expected metrics, got {other:?}"),
        };
        let counters = registry.get("counters").expect("counters section");
        for name in ["serve.received", "serve.accepted", "serve.completed"] {
            let v = counters
                .get(name)
                .and_then(hft_serve::json::Json::as_u64)
                .unwrap_or_else(|| panic!("missing counter {name}"));
            assert!(v >= 3, "{name} should count this test's requests");
        }
        assert!(registry.get("gauges").is_some(), "gauges section");
        let hist = registry
            .get("histograms")
            .and_then(|h| h.get("serve.service_ns"))
            .expect("serve.service_ns histogram");
        for key in ["count", "sum", "min", "max", "p50", "p90", "p99", "p999"] {
            assert!(hist.get(key).is_some(), "summary key {key}");
        }
        assert!(hist.get("count").unwrap().as_u64().unwrap() >= 3);

        // The wire payload is exactly the registry's own deterministic
        // exposition (modulo counters advancing between the two reads):
        // same sections, same sorted names.
        let local = hft_serve::service::metrics_json();
        let section_names = |v: &hft_serve::json::Json, section: &str| -> Vec<String> {
            match v.get(section) {
                Some(hft_serve::json::Json::Obj(pairs)) => {
                    pairs.iter().map(|(k, _)| k.clone()).collect()
                }
                other => panic!("bad {section} section: {other:?}"),
            }
        };
        for section in ["counters", "gauges", "histograms"] {
            let wire = section_names(&registry, section);
            // Registration is monotonic and `local` was read after the
            // wire reply, so every served name must still be there (other
            // tests may have registered more since).
            let after = section_names(&local, section);
            for name in &wire {
                assert!(
                    after.contains(name),
                    "{section} name {name} missing from local exposition"
                );
            }
            let mut sorted = wire.clone();
            sorted.sort();
            assert_eq!(wire, sorted, "{section} names must arrive sorted");
        }

        client.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    });
}

/// A malformed frame answers an error without killing the connection.
#[test]
fn malformed_frame_answers_error_and_connection_survives() {
    let eco = eco();
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&eco.db).unwrap());

        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        // Raw garbage frame, then a valid request on the same socket.
        let garbage = b"{\"type\":\"warp\"}";
        let mut frame = (garbage.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(garbage);
        stream.write_all(&frame).unwrap();
        let body = hft_serve::wire::read_frame(&mut stream, 1 << 20)
            .unwrap()
            .expect("an error response");
        assert!(matches!(
            Response::decode(&body).unwrap(),
            Response::Error { .. }
        ));

        let valid = Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        };
        hft_serve::wire::write_frame(&mut stream, &valid.encode()).unwrap();
        let body = hft_serve::wire::read_frame(&mut stream, 1 << 20)
            .unwrap()
            .expect("a licenses response");
        assert!(matches!(
            Response::decode(&body).unwrap(),
            Response::Licenses { .. }
        ));
        drop(stream);

        let mut client = Client::connect(&addr).unwrap();
        client.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    });
}
