//! Slow-query capture on the evented I/O plane: a request served
//! through the readiness loop's admission queue must land in the global
//! slow-query log when it exceeds the threshold, with the worker's
//! `serve.request` root and the backdated `queue.wait` annotation.
//!
//! Lives in its own test binary: it flips the process-global slow
//! threshold and drains the global slow log.

use hft_corridor::{chicago_nj, generate, GeneratedEcosystem};
use hft_serve::api::{Request, Response};
use hft_serve::{Client, IoMode, Proto, ServeConfig, Server, Service};
use std::sync::OnceLock;

fn eco() -> &'static GeneratedEcosystem {
    static ECO: OnceLock<GeneratedEcosystem> = OnceLock::new();
    ECO.get_or_init(|| generate(&chicago_nj(), 2020))
}

#[test]
fn evented_plane_files_slow_queries() {
    // Every queued request is "slow" under a zero threshold; head
    // sampling stays at its default stride so the capture below is
    // attributable to tail capture alone.
    hft_obs::set_slow_threshold_ns(0);
    let _ = hft_obs::take_slow_queries();

    let eco = eco();
    let service = Service::new(&eco.db);
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        io: IoMode::Evented,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run_with(&service));
        let mut client = Client::connect_with(&addr, Proto::Json).expect("connect");
        let request = Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        };
        match client.call(&request).expect("answer") {
            Response::Licenses { .. } => {}
            other => panic!("unexpected answer: {other:?}"),
        }
        // Stats bypasses the queue on the evented loop and so must NOT
        // open a worker root or add a slow-log entry of its own.
        match client.call(&Request::Stats).expect("stats answer") {
            Response::Stats { .. } => {}
            other => panic!("unexpected stats answer: {other:?}"),
        }
        client.call(&Request::Shutdown).expect("shutdown");
        handle.join().expect("server thread").expect("clean exit");
    });

    let slow = hft_obs::take_slow_queries();
    assert!(
        !slow.is_empty(),
        "zero threshold must capture the queued request"
    );
    let roots: Vec<&str> = slow.iter().map(|t| t.root().name).collect();
    assert!(
        roots.iter().all(|&n| n == "serve.request"),
        "every evented-plane capture roots at the worker span; got {roots:?}"
    );
    let queued = slow
        .iter()
        .find(|t| t.spans.iter().any(|s| s.name == "queue.wait"))
        .expect("a capture with the backdated queue.wait annotation");
    queued.check().expect("well-formed tree");
    assert_eq!(
        slow.len(),
        1,
        "exactly the one queued request is captured (Stats bypasses the queue): {roots:?}"
    );
}
