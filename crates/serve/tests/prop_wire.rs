//! Wire-codec properties: every request/response variant must survive a
//! canonical encode→decode round trip, and the framing layer must reject
//! malformed and oversized frames with structured errors, never panics.

mod codec_strategies;

use codec_strategies::{request, response};
use hft_serve::api::{Request, Response};
use hft_serve::wire::{self, FrameEvent, FrameReader};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_request_round_trips(req in request()) {
        let bytes = req.encode();
        let back = Request::decode(&bytes).expect("canonical encoding must decode");
        prop_assert_eq!(&back, &req);
        // Determinism: re-encoding the decoded value is byte-identical.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn every_response_round_trips(resp in response()) {
        let bytes = resp.encode();
        let back = Response::decode(&bytes).expect("canonical encoding must decode");
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn mutated_request_bytes_never_panic(req in request(), pos in 0usize..10_000, byte in proptest::num::u8::ANY) {
        let mut bytes = req.encode();
        let at = pos % bytes.len();
        bytes[at] = byte;
        let _ = Request::decode(&bytes); // Ok or Err, never a panic
    }

    #[test]
    fn arbitrary_bytes_never_panic_decoders(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..200)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}

// ---- Malformed-frame rejection (deterministic cases). ----

#[test]
fn malformed_frames_are_rejected_with_errors() {
    // Not UTF-8.
    let err = Request::decode(&[0xff, 0xfe, 0x00]).unwrap_err();
    assert!(err.contains("UTF-8"), "got {err:?}");
    // Not JSON.
    assert!(Request::decode(b"{\"type\": ").is_err());
    // Not an object.
    assert!(Request::decode(b"[1,2,3]").is_err());
    // Unknown type tag.
    let err = Request::decode(b"{\"type\":\"warp\"}").unwrap_err();
    assert!(err.contains("unknown request type"), "got {err:?}");
    let err = Response::decode(b"{\"type\":\"warp\"}").unwrap_err();
    assert!(err.contains("unknown response type"), "got {err:?}");
    // Missing required field.
    assert!(Request::decode(b"{\"type\":\"site_search\",\"service\":\"MG\"}").is_err());
    // Wrong field type.
    assert!(
        Request::decode(b"{\"type\":\"network\",\"licensee\":7,\"date\":\"2020-04-01\"}").is_err()
    );
    // Bad date.
    assert!(
        Request::decode(b"{\"type\":\"network\",\"licensee\":\"X\",\"date\":\"2020-13-01\"}")
            .is_err()
    );
}

#[test]
fn oversized_frames_are_rejected_before_allocation() {
    let cap = 64;
    let mut wire_bytes = Vec::new();
    wire::write_frame(&mut wire_bytes, &vec![b'x'; cap + 1]).unwrap();
    let mut cursor = std::io::Cursor::new(wire_bytes);
    let mut reader = FrameReader::new();
    assert_eq!(
        reader.read_from(&mut cursor, cap).unwrap(),
        FrameEvent::Oversized(cap as u32 + 1)
    );
    // A frame exactly at the cap is fine.
    let mut wire_bytes = Vec::new();
    wire::write_frame(&mut wire_bytes, &vec![b'x'; cap]).unwrap();
    let mut cursor = std::io::Cursor::new(wire_bytes);
    let mut reader = FrameReader::new();
    assert!(matches!(
        reader.read_from(&mut cursor, cap).unwrap(),
        FrameEvent::Frame(body) if body.len() == cap
    ));
}
