//! Shard-router properties: partitioning is a function (every license
//! lands on exactly one shard, co-located with its licensee) and
//! scatter-gather is transparent (a [`ShardRouter`] over any fleet size
//! answers byte-identically to a single-corpus [`Service`]) — for
//! random corpora, random requests, random shard counts including the
//! degenerate N=1 fleet, under both partition strategies.

use hft_geodesy::LatLon;
use hft_ingest::ShardedStore;
use hft_serve::api::Request;
use hft_serve::{Service, ShardRouter};
use hft_time::Date;
use hft_uls::shard::{partition, ShardStrategy};
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite, UlsDatabase,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small licensee pool so random corpora reliably give some
/// licensees several licenses (the co-location property is vacuous
/// when every licensee owns exactly one).
const NAMES: [&str; 6] = [
    "Alpha Networks",
    "Beta Microwave",
    "Gamma Wireless",
    "Delta Relay",
    "Epsilon Beam",
    "Zeta Spectrum",
];

fn license(seq: u64, name_ix: usize, lat: f64, lon: f64, sited: bool) -> License {
    License {
        id: LicenseId(seq + 1),
        call_sign: CallSign(format!("WQ{seq:05}")),
        licensee: NAMES[name_ix % NAMES.len()].into(),
        service: RadioService::MG,
        station_class: StationClass::FXO,
        grant_date: Date::new(2015, 1, 1).unwrap(),
        termination_date: None,
        cancellation_date: None,
        // Site-less licenses exercise the spatial strategy's name-hash
        // fallback for licensees with no anchor cell.
        paths: if sited {
            vec![MicrowavePath {
                tx: TowerSite::at(LatLon::new(lat, lon).unwrap()),
                rx: TowerSite::at(LatLon::new(lat + 0.1, lon + 0.2).unwrap()),
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }]
        } else {
            Vec::new()
        },
    }
}

fn corpus() -> impl Strategy<Value = UlsDatabase> {
    proptest::collection::vec(
        (
            0usize..NAMES.len(),
            39.0f64..43.0,
            -89.0f64..-85.0,
            (0u8..2).prop_map(|b| b == 1),
        ),
        0..12,
    )
    .prop_map(|specs| {
        UlsDatabase::from_licenses(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (name_ix, lat, lon, sited))| license(i as u64, name_ix, lat, lon, sited))
                .collect(),
        )
    })
}

fn strategy() -> impl Strategy<Value = ShardStrategy> {
    prop_oneof![
        Just(ShardStrategy::LicenseeHash),
        Just(ShardStrategy::SpatialCell),
    ]
}

fn name() -> BoxedStrategy<String> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string()),
        Just("Nobody Known".to_string()),
    ]
    .boxed()
}

fn date() -> BoxedStrategy<Date> {
    (2014i32..2022, 1u32..13, 1u32..29)
        .prop_map(|(y, m, d)| Date::new(y, m, d).expect("in-range date"))
        .boxed()
}

fn dc() -> BoxedStrategy<String> {
    prop_oneof![
        Just("CME".to_string()),
        Just("NY4".to_string()),
        Just("BAD".to_string()),
    ]
    .boxed()
}

fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        // Valid and out-of-range coordinates: request-shaped errors
        // must merge to the same bytes too.
        (30.0f64..200.0, -100.0f64..-80.0, 1.0f64..2000.0).prop_map(
            |(lat_deg, lon_deg, radius_km)| Request::Geographic {
                lat_deg,
                lon_deg,
                radius_km,
            }
        ),
        Just(Request::SiteSearch {
            service: "MG".into(),
            class: "FXO".into(),
        }),
        (30.0f64..50.0, -100.0f64..-80.0, 1.0f64..2000.0, 0usize..4).prop_map(
            |(lat_deg, lon_deg, radius_km, min_filings)| Request::Shortlist {
                lat_deg,
                lon_deg,
                radius_km,
                min_filings,
            }
        ),
        (name(), date()).prop_map(|(licensee, date)| Request::Network { licensee, date }),
        (name(), date(), dc(), dc()).prop_map(|(licensee, date, from, to)| Request::Route {
            licensee,
            date,
            from,
            to,
        }),
        (name(), date(), dc(), dc()).prop_map(|(licensee, date, from, to)| Request::Apa {
            licensee,
            date,
            from,
            to,
        }),
    ]
    .boxed()
}

/// The corridor ecosystem corpus (seed 2020, the repro seed used by
/// every bench), generated once — it is the real roster whose licensee
/// names exposed the FNV-1a avalanche deficiency.
fn corridor_db() -> &'static UlsDatabase {
    static DB: OnceLock<UlsDatabase> = OnceLock::new();
    DB.get_or_init(|| hft_corridor::generate(&hft_corridor::chicago_nj(), 2020).db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Avalanche regression: under raw `fnv1a(name) % n` the corridor
    /// roster left shards 4 and 7 of an 8-shard fleet with zero
    /// licensees (BENCH_fleet.json showed them serving zero requests).
    /// With the splitmix finalizer every shard of every fleet size up
    /// to 8 owns at least one licensee — so no fleet member is ever
    /// dead weight.
    #[test]
    fn corridor_corpus_leaves_no_shard_empty(shards in 1usize..=8) {
        let db = corridor_db();
        let assignment = hft_uls::shard::assign(db, shards, ShardStrategy::LicenseeHash);
        prop_assert!(!assignment.is_empty());
        let mut licensees = vec![0usize; shards];
        for &s in assignment.values() {
            licensees[s as usize] += 1;
        }
        for (k, &count) in licensees.iter().enumerate() {
            prop_assert!(count > 0, "shard {k} of {shards} owns no licensee: {licensees:?}");
        }
    }

    /// Partitioning is licensee-granular and total: every license lands
    /// on exactly one shard, that shard is the assignment map's answer
    /// for its licensee, and shard sizes sum to the corpus size.
    #[test]
    fn every_license_maps_to_exactly_one_shard(
        db in corpus(),
        shards in 1usize..8,
        strategy in strategy(),
    ) {
        let part = partition(&db, shards, strategy);
        prop_assert_eq!(part.shards.len(), shards);
        let total: usize = part.shards.iter().map(|s| s.licenses().len()).sum();
        prop_assert_eq!(total, db.licenses().len());
        for l in db.licenses() {
            let holders: Vec<usize> = part
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.licenses().iter().any(|x| x.id == l.id))
                .map(|(k, _)| k)
                .collect();
            prop_assert_eq!(holders.len(), 1, "license {:?} on shards {:?}", l.id, holders);
            let owner = part.assignment.get(&l.licensee).copied();
            prop_assert_eq!(owner, Some(holders[0] as u32));
        }
    }

    /// Scatter-gather transparency: for any corpus, fleet size and
    /// strategy, the router's answer bytes equal a single-corpus
    /// service's answer bytes for every request.
    #[test]
    fn router_matches_single_corpus_bytes(
        db in corpus(),
        shards in 1usize..8,
        strategy in strategy(),
        requests in proptest::collection::vec(request(), 1..6),
    ) {
        let single = Service::new(&db);
        let store = ShardedStore::seeded(&db, shards, strategy, None);
        let router = ShardRouter::over(&store);
        for req in &requests {
            let got = router.handle(req).encode();
            let want = single.handle(req).encode();
            prop_assert_eq!(
                String::from_utf8_lossy(&got),
                String::from_utf8_lossy(&want),
                "{:?} n={} req={:?}",
                strategy,
                shards,
                req
            );
        }
    }
}
