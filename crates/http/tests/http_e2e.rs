//! End-to-end: a real `Server` with the HTTP explorer registered as an
//! extra listener on the readiness loop, exercised over real sockets —
//! pages, the JSON API's byte-identity with the wire handler, content
//! types, keep-alive pipelining, and error paths.

use hft_http::HttpExplorer;
use hft_serve::evloop::ExtraListener;
use hft_serve::{Client, IoMode, Request, Response, ServeConfig, Server, Service};
use hft_time::Date;
use hft_uls::{
    CallSign, FrequencyAssignment, License, LicenseId, MicrowavePath, RadioService, StationClass,
    TowerSite, UlsDatabase,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn lic(id: u64, name: &str, lat: f64, lon: f64) -> License {
    License {
        id: LicenseId(id),
        call_sign: CallSign(format!("WQ{id:05}")),
        licensee: name.into(),
        service: RadioService::MG,
        station_class: StationClass::FXO,
        grant_date: Date::new(2015, 1, 1).unwrap(),
        termination_date: None,
        cancellation_date: None,
        paths: vec![MicrowavePath {
            tx: TowerSite::at(hft_geodesy::LatLon::new(lat, lon).unwrap()),
            rx: TowerSite::at(hft_geodesy::LatLon::new(lat + 0.2, lon + 0.3).unwrap()),
            frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
        }],
    }
}

fn corpus() -> UlsDatabase {
    UlsDatabase::from_licenses(vec![
        lic(1, "Alpha Networks", 41.0, -88.0),
        lic(2, "Beta Microwave", 41.3, -87.8),
        lic(3, "Alpha Networks", 41.6, -87.4),
        lic(4, "Gamma Wireless", 41.9, -87.1),
    ])
}

/// One parsed HTTP response.
struct HttpReply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("utf-8 body")
    }
}

/// A minimal buffering HTTP client: pipelined responses arrive
/// back-to-back, so bytes past one reply's `Content-Length` belong to
/// the next reply and must be retained.
struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    fn connect(addr: SocketAddr) -> HttpClient {
        HttpClient {
            stream: TcpStream::connect(addr).expect("connect"),
            buf: Vec::new(),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write request");
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "eof before response completed");
        self.buf.extend_from_slice(&chunk[..n]);
    }

    /// Read until the buffer holds a full head; return its end offset.
    fn read_head_end(&mut self) -> usize {
        loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                return i + 4;
            }
            self.fill();
        }
    }

    /// Read one full response (head + `Content-Length` body), leaving
    /// any bytes past it buffered for the next reply.
    fn read_reply(&mut self) -> HttpReply {
        let head_end = self.read_head_end();
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("utf-8 head");
        let mut lines = head.split("\r\n");
        let status_line = lines.next().expect("status line");
        assert!(status_line.starts_with("HTTP/1.1 "), "{status_line:?}");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let headers: Vec<(String, String)> = lines
            .filter(|l| !l.is_empty())
            .map(|l| {
                let (n, v) = l.split_once(':').expect("header colon");
                (n.trim().to_string(), v.trim().to_string())
            })
            .collect();
        let len: usize = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.parse().expect("numeric content-length"))
            .unwrap_or(0);
        while self.buf.len() < head_end + len {
            self.fill();
        }
        let body = self.buf[head_end..head_end + len].to_vec();
        self.buf.drain(..head_end + len);
        HttpReply {
            status,
            headers,
            body,
        }
    }

    /// Read a head only (for `HEAD` exchanges, which carry no body).
    fn read_head(&mut self) -> String {
        let head_end = self.read_head_end();
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("utf-8 head");
        self.buf.drain(..head_end);
        head
    }

    fn get(&mut self, target: &str) -> HttpReply {
        self.send_raw(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
        self.read_reply()
    }

    fn post_api(&mut self, request: &Request) -> HttpReply {
        let body = request.encode();
        self.send_raw(
            format!(
                "POST /api HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        self.send_raw(&body);
        self.read_reply()
    }
}

/// Run `f` against a serving fixture, then shut the server down — even
/// when `f` panics, so a failed assertion never deadlocks the scope
/// join.
fn with_server(f: impl FnOnce(SocketAddr, SocketAddr, &Service<'_>)) {
    let db = corpus();
    let service = Service::new(&db);
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .expect("bind wire");
    let wire_addr = server.local_addr().expect("wire addr");
    let explorer = HttpExplorer::new(&service);
    let extra = ExtraListener::bind("127.0.0.1:0", &explorer).expect("bind http");
    let http_addr = extra.local_addr().expect("http addr");
    std::thread::scope(|scope| {
        let server = &server;
        let service = &service;
        let extras = vec![extra];
        let handle = scope.spawn(move || server.run_with_extras(service, &extras));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(http_addr, wire_addr, service)
        }));
        let mut client = Client::connect(&wire_addr).expect("wire client");
        assert!(matches!(
            client.call(&Request::Shutdown).expect("shutdown"),
            Response::ShuttingDown
        ));
        handle
            .join()
            .expect("server thread")
            .expect("server result");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

#[test]
fn pages_render_with_correct_content_types() {
    with_server(|http, _wire, _service| {
        let mut conn = HttpClient::connect(http);

        let index = conn.get("/");
        assert_eq!(index.status, 200);
        assert_eq!(
            index.header("content-type"),
            Some("text/html; charset=utf-8")
        );
        assert!(index.text().contains("Alpha Networks"));
        assert!(index.text().contains("/licensee/Alpha%20Networks"));

        // Keep-alive: the same connection serves every request below.
        let lic = conn.get("/licensee/Alpha%20Networks");
        assert_eq!(lic.status, 200);
        assert!(lic.text().contains("<svg"), "corridor map must be inline");
        assert!(lic.text().contains("CME"), "data-center markers present");

        let funnel = conn.get("/funnel?radius_km=500&min_filings=1");
        assert_eq!(funnel.status, 200);
        assert!(funnel.text().contains("geographic candidates"));
        assert!(
            funnel.text().contains("<rect"),
            "funnel bars are inline svg"
        );

        let race = conn.get("/race/CME/NY4?licensee=Alpha%20Networks&samples=50&seed=1");
        assert_eq!(race.status, 200);
        assert!(race.text().contains("one-way latency by substrate"));
        assert!(race.text().contains("<polyline"), "substrate chart inline");
        assert!(race.text().contains("winner"));
        assert_eq!(conn.get("/race/CME").status, 404);
        assert_eq!(conn.get("/race/CME/NY4?samples=0").status, 400);
        assert_eq!(
            conn.get("/race/CME/NY4?constellation=iridium&samples=10")
                .status,
            400,
            "unknown constellation surfaces the wire error"
        );

        let evo = conn.get("/evolution");
        assert_eq!(evo.status, 200);
        assert!(evo.text().contains("polyline"), "sparklines are inline svg");

        let metrics = conn.get("/metrics");
        assert_eq!(metrics.status, 200);
        assert_eq!(
            metrics.header("content-type"),
            Some(hft_obs::expo::PROMETHEUS_CONTENT_TYPE)
        );
        assert_eq!(
            metrics.header("content-type"),
            Some("text/plain; version=0.0.4"),
            "the Prometheus exposition content type is pinned by spec"
        );
        assert!(metrics.text().contains("# TYPE"));

        let dash = conn.get("/dashboard");
        assert_eq!(dash.status, 200);
        assert_eq!(
            dash.header("content-type"),
            Some("text/html; charset=utf-8")
        );
        assert!(dash.text().contains("histograms"));

        let missing = conn.get("/licensee/Nobody%20Known");
        assert_eq!(missing.status, 404);

        let nope = conn.get("/no/such/route");
        assert_eq!(nope.status, 404);

        conn.send_raw(b"DELETE / HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(conn.read_reply().status, 405);
    });
}

#[test]
fn json_api_bytes_match_in_process_handler() {
    with_server(|http, _wire, service| {
        let mut conn = HttpClient::connect(http);
        let requests = vec![
            Request::Network {
                licensee: "Alpha Networks".into(),
                date: Date::new(2020, 4, 1).unwrap(),
            },
            Request::Geographic {
                lat_deg: 41.5,
                lon_deg: -87.5,
                radius_km: 500.0,
            },
            Request::Shortlist {
                lat_deg: 41.5,
                lon_deg: -87.5,
                radius_km: 500.0,
                min_filings: 1,
            },
            Request::Route {
                licensee: "Alpha Networks".into(),
                date: Date::new(2020, 4, 1).unwrap(),
                from: "CME".into(),
                to: "NY4".into(),
            },
            Request::Race {
                licensee: "Alpha Networks".into(),
                date: Date::new(2020, 4, 1).unwrap(),
                from: "CME".into(),
                to: "NY4".into(),
                constellation: "starlink".into(),
                samples: 50,
                seed: 1,
            },
            Request::StretchSweep {
                licensee: "Alpha Networks".into(),
                date: Date::new(2020, 4, 1).unwrap(),
                constellation: "starlink".into(),
            },
        ];
        for request in requests {
            let expected = service.handle(&request);
            let expected_status = match &expected {
                Response::Error { .. } => 400,
                Response::Overloaded | Response::ShuttingDown => 503,
                _ => 200,
            };
            let reply = conn.post_api(&request);
            assert_eq!(reply.status, expected_status, "{request:?}");
            assert_eq!(reply.header("content-type"), Some("application/json"));
            // The acceptance bar: HTTP answers are byte-identical to
            // the in-process handler's wire encoding.
            assert_eq!(reply.body, expected.encode(), "{request:?}");
        }

        // Shutdown must be refused over HTTP.
        assert_eq!(conn.post_api(&Request::Shutdown).status, 403);
    });
}

#[test]
fn pipelined_requests_answer_in_order() {
    with_server(|http, _wire, _service| {
        let mut conn = HttpClient::connect(http);
        // Three requests written back-to-back before any read: answers
        // must come back in request order even though the licensee page
        // goes through the worker pool and the others answer inline.
        conn.send_raw(
            b"GET /licensee/Alpha%20Networks HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n\
              GET / HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        let first = conn.read_reply();
        let second = conn.read_reply();
        let third = conn.read_reply();
        assert!(first.text().contains("Alpha Networks"));
        assert!(second.text().starts_with("# TYPE"));
        assert!(third.text().contains("Microwave corpus"));
    });
}

#[test]
fn head_answers_headers_only_and_errors_close() {
    with_server(|http, _wire, _service| {
        let mut conn = HttpClient::connect(http);
        conn.send_raw(b"HEAD / HTTP/1.1\r\nHost: t\r\n\r\n");
        let head = conn.read_head();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        let len_line = head
            .lines()
            .find(|l| l.to_ascii_lowercase().starts_with("content-length:"))
            .expect("content-length present");
        let declared: usize = len_line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(declared > 0, "HEAD declares the real body length");

        // No body followed the HEAD response: the next exchange answers
        // immediately with its own reply.
        let reply = conn.get("/");
        assert_eq!(reply.status, 200);
        assert_eq!(
            reply.body.len(),
            declared,
            "GET body matches HEAD's declared length"
        );

        // A malformed request answers its status and closes.
        let mut bad = HttpClient::connect(http);
        bad.send_raw(b"BOGUS\r\n\r\n");
        let reply = bad.read_reply();
        assert_eq!(reply.status, 400);
        assert_eq!(reply.header("connection"), Some("close"));
        let mut rest = Vec::new();
        bad.stream.read_to_end(&mut rest).expect("read to close");
        assert!(rest.is_empty(), "server closed after the error");
    });
}

#[test]
fn threaded_mode_rejects_extra_listeners() {
    let db = corpus();
    let service = Service::new(&db);
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        io: IoMode::Threaded,
        ..ServeConfig::default()
    })
    .expect("bind");
    let explorer = HttpExplorer::new(&service);
    let extra = ExtraListener::bind("127.0.0.1:0", &explorer).expect("bind http");
    let err = server
        .run_with_extras(&service, &[extra])
        .expect_err("threaded + extras must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
}
