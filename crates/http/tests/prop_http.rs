//! HTTP parser robustness properties, in the `prop_binwire` mold: the
//! parser must survive arbitrary bytes without panicking, truncations
//! of valid requests must never surface a request, header case/OWS and
//! read chunking must not change parse results, and every cap error
//! must be deterministic.

use hft_http::parser::{MAX_BODY, MAX_REQUEST_LINE};
use hft_http::{HttpError, HttpRequest, RequestParser};
use proptest::prelude::*;

/// Drain everything the parser will give for `bytes` fed in `chunk`-
/// sized pieces: the parsed requests, then the terminal outcome
/// (`None` = wants more bytes, `Some(e)` = failed).
fn drain(bytes: &[u8], chunk: usize) -> (Vec<HttpRequest>, Option<HttpError>) {
    let mut parser = RequestParser::new();
    for piece in bytes.chunks(chunk.max(1)) {
        parser.feed(piece);
    }
    let mut requests = Vec::new();
    loop {
        match parser.next() {
            Ok(Some(request)) => requests.push(request),
            Ok(None) => return (requests, None),
            Err(e) => return (requests, Some(e)),
        }
    }
}

/// A token suitable for methods and header names.
fn token() -> impl Strategy<Value = String> {
    ("[A-Za-z]", "[A-Za-z0-9-]{0,10}").prop_map(|(head, tail)| format!("{head}{tail}"))
}

/// A printable header value with no CR/LF and no leading/trailing OWS.
fn header_value() -> impl Strategy<Value = String> {
    ("[!-~]", "[ -~]{0,20}", "[!-~]").prop_map(|(a, mid, z)| format!("{a}{mid}{z}"))
}

/// One complete valid request (wire bytes + the body we declared).
fn valid_request() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        prop_oneof![Just("GET"), Just("POST"), Just("HEAD")],
        proptest::collection::vec("[a-z0-9]{1,8}", 0..4),
        proptest::collection::vec((token(), header_value()), 0..6),
        proptest::collection::vec(0u8..=255, 0..200),
    )
        .prop_map(|(method, segments, headers, body)| {
            let mut wire = format!("{method} /{} HTTP/1.1\r\n", segments.join("/")).into_bytes();
            for (name, value) in &headers {
                // These names change framing/lifecycle semantics; the
                // generated ones must not collide with them.
                if matches!(
                    name.to_ascii_lowercase().as_str(),
                    "content-length" | "transfer-encoding" | "connection"
                ) {
                    continue;
                }
                wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
            }
            wire.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
            wire.extend_from_slice(&body);
            (wire, body)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes, arbitrary read chunking: the parser never
    /// panics, and whatever it reports is a structured `HttpError`
    /// whose status is in the client-error range.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..2048),
        chunk in 1usize..64,
    ) {
        let (_, outcome) = drain(&bytes, chunk);
        if let Some(e) = outcome {
            let status = e.status();
            prop_assert!((400..=505).contains(&status), "odd status {status}");
            let _ = format!("{e}");
        }
    }

    /// No proper prefix of a valid request ever surfaces a request:
    /// a truncation either waits for more bytes or errors cleanly.
    #[test]
    fn truncations_never_yield_a_request(req in valid_request(), frac in 0.0f64..1.0) {
        let (wire, _body) = req;
        let cut = ((wire.len() as f64) * frac) as usize;
        prop_assume!(cut < wire.len());
        let (requests, _outcome) = drain(&wire[..cut], wire.len());
        prop_assert!(
            requests.is_empty(),
            "a {cut}-byte prefix of a {}-byte request parsed as complete",
            wire.len(),
        );
    }

    /// Valid requests parse completely, with the declared body, and the
    /// outcome is identical whether the bytes arrive in one feed or in
    /// arbitrarily small chunks.
    #[test]
    fn chunking_never_changes_the_parse(req in valid_request(), chunk in 1usize..32) {
        let (wire, body) = req;
        let (whole, whole_end) = drain(&wire, wire.len());
        let (chunked, chunked_end) = drain(&wire, chunk);
        prop_assert_eq!(whole_end, None);
        prop_assert_eq!(chunked_end, None);
        prop_assert_eq!(&whole, &chunked);
        prop_assert_eq!(whole.len(), 1);
        prop_assert_eq!(&whole[0].body, &body);
    }

    /// Header-name case and optional whitespace around the value are
    /// normalized away: variants parse to the same request.
    #[test]
    fn header_case_and_ows_parse_identically(
        name in token(),
        value in header_value(),
        upper in prop_oneof![Just(false), Just(true)],
        ows_left in prop_oneof![Just(""), Just(" "), Just("  "), Just("\t")],
        ows_right in prop_oneof![Just(""), Just(" "), Just(" \t ")],
    ) {
        prop_assume!(!matches!(
            name.to_ascii_lowercase().as_str(),
            "content-length" | "transfer-encoding" | "connection"
        ));
        let canonical = format!("GET / HTTP/1.1\r\n{}: {value}\r\n\r\n", name.to_ascii_lowercase());
        let mutated_name = if upper { name.to_ascii_uppercase() } else { name.clone() };
        let mutated = format!("GET / HTTP/1.1\r\n{mutated_name}:{ows_left}{value}{ows_right}\r\n\r\n");
        let (a, a_end) = drain(canonical.as_bytes(), 7);
        let (b, b_end) = drain(mutated.as_bytes(), 7);
        prop_assert_eq!(a_end, None);
        prop_assert_eq!(b_end, None);
        prop_assert_eq!(a, b);
    }

    /// Cap violations produce the same deterministic error regardless
    /// of how the bytes are chunked, and the parser stays failed: a
    /// later well-formed request cannot resurrect the stream.
    #[test]
    fn cap_errors_are_deterministic(extra in 1usize..4096, chunk in 1usize..512) {
        let body_wire = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + extra);
        let (none, outcome) = drain(body_wire.as_bytes(), chunk);
        prop_assert!(none.is_empty());
        prop_assert_eq!(outcome, Some(HttpError::BodyTooLarge));

        let line_wire = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + extra));
        let (none, outcome) = drain(line_wire.as_bytes(), chunk);
        prop_assert!(none.is_empty());
        prop_assert_eq!(outcome, Some(HttpError::UriTooLong));

        let mut parser = RequestParser::new();
        parser.feed(line_wire.as_bytes());
        let first = parser.next().unwrap_err();
        parser.feed(b"GET / HTTP/1.1\r\n\r\n");
        prop_assert_eq!(parser.next().unwrap_err(), first);
        prop_assert_eq!(parser.buffered(), 0);
    }

    /// The page renderer's path-segment encoder and the parser's
    /// percent-decoder are inverses: any licensee name routed through
    /// a link comes back byte-identical.
    #[test]
    fn encoded_path_segments_round_trip(name in "[ -~]{1,40}") {
        prop_assume!(!name.contains('/'));
        let target = format!("/licensee/{}", hft_http::pages::encode_path_segment(&name));
        let wire = format!("GET {target} HTTP/1.1\r\n\r\n");
        let (requests, outcome) = drain(wire.as_bytes(), 5);
        prop_assert_eq!(outcome, None);
        prop_assert_eq!(requests.len(), 1);
        prop_assert_eq!(&requests[0].path, &format!("/licensee/{name}"));
    }
}
