//! HTML page rendering: the explorer's read-only views over the
//! corpus and the live registry.
//!
//! Styling follows the Tufte notes referenced by the roadmap: maximize
//! data-ink (no chrome beyond a header line), small multiples for
//! cross-network comparison (per-licensee sparklines on the evolution
//! page), and inline SVG so every page is one self-contained response
//! with zero subresource fetches.

use hft_obs::RegistrySnapshot;
use std::fmt::Write;

/// The content type every HTML page is served under.
pub const HTML_CONTENT_TYPE: &str = "text/html; charset=utf-8";

/// Escape text for HTML element content and attribute values.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Percent-encode a licensee name for use in a path segment.
pub fn encode_path_segment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            b => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// The shared page shell: one title line, a nav row, the body.
fn page(title: &str, body: &str) -> String {
    format!(
        concat!(
            "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">",
            "<title>{title} · hftnetview</title>",
            "<style>",
            "body{{font-family:Georgia,serif;max-width:72rem;margin:1.5rem auto;padding:0 1rem;color:#111}}",
            "nav a{{margin-right:1rem;color:#8a3324}}",
            "h1{{font-size:1.4rem;font-weight:normal;border-bottom:1px solid #999;padding-bottom:.3rem}}",
            "table{{border-collapse:collapse}}",
            "td,th{{padding:.15rem .8rem .15rem 0;text-align:left;font-variant-numeric:tabular-nums}}",
            "th{{font-weight:normal;border-bottom:1px solid #ccc}}",
            "svg{{max-width:100%}}",
            ".dim{{color:#666;font-size:.85rem}}",
            "</style></head><body>",
            "<nav><a href=\"/\">corpus</a><a href=\"/funnel\">funnel</a>",
            "<a href=\"/evolution\">evolution</a><a href=\"/dashboard\">dashboard</a>",
            "<a href=\"/traces\">traces</a><a href=\"/metrics\">metrics</a></nav>",
            "<h1>{title}</h1>\n{body}</body></html>\n"
        ),
        title = html_escape(title),
        body = body,
    )
}

/// One corpus index row.
pub struct CorpusRow {
    /// The filed licensee name.
    pub name: String,
    /// Licenses filed under the name.
    pub licenses: usize,
}

/// `GET /` — the corpus index: every licensee with a link to its
/// network page, plus the fleet's generation vector.
pub fn index_page(generations: &[u64], rows: &[CorpusRow]) -> String {
    let total: usize = rows.iter().map(|r| r.licenses).sum();
    let gens = generations
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut body = format!(
        "<p class=\"dim\">{} licensees · {} licenses · {} shard{} · generation [{}]</p>\n\
         <table><tr><th>licensee</th><th>licenses</th></tr>\n",
        rows.len(),
        total,
        generations.len(),
        if generations.len() == 1 { "" } else { "s" },
        gens,
    );
    for row in rows {
        let _ = writeln!(
            body,
            "<tr><td><a href=\"/licensee/{}\">{}</a></td><td>{}</td></tr>",
            encode_path_segment(&row.name),
            html_escape(&row.name),
            row.licenses,
        );
    }
    body.push_str("</table>\n");
    page("Microwave corpus", &body)
}

/// `GET /licensee/{name}` — one network as of a date: headline counts
/// plus the inline corridor map from `hft-viz`.
pub fn licensee_page(
    name: &str,
    date_iso: &str,
    generation: u64,
    towers: u64,
    links: u64,
    active: u64,
    svg: &str,
) -> String {
    let body = format!(
        "<p class=\"dim\">as of {} · generation {} · \
         <a href=\"/licensee/{}?date=2016-06-01\">2016</a> \
         <a href=\"/licensee/{}?date=2020-04-01\">2020</a></p>\n\
         <table><tr><th>towers</th><th>links</th><th>active licenses</th></tr>\n\
         <tr><td>{towers}</td><td>{links}</td><td>{active}</td></tr></table>\n{svg}",
        html_escape(date_iso),
        generation,
        encode_path_segment(name),
        encode_path_segment(name),
    );
    page(name, &body)
}

/// `GET /funnel` — the §2.2 scrape funnel as a data-ink bar chart:
/// three counts, bar lengths proportional, shortlist names below.
pub fn funnel_page(
    radius_km: f64,
    min_filings: usize,
    geographic: u64,
    filtered: u64,
    shortlisted: u64,
    names: &[String],
) -> String {
    let max = geographic.max(1);
    let mut body = format!(
        "<p class=\"dim\">radius {radius_km} km · ≥ {min_filings} MG/FXO filings · \
         <a href=\"/funnel?radius_km=50&amp;min_filings=2\">wide</a> \
         <a href=\"/funnel\">paper</a></p>\n<table>\n"
    );
    for (label, n) in [
        ("geographic candidates", geographic),
        ("service filtered", filtered),
        ("shortlisted", shortlisted),
    ] {
        let w = 420.0 * n as f64 / max as f64;
        let _ = writeln!(
            body,
            "<tr><td>{label}</td><td>{n}</td><td><svg width=\"430\" height=\"14\">\
             <rect x=\"0\" y=\"2\" width=\"{w:.1}\" height=\"10\" fill=\"#8a3324\"/></svg></td></tr>"
        );
    }
    body.push_str("</table>\n<p>");
    let links: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "<a href=\"/licensee/{}\">{}</a>",
                encode_path_segment(n),
                html_escape(n)
            )
        })
        .collect();
    body.push_str(&links.join(" · "));
    body.push_str("</p>\n");
    page("Scrape funnel", &body)
}

/// An inline sparkline: the small-multiples primitive of the evolution
/// page. Pure data-ink — one polyline, one terminal dot, no axes.
pub fn sparkline(values: &[f64], width: f64, height: f64) -> String {
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let lo = 0.0;
    let span = (hi - lo).max(1e-9);
    let n = values.len().max(2) - 1;
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = 2.0 + (width - 4.0) * i as f64 / n as f64;
            let y = 2.0 + (height - 4.0) * (1.0 - (v - lo) / span);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    let last = pts.last().cloned().unwrap_or_default();
    format!(
        "<svg width=\"{width:.0}\" height=\"{height:.0}\" viewBox=\"0 0 {width:.0} {height:.0}\">\
         <polyline points=\"{}\" fill=\"none\" stroke=\"#8a3324\" stroke-width=\"1.5\"/>\
         <circle cx=\"{}\" cy=\"{}\" r=\"2\" fill=\"#8a3324\"/></svg>",
        pts.join(" "),
        last.split(',').next().unwrap_or("0"),
        last.split(',').nth(1).unwrap_or("0"),
    )
}

/// `GET /evolution` — small multiples: one sparkline of active license
/// count per licensee over the sampled years, largest networks first.
pub fn evolution_page(years: &[i32], rows: &[(String, Vec<usize>)]) -> String {
    let first = years.first().copied().unwrap_or(0);
    let last = years.last().copied().unwrap_or(0);
    let mut body = format!(
        "<p class=\"dim\">active licenses at year end, {first}–{last}; \
         one row per licensee, shared x, independent y (small multiples)</p>\n\
         <table><tr><th>licensee</th><th>{first}</th><th>{last}</th><th></th></tr>\n"
    );
    for (name, counts) in rows {
        let values: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let _ = writeln!(
            body,
            "<tr><td><a href=\"/licensee/{}\">{}</a></td><td>{}</td><td>{}</td><td>{}</td></tr>",
            encode_path_segment(name),
            html_escape(name),
            counts.first().copied().unwrap_or(0),
            counts.last().copied().unwrap_or(0),
            sparkline(&values, 180.0, 22.0),
        );
    }
    body.push_str("</table>\n");
    page("Network evolution", &body)
}

/// Everything the race page renders, flattened from the wire
/// `Response::Race` plus the request's identity fields.
pub struct RaceView {
    /// Licensee whose corpus supplied the microwave leg.
    pub licensee: String,
    /// Corpus snapshot date, ISO.
    pub date_iso: String,
    /// Origin site code.
    pub from: String,
    /// Destination site code.
    pub to: String,
    /// Constellation raced on the LEO leg.
    pub constellation: String,
    /// Geodesic distance, km.
    pub geodesic_km: f64,
    /// Vacuum geodesic limit, ms.
    pub c_bound_ms: f64,
    /// Corpus microwave leg, ms.
    pub microwave_ms: Option<f64>,
    /// Fiber leg, ms.
    pub fiber_ms: f64,
    /// LEO leg, ms.
    pub leo_ms: Option<f64>,
    /// Inter-satellite hops on the LEO leg.
    pub leo_isl_hops: Option<u64>,
    /// Microwave stretch vs the vacuum bound.
    pub mw_stretch: Option<f64>,
    /// Fiber stretch vs the vacuum bound.
    pub fiber_stretch: f64,
    /// LEO stretch vs the vacuum bound.
    pub leo_stretch: Option<f64>,
    /// The winning substrate.
    pub winner: String,
    /// Weather-MC availability of the microwave leg.
    pub wx_availability: f64,
    /// Weather-MC median latency, ms.
    pub wx_p50_ms: f64,
    /// Weather-MC p99 latency, ms.
    pub wx_p99_ms: f64,
    /// Weather-MC sample count (0 = no corpus microwave route).
    pub wx_samples: u64,
}

/// A milliseconds cell: `∞` for a disconnected/absent leg.
fn fmt_ms(ms: f64) -> String {
    if ms.is_finite() {
        format!("{ms:.3}")
    } else {
        "∞".to_string()
    }
}

/// The substrate comparison as an `hft-viz` chart: one flat bar-top
/// segment per substrate at its one-way latency, the vacuum bound in
/// grey underneath everything.
fn substrate_chart(v: &RaceView) -> String {
    let mut series = vec![hft_viz::chart::Series::dense(
        &format!("vacuum bound {:.3} ms", v.c_bound_ms),
        "#999999",
        vec![(0.55, v.c_bound_ms), (4.45, v.c_bound_ms)],
    )];
    let mut bar = |i: f64, label: String, color: &str, ms: f64| {
        series.push(hft_viz::chart::Series::dense(
            &label,
            color,
            vec![(i - 0.3, ms), (i + 0.3, ms)],
        ));
    };
    if let Some(ms) = v.microwave_ms {
        bar(1.0, format!("microwave {} ms", fmt_ms(ms)), "#8a3324", ms);
    }
    if let Some(ms) = v.leo_ms {
        bar(2.0, format!("LEO {} ms", fmt_ms(ms)), "#1f77b4", ms);
    }
    bar(
        3.0,
        format!("fiber {} ms", fmt_ms(v.fiber_ms)),
        "#666666",
        v.fiber_ms,
    );
    let cfg = hft_viz::chart::ChartConfig {
        title: format!("{} → {} · one-way latency by substrate", v.from, v.to),
        x_label: "substrate (1 microwave · 2 LEO · 3 fiber)".into(),
        y_label: "one-way latency (ms)".into(),
        width_px: 640.0,
        height_px: 360.0,
        y_range: None,
        x_range: Some((0.5, 4.5)),
    };
    hft_viz::chart::render(&cfg, &series)
}

/// `GET /race/{from}/{to}` — one cross-substrate latency race: the
/// verdict line, a data-ink leg table (funnel-style proportional bars),
/// the weather-adjusted availability of the microwave leg, and the
/// substrate chart.
pub fn race_page(v: &RaceView) -> String {
    let legs: Vec<(&str, Option<f64>, Option<f64>)> = vec![
        ("vacuum bound", Some(v.c_bound_ms), None),
        ("microwave", v.microwave_ms, v.mw_stretch),
        ("LEO", v.leo_ms, v.leo_stretch),
        ("fiber", Some(v.fiber_ms), Some(v.fiber_stretch)),
    ];
    let slowest = legs
        .iter()
        .filter_map(|(_, ms, _)| *ms)
        .fold(v.c_bound_ms, f64::max)
        .max(1e-9);
    let mut body = format!(
        "<p class=\"dim\">{} · {} km geodesic · corpus {} as of {} · constellation {}</p>\n\
         <p>winner: <strong>{}</strong></p>\n\
         <table><tr><th>substrate</th><th>one-way ms</th><th>stretch ×c</th><th></th></tr>\n",
        html_escape(&format!("{} → {}", v.from, v.to)),
        format_args!("{:.0}", v.geodesic_km),
        html_escape(&v.licensee),
        html_escape(&v.date_iso),
        html_escape(&v.constellation),
        html_escape(&v.winner),
    );
    for (label, ms, stretch) in &legs {
        let (ms_cell, bar) = match ms {
            None => ("—".to_string(), String::new()),
            Some(ms) => {
                let w = 420.0 * ms / slowest;
                (
                    fmt_ms(*ms),
                    format!(
                        "<svg width=\"430\" height=\"14\"><rect x=\"0\" y=\"2\" \
                         width=\"{w:.1}\" height=\"10\" fill=\"#8a3324\"/></svg>"
                    ),
                )
            }
        };
        let stretch_cell = match stretch {
            None => "—".to_string(),
            Some(s) => format!("{s:.4}"),
        };
        let label = match (*label, v.leo_isl_hops) {
            ("LEO", Some(hops)) => format!("LEO ({hops} ISL hops)"),
            _ => label.to_string(),
        };
        let _ = writeln!(
            body,
            "<tr><td>{}</td><td>{ms_cell}</td><td>{stretch_cell}</td><td>{bar}</td></tr>",
            html_escape(&label),
        );
    }
    body.push_str("</table>\n");
    if v.wx_samples > 0 {
        let _ = writeln!(
            body,
            "<p class=\"dim\">microwave weather windows (§5 Monte Carlo, {} samples): \
             availability {:.4} · p50 {} ms · p99 {} ms</p>",
            v.wx_samples,
            v.wx_availability,
            fmt_ms(v.wx_p50_ms),
            fmt_ms(v.wx_p99_ms),
        );
    } else {
        body.push_str(
            "<p class=\"dim\">no corpus microwave route — weather windows not applicable</p>\n",
        );
    }
    body.push_str(&substrate_chart(v));
    body.push('\n');
    page(&format!("Race {} → {}", v.from, v.to), &body)
}

/// `GET /dashboard` — the live registry as three tables, straight from
/// one [`RegistrySnapshot`] so every number on the page is from the
/// same instant.
pub fn dashboard_page(s: &RegistrySnapshot) -> String {
    let mut body = String::from("<h2 class=\"dim\">counters</h2><table>\n");
    for (name, v) in &s.counters {
        let _ = writeln!(body, "<tr><td>{}</td><td>{v}</td></tr>", html_escape(name));
    }
    body.push_str("</table>\n<h2 class=\"dim\">gauges</h2><table>\n");
    for (name, v) in &s.gauges {
        let _ = writeln!(body, "<tr><td>{}</td><td>{v}</td></tr>", html_escape(name));
    }
    body.push_str(concat!(
        "</table>\n<h2 class=\"dim\">histograms</h2>",
        "<table><tr><th>name</th><th>count</th><th>p50</th><th>p90</th>",
        "<th>p99</th><th>p999</th><th>max</th></tr>\n"
    ));
    for (name, h) in &s.histograms {
        let _ = writeln!(
            body,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            html_escape(name),
            h.count,
            h.p50,
            h.p90,
            h.p99,
            h.p999,
            h.max,
        );
    }
    body.push_str("</table>\n");
    page("Live dashboard", &body)
}

/// Shard leg palette for the waterfall: one colour per shard index
/// (cycled), so a straggler leg is visually attributable at a glance.
const SHARD_COLORS: [&str; 6] = [
    "#1f77b4", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2",
];

/// `GET /traces` — the flight recorder's index: slowest captured trace
/// first, each row linking to its waterfall.
pub fn traces_page(records: &[hft_obs::TraceRecord]) -> String {
    if records.is_empty() {
        return page(
            "Flight recorder",
            "<p class=\"dim\">no captured traces yet — the recorder keeps head-sampled \
             (1-in-N) and over-threshold (slow) requests in per-thread rings; drive some \
             traffic and reload</p>\n",
        );
    }
    let mut body = String::from(
        "<p class=\"dim\">slowest captured traces first; \
         <b>slow</b> = over the slow-query threshold, <b>sampled</b> = 1-in-N head sample</p>\n\
         <table><tr><th>trace</th><th>request</th><th>total</th><th>spans</th>\
         <th>shards</th><th>why kept</th></tr>\n",
    );
    for r in records {
        let id = hft_obs::format_trace_id(r.trace_id);
        let shards: std::collections::BTreeSet<u32> =
            r.tree.spans.iter().filter_map(|s| s.shard).collect();
        let why = match (r.slow, r.sampled) {
            (true, true) => "slow + sampled",
            (true, false) => "slow",
            (false, true) => "sampled",
            (false, false) => "—",
        };
        let _ = writeln!(
            body,
            "<tr><td><a href=\"/trace/{id}\">{short}…</a></td><td>{label}</td>\
             <td>{total}</td><td>{spans}</td><td>{nshards}</td><td>{why}</td></tr>",
            short = &id[..8],
            label = html_escape(r.label),
            total = hft_obs::span::format_ns(r.total_ns),
            spans = r.tree.spans.len(),
            nshards = shards.len(),
        );
    }
    body.push_str("</table>\n");
    page("Flight recorder", &body)
}

/// One captured trace as a waterfall: a row per span, x proportional to
/// start offset, width proportional to duration, indented by depth,
/// shard legs coloured per shard. Pure data-ink, inline SVG.
pub fn trace_page(r: &hft_obs::TraceRecord) -> String {
    let id = hft_obs::format_trace_id(r.trace_id);
    let total = r.tree.total_ns().max(1);
    let spans = &r.tree.spans;
    let mut depth = vec![0usize; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if let Some(p) = s.parent {
            depth[i] = depth[p as usize] + 1;
        }
    }
    const BAR_W: f64 = 560.0;
    const ROW_H: f64 = 22.0;
    const LEFT: f64 = 4.0;
    let height = ROW_H * spans.len() as f64 + 4.0;
    let mut svg = format!(
        "<svg width=\"960\" height=\"{height:.0}\" viewBox=\"0 0 960 {height:.0}\" \
         font-family=\"Georgia,serif\" font-size=\"12\">\n"
    );
    for (i, s) in spans.iter().enumerate() {
        let x = LEFT + BAR_W * s.start_ns as f64 / total as f64;
        let w = (BAR_W * s.dur_ns as f64 / total as f64).max(1.0);
        let y = 2.0 + ROW_H * i as f64;
        let color = match s.shard {
            Some(k) => SHARD_COLORS[k as usize % SHARD_COLORS.len()],
            None => "#8a3324",
        };
        let shard_note = match s.shard {
            Some(k) => format!(" · shard {k}"),
            None => String::new(),
        };
        let _ = writeln!(
            svg,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"14\" \
             fill=\"{color}\" fill-opacity=\"0.85\"/>\
             <text x=\"{tx:.1}\" y=\"{ty:.1}\">{pad}{name} · {dur}{shard_note}</text>",
            tx = LEFT + BAR_W + 12.0,
            ty = y + 11.0,
            pad = "\u{2003}".repeat(depth[i]),
            name = html_escape(s.name),
            dur = hft_obs::span::format_ns(s.dur_ns),
        );
    }
    svg.push_str("</svg>");
    let shards: std::collections::BTreeSet<u32> = spans.iter().filter_map(|s| s.shard).collect();
    let shard_list = shards
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let body = format!(
        "<p class=\"dim\">{label} · total {total_h}{slow}{sampled} · {n} spans · \
         shards [{shard_list}] · <a href=\"/traces\">all traces</a></p>\n{svg}\n\
         <pre class=\"dim\">{rendered}</pre>\n",
        label = html_escape(r.label),
        total_h = hft_obs::span::format_ns(r.total_ns),
        slow = if r.slow { " · <b>slow</b>" } else { "" },
        sampled = if r.sampled { " · sampled" } else { "" },
        n = spans.len(),
        rendered = html_escape(&r.tree.render()),
    );
    page(&format!("Trace {}…", &id[..8]), &body)
}

/// An error/status page (404, 405, parse failures).
pub fn error_page(status: u16, detail: &str) -> String {
    page(
        &format!("{status} {}", crate::response::reason(status)),
        &format!("<p>{}</p>\n", html_escape(detail)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_links_escape_and_encode() {
        let html = index_page(
            &[3, 4],
            &[CorpusRow {
                name: "A&B <Networks>".into(),
                licenses: 7,
            }],
        );
        assert!(html.contains("A&amp;B &lt;Networks&gt;"));
        assert!(html.contains("/licensee/A%26B%20%3CNetworks%3E"));
        assert!(html.contains("generation [3,4]"));
    }

    #[test]
    fn sparkline_is_inline_svg() {
        let svg = sparkline(&[0.0, 2.0, 1.0], 100.0, 20.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("polyline"));
        // Flat-zero data must not divide by zero.
        assert!(sparkline(&[0.0, 0.0], 100.0, 20.0).contains("polyline"));
    }

    #[test]
    fn race_page_renders_chart_and_legs() {
        let v = RaceView {
            licensee: "New Line Networks".into(),
            date_iso: "2020-04-01".into(),
            from: "CME".into(),
            to: "NY4".into(),
            constellation: "starlink".into(),
            geodesic_km: 1186.0,
            c_bound_ms: 3.956,
            microwave_ms: Some(3.982),
            fiber_ms: 7.12,
            leo_ms: Some(9.4),
            leo_isl_hops: Some(3),
            mw_stretch: Some(1.0066),
            fiber_stretch: 1.8,
            leo_stretch: Some(2.38),
            winner: "microwave".into(),
            wx_availability: 0.985,
            wx_p50_ms: 3.982,
            wx_p99_ms: f64::INFINITY,
            wx_samples: 5_000,
        };
        let html = race_page(&v);
        assert!(html.contains("<strong>microwave</strong>"));
        assert!(html.contains("LEO (3 ISL hops)"));
        assert!(html.contains("one-way latency by substrate"));
        assert!(html.contains("<polyline"), "viz chart must be inline");
        assert!(html.contains("p99 ∞ ms"));

        // No corpus route: weather section degrades, bars survive.
        let free = RaceView {
            microwave_ms: None,
            mw_stretch: None,
            wx_availability: 0.0,
            wx_p50_ms: f64::INFINITY,
            wx_p99_ms: f64::INFINITY,
            wx_samples: 0,
            winner: "fiber".into(),
            ..v
        };
        let html = race_page(&free);
        assert!(html.contains("weather windows not applicable"));
        assert!(html.contains("<td>—</td>"));
    }

    fn sample_trace() -> hft_obs::TraceRecord {
        use hft_obs::{SpanRecord, SpanTree};
        hft_obs::TraceRecord {
            trace_id: 0xfeed_f00d,
            label: "geographic",
            sampled: true,
            slow: true,
            total_ns: 80_000_000,
            tree: SpanTree {
                spans: vec![
                    SpanRecord {
                        name: "serve.request",
                        parent: None,
                        start_ns: 0,
                        dur_ns: 80_000_000,
                        shard: None,
                    },
                    SpanRecord {
                        name: "queue.wait",
                        parent: Some(0),
                        start_ns: 0,
                        dur_ns: 4_000_000,
                        shard: None,
                    },
                    SpanRecord {
                        name: "shard.call",
                        parent: Some(0),
                        start_ns: 4_000_000,
                        dur_ns: 70_000_000,
                        shard: Some(2),
                    },
                ],
            },
        }
    }

    #[test]
    fn traces_index_links_and_degrades_empty() {
        let html = traces_page(&[sample_trace()]);
        assert!(html.contains("/trace/000000000000000000000000feedf00d"));
        assert!(html.contains("geographic"));
        assert!(html.contains("slow + sampled"));
        assert!(traces_page(&[]).contains("no captured traces yet"));
    }

    #[test]
    fn trace_page_renders_waterfall_svg() {
        let html = trace_page(&sample_trace());
        assert!(html.contains("<svg"), "waterfall must be inline SVG");
        assert!(html.contains("shard 2"), "shard legs must be attributed");
        assert!(html.contains("queue.wait"));
        assert!(
            html.contains("shards [2]"),
            "header must list participating shards"
        );
        // The text tree rides along for copy-paste.
        assert!(html.contains("<pre class=\"dim\">"));
    }

    #[test]
    fn dashboard_renders_snapshot_tables() {
        let r = hft_obs::Registry::new();
        r.counter("http.requests").add(2);
        r.histogram("t.ns").record(500);
        let html = dashboard_page(&r.snapshot());
        assert!(html.contains("http.requests"));
        assert!(html.contains("<h2 class=\"dim\">histograms</h2>"));
        assert!(html.contains("t.ns"));
    }
}
