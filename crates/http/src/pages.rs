//! HTML page rendering: the explorer's read-only views over the
//! corpus and the live registry.
//!
//! Styling follows the Tufte notes referenced by the roadmap: maximize
//! data-ink (no chrome beyond a header line), small multiples for
//! cross-network comparison (per-licensee sparklines on the evolution
//! page), and inline SVG so every page is one self-contained response
//! with zero subresource fetches.

use hft_obs::RegistrySnapshot;
use std::fmt::Write;

/// The content type every HTML page is served under.
pub const HTML_CONTENT_TYPE: &str = "text/html; charset=utf-8";

/// Escape text for HTML element content and attribute values.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Percent-encode a licensee name for use in a path segment.
pub fn encode_path_segment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            b => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// The shared page shell: one title line, a nav row, the body.
fn page(title: &str, body: &str) -> String {
    format!(
        concat!(
            "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">",
            "<title>{title} · hftnetview</title>",
            "<style>",
            "body{{font-family:Georgia,serif;max-width:72rem;margin:1.5rem auto;padding:0 1rem;color:#111}}",
            "nav a{{margin-right:1rem;color:#8a3324}}",
            "h1{{font-size:1.4rem;font-weight:normal;border-bottom:1px solid #999;padding-bottom:.3rem}}",
            "table{{border-collapse:collapse}}",
            "td,th{{padding:.15rem .8rem .15rem 0;text-align:left;font-variant-numeric:tabular-nums}}",
            "th{{font-weight:normal;border-bottom:1px solid #ccc}}",
            "svg{{max-width:100%}}",
            ".dim{{color:#666;font-size:.85rem}}",
            "</style></head><body>",
            "<nav><a href=\"/\">corpus</a><a href=\"/funnel\">funnel</a>",
            "<a href=\"/evolution\">evolution</a><a href=\"/dashboard\">dashboard</a>",
            "<a href=\"/metrics\">metrics</a></nav>",
            "<h1>{title}</h1>\n{body}</body></html>\n"
        ),
        title = html_escape(title),
        body = body,
    )
}

/// One corpus index row.
pub struct CorpusRow {
    /// The filed licensee name.
    pub name: String,
    /// Licenses filed under the name.
    pub licenses: usize,
}

/// `GET /` — the corpus index: every licensee with a link to its
/// network page, plus the fleet's generation vector.
pub fn index_page(generations: &[u64], rows: &[CorpusRow]) -> String {
    let total: usize = rows.iter().map(|r| r.licenses).sum();
    let gens = generations
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut body = format!(
        "<p class=\"dim\">{} licensees · {} licenses · {} shard{} · generation [{}]</p>\n\
         <table><tr><th>licensee</th><th>licenses</th></tr>\n",
        rows.len(),
        total,
        generations.len(),
        if generations.len() == 1 { "" } else { "s" },
        gens,
    );
    for row in rows {
        let _ = writeln!(
            body,
            "<tr><td><a href=\"/licensee/{}\">{}</a></td><td>{}</td></tr>",
            encode_path_segment(&row.name),
            html_escape(&row.name),
            row.licenses,
        );
    }
    body.push_str("</table>\n");
    page("Microwave corpus", &body)
}

/// `GET /licensee/{name}` — one network as of a date: headline counts
/// plus the inline corridor map from `hft-viz`.
pub fn licensee_page(
    name: &str,
    date_iso: &str,
    generation: u64,
    towers: u64,
    links: u64,
    active: u64,
    svg: &str,
) -> String {
    let body = format!(
        "<p class=\"dim\">as of {} · generation {} · \
         <a href=\"/licensee/{}?date=2016-06-01\">2016</a> \
         <a href=\"/licensee/{}?date=2020-04-01\">2020</a></p>\n\
         <table><tr><th>towers</th><th>links</th><th>active licenses</th></tr>\n\
         <tr><td>{towers}</td><td>{links}</td><td>{active}</td></tr></table>\n{svg}",
        html_escape(date_iso),
        generation,
        encode_path_segment(name),
        encode_path_segment(name),
    );
    page(name, &body)
}

/// `GET /funnel` — the §2.2 scrape funnel as a data-ink bar chart:
/// three counts, bar lengths proportional, shortlist names below.
pub fn funnel_page(
    radius_km: f64,
    min_filings: usize,
    geographic: u64,
    filtered: u64,
    shortlisted: u64,
    names: &[String],
) -> String {
    let max = geographic.max(1);
    let mut body = format!(
        "<p class=\"dim\">radius {radius_km} km · ≥ {min_filings} MG/FXO filings · \
         <a href=\"/funnel?radius_km=50&amp;min_filings=2\">wide</a> \
         <a href=\"/funnel\">paper</a></p>\n<table>\n"
    );
    for (label, n) in [
        ("geographic candidates", geographic),
        ("service filtered", filtered),
        ("shortlisted", shortlisted),
    ] {
        let w = 420.0 * n as f64 / max as f64;
        let _ = writeln!(
            body,
            "<tr><td>{label}</td><td>{n}</td><td><svg width=\"430\" height=\"14\">\
             <rect x=\"0\" y=\"2\" width=\"{w:.1}\" height=\"10\" fill=\"#8a3324\"/></svg></td></tr>"
        );
    }
    body.push_str("</table>\n<p>");
    let links: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "<a href=\"/licensee/{}\">{}</a>",
                encode_path_segment(n),
                html_escape(n)
            )
        })
        .collect();
    body.push_str(&links.join(" · "));
    body.push_str("</p>\n");
    page("Scrape funnel", &body)
}

/// An inline sparkline: the small-multiples primitive of the evolution
/// page. Pure data-ink — one polyline, one terminal dot, no axes.
pub fn sparkline(values: &[f64], width: f64, height: f64) -> String {
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let lo = 0.0;
    let span = (hi - lo).max(1e-9);
    let n = values.len().max(2) - 1;
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = 2.0 + (width - 4.0) * i as f64 / n as f64;
            let y = 2.0 + (height - 4.0) * (1.0 - (v - lo) / span);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    let last = pts.last().cloned().unwrap_or_default();
    format!(
        "<svg width=\"{width:.0}\" height=\"{height:.0}\" viewBox=\"0 0 {width:.0} {height:.0}\">\
         <polyline points=\"{}\" fill=\"none\" stroke=\"#8a3324\" stroke-width=\"1.5\"/>\
         <circle cx=\"{}\" cy=\"{}\" r=\"2\" fill=\"#8a3324\"/></svg>",
        pts.join(" "),
        last.split(',').next().unwrap_or("0"),
        last.split(',').nth(1).unwrap_or("0"),
    )
}

/// `GET /evolution` — small multiples: one sparkline of active license
/// count per licensee over the sampled years, largest networks first.
pub fn evolution_page(years: &[i32], rows: &[(String, Vec<usize>)]) -> String {
    let first = years.first().copied().unwrap_or(0);
    let last = years.last().copied().unwrap_or(0);
    let mut body = format!(
        "<p class=\"dim\">active licenses at year end, {first}–{last}; \
         one row per licensee, shared x, independent y (small multiples)</p>\n\
         <table><tr><th>licensee</th><th>{first}</th><th>{last}</th><th></th></tr>\n"
    );
    for (name, counts) in rows {
        let values: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let _ = writeln!(
            body,
            "<tr><td><a href=\"/licensee/{}\">{}</a></td><td>{}</td><td>{}</td><td>{}</td></tr>",
            encode_path_segment(name),
            html_escape(name),
            counts.first().copied().unwrap_or(0),
            counts.last().copied().unwrap_or(0),
            sparkline(&values, 180.0, 22.0),
        );
    }
    body.push_str("</table>\n");
    page("Network evolution", &body)
}

/// `GET /dashboard` — the live registry as three tables, straight from
/// one [`RegistrySnapshot`] so every number on the page is from the
/// same instant.
pub fn dashboard_page(s: &RegistrySnapshot) -> String {
    let mut body = String::from("<h2 class=\"dim\">counters</h2><table>\n");
    for (name, v) in &s.counters {
        let _ = writeln!(body, "<tr><td>{}</td><td>{v}</td></tr>", html_escape(name));
    }
    body.push_str("</table>\n<h2 class=\"dim\">gauges</h2><table>\n");
    for (name, v) in &s.gauges {
        let _ = writeln!(body, "<tr><td>{}</td><td>{v}</td></tr>", html_escape(name));
    }
    body.push_str(concat!(
        "</table>\n<h2 class=\"dim\">histograms</h2>",
        "<table><tr><th>name</th><th>count</th><th>p50</th><th>p90</th>",
        "<th>p99</th><th>p999</th><th>max</th></tr>\n"
    ));
    for (name, h) in &s.histograms {
        let _ = writeln!(
            body,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            html_escape(name),
            h.count,
            h.p50,
            h.p90,
            h.p99,
            h.p999,
            h.max,
        );
    }
    body.push_str("</table>\n");
    page("Live dashboard", &body)
}

/// An error/status page (404, 405, parse failures).
pub fn error_page(status: u16, detail: &str) -> String {
    page(
        &format!("{status} {}", crate::response::reason(status)),
        &format!("<p>{}</p>\n", html_escape(detail)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_links_escape_and_encode() {
        let html = index_page(
            &[3, 4],
            &[CorpusRow {
                name: "A&B <Networks>".into(),
                licenses: 7,
            }],
        );
        assert!(html.contains("A&amp;B &lt;Networks&gt;"));
        assert!(html.contains("/licensee/A%26B%20%3CNetworks%3E"));
        assert!(html.contains("generation [3,4]"));
    }

    #[test]
    fn sparkline_is_inline_svg() {
        let svg = sparkline(&[0.0, 2.0, 1.0], 100.0, 20.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("polyline"));
        // Flat-zero data must not divide by zero.
        assert!(sparkline(&[0.0, 0.0], 100.0, 20.0).contains("polyline"));
    }

    #[test]
    fn dashboard_renders_snapshot_tables() {
        let r = hft_obs::Registry::new();
        r.counter("http.requests").add(2);
        r.histogram("t.ns").record(500);
        let html = dashboard_page(&r.snapshot());
        assert!(html.contains("http.requests"));
        assert!(html.contains("<h2 class=\"dim\">histograms</h2>"));
        assert!(html.contains("t.ns"));
    }
}
