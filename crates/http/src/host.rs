//! [`HttpHost`]: the page renderer's view of the serving engines.
//!
//! The wire [`Handler`] surface answers counts, not geometry — a
//! `network` response says how many towers, not where they stand. HTML
//! pages need the geometry, so `HttpHost` exposes *generation-pinned
//! session visits* on top of `Handler`: each visit captures an engine
//! (with its corpus generation) exactly the way the wire path does, so
//! a page renders against one consistent corpus even while the ingest
//! applier publishes.
//!
//! The visits are cheap-by-construction: heavy computations (network
//! reconstruction, the scrape funnel) are first submitted through the
//! worker pool as ordinary wire requests — which warms the owning
//! engine's session memoization off the event loop — and the page then
//! renders from the same engine where those lookups are cache hits. A
//! generation swap between the warm-up and the render can make the
//! render recompute on-loop; that is rare (one page per publish) and
//! bounded by one request's work.

use hft_core::session::AnalysisSession;
use hft_serve::service::{Handler, Service};
use hft_serve::{LiveService, ShardRouter};
use hft_uls::shard::shard_of_licensee;

/// Generation-pinned session access for page rendering, on top of the
/// wire [`Handler`] every answer ultimately comes from.
pub trait HttpHost: Handler {
    /// Visit every shard's current engine, in shard order, as
    /// `(generation, session)` pairs pinned for the duration of the
    /// callback.
    fn visit_shards(&self, f: &mut dyn FnMut(u64, &AnalysisSession<'_>));

    /// Visit the engine owning `licensee` (the only shard whose session
    /// can answer single-licensee geometry).
    fn visit_owner(&self, licensee: &str, f: &mut dyn FnMut(u64, &AnalysisSession<'_>));
}

impl HttpHost for Service<'_> {
    fn visit_shards(&self, f: &mut dyn FnMut(u64, &AnalysisSession<'_>)) {
        f(self.generation(), self.session());
    }

    fn visit_owner(&self, _licensee: &str, f: &mut dyn FnMut(u64, &AnalysisSession<'_>)) {
        f(self.generation(), self.session());
    }
}

impl HttpHost for LiveService {
    fn visit_shards(&self, f: &mut dyn FnMut(u64, &AnalysisSession<'_>)) {
        let engine = self.engine();
        f(engine.generation(), engine.session());
    }

    fn visit_owner(&self, _licensee: &str, f: &mut dyn FnMut(u64, &AnalysisSession<'_>)) {
        let engine = self.engine();
        f(engine.generation(), engine.session());
    }
}

impl HttpHost for ShardRouter {
    fn visit_shards(&self, f: &mut dyn FnMut(u64, &AnalysisSession<'_>)) {
        for shard in self.shards() {
            let engine = shard.engine();
            f(engine.generation(), engine.session());
        }
    }

    fn visit_owner(&self, licensee: &str, f: &mut dyn FnMut(u64, &AnalysisSession<'_>)) {
        if self.strategy().routes_by_name() {
            let k = shard_of_licensee(licensee, self.shard_count()) as usize;
            let engine = self.shards()[k].engine();
            f(engine.generation(), engine.session());
            return;
        }
        // Spatial partitioning: ownership depends on the corpus, so
        // find the shard that actually files under the name (mirrors
        // the router's broadcast-and-select).
        let engines: Vec<_> = self.shards().iter().map(|s| s.engine()).collect();
        let owner = engines
            .iter()
            .position(|e| {
                e.session()
                    .db()
                    .is_some_and(|db| db.licensees().binary_search(&licensee).is_ok())
            })
            .unwrap_or(0);
        f(engines[owner].generation(), engines[owner].session());
    }
}
