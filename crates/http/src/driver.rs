//! The HTTP connection driver and route table.
//!
//! [`HttpExplorer`] is a [`DriverFactory`] for the serve crate's
//! readiness loop: register it as an extra listener and every accepted
//! connection gets an [`HttpConn`] — an incremental parser feeding a
//! route dispatcher, with responses queued strictly in request order
//! (HTTP/1.1 pipelining never reorders).
//!
//! Two answer shapes exist:
//!
//! * **Immediate** — index, evolution, metrics, dashboard, and every
//!   error: rendered on the loop from cheap lookups (cached licensee
//!   lists, registry snapshots) and queued at once.
//! * **Pooled** — licensee pages, the funnel, and the JSON API: the
//!   equivalent wire [`Request`] is admitted to the worker pool, the
//!   connection's queue holds the [`ResponseSlot`], and the page is
//!   finished (rendered or byte-encoded) when the slot fills. This
//!   keeps reconstruction/scrape work off the event loop *and* warms
//!   the owning engine's memoization, so a page's follow-up session
//!   visit is a cache hit (see [`HttpHost`](crate::host::HttpHost)).
//!
//! The JSON API (`POST /api`) decodes a wire request from the body and
//! answers `handler.handle(request)` bytes verbatim — the HTTP answer
//! is byte-identical to the wire answer for the same request, which the
//! `httpload` bench asserts. `shutdown` is the one request HTTP
//! refuses (403): browsers must not be able to stop the fleet.

use crate::host::HttpHost;
use crate::pages::{self, CorpusRow, HTML_CONTENT_TYPE};
use crate::parser::{HttpRequest, RequestParser};
use crate::response::write_response;
use hft_core::corridor::{CME, EQUINIX_NY4, NASDAQ, NYSE};
use hft_obs::expo::PROMETHEUS_CONTENT_TYPE;
use hft_serve::evloop::{ConnDriver, DriverCx, DriverFactory};
use hft_serve::pool::{ResponseSlot, SubmitError};
use hft_serve::{Request, Response};
use hft_time::Date;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Content type of JSON API answers.
const JSON_CONTENT_TYPE: &str = "application/json";
/// Most rows the evolution page renders (largest networks first).
const EVOLUTION_MAX_ROWS: usize = 40;
/// Years sampled by the evolution sparklines (paper study window).
const EVOLUTION_YEARS: std::ops::RangeInclusive<i32> = 2013..=2020;

/// The date a licensee page renders when the query gives none: the
/// paper's 2020 snapshot.
fn default_date() -> Date {
    Date::new(2020, 4, 1).expect("valid default date")
}

/// [`DriverFactory`] serving the explorer over `host`. Register with
/// [`ExtraListener`](hft_serve::ExtraListener) on the wire server's
/// readiness loop.
pub struct HttpExplorer<'h, H: HttpHost + Sync> {
    host: &'h H,
}

impl<'h, H: HttpHost + Sync> HttpExplorer<'h, H> {
    /// An explorer over the given engine (a `Service`, `LiveService`,
    /// or `ShardRouter`).
    pub fn new(host: &'h H) -> HttpExplorer<'h, H> {
        HttpExplorer { host }
    }
}

impl<H: HttpHost + Sync> DriverFactory for HttpExplorer<'_, H> {
    fn new_conn(&self) -> Box<dyn ConnDriver + '_> {
        Box::new(HttpConn {
            host: self.host,
            parser: RequestParser::new(),
            outq: VecDeque::new(),
            closed: false,
        })
    }
}

/// How a pooled answer becomes an HTTP response once its slot fills.
enum Finish {
    /// `POST /api`: the wire response's own bytes.
    Api,
    /// A licensee page: counts from the wire response, geometry from a
    /// generation-pinned session visit (a cache hit — the pooled
    /// request just computed it).
    Licensee { name: String, date: Date },
    /// The funnel page: rendered entirely from the wire response.
    Funnel { radius_km: f64, min_filings: usize },
    /// A race page: rendered entirely from the wire response; the
    /// request identity rides along for the header line.
    Race { licensee: String, date: Date },
}

/// What a route produced.
enum Answer {
    Now {
        status: u16,
        content_type: &'static str,
        body: Vec<u8>,
    },
    Pooled {
        slot: Arc<ResponseSlot>,
        finish: Finish,
    },
}

/// One queued exchange, in request order.
struct OutEntry {
    answer: Answer,
    keep_alive: bool,
    head_only: bool,
    /// RED attribution: the route label and the parse instant. Duration
    /// is measured parse-to-response-ready in [`HttpConn::pump`], so a
    /// pooled page's queue wait and service time are both inside it.
    route: &'static str,
    started: Instant,
}

/// Per-connection HTTP state: parser in, ordered response queue out.
struct HttpConn<'h, H: HttpHost + Sync> {
    host: &'h H,
    parser: RequestParser,
    outq: VecDeque<OutEntry>,
    /// No further requests are parsed (an error or `Connection: close`
    /// exchange is queued).
    closed: bool,
}

impl<H: HttpHost + Sync> HttpConn<'_, H> {
    fn push(
        &mut self,
        answer: Answer,
        keep_alive: bool,
        head_only: bool,
        route: &'static str,
        started: Instant,
    ) {
        self.outq.push_back(OutEntry {
            answer,
            keep_alive,
            head_only,
            route,
            started,
        });
        if !keep_alive {
            self.closed = true;
        }
    }

    /// Route one parsed request.
    fn handle_request(&mut self, req: HttpRequest, cx: &mut DriverCx<'_>) {
        cx.handler().serve_stats().on_received();
        let started = Instant::now();
        let keep_alive = req.keep_alive;
        let head_only = req.method == "HEAD";
        let get_like = req.method == "GET" || head_only;

        let (label, answer) = match (get_like, req.path.as_str()) {
            (true, "/") => ("index", self.index()),
            (true, path) if path.starts_with("/licensee/") => ("licensee", self.licensee(&req, cx)),
            (true, path) if path.starts_with("/race/") => ("race", self.race(&req, cx)),
            (true, "/funnel") => ("funnel", self.funnel(&req, cx)),
            (true, "/evolution") => ("evolution", self.evolution()),
            (true, "/metrics") => ("metrics", metrics_answer()),
            (true, "/dashboard") => ("dashboard", dashboard_answer()),
            (true, "/traces") => ("traces", traces_answer()),
            (true, path) if path.starts_with("/trace/") => ("trace", trace_answer(path)),
            (false, "/api") if req.method == "POST" => ("api", self.api(&req, cx)),
            (
                _,
                "/" | "/funnel" | "/evolution" | "/metrics" | "/dashboard" | "/traces" | "/api",
            ) => (
                "other",
                html_error(405, &format!("method {} not allowed here", req.method)),
            ),
            (_, path)
                if (path.starts_with("/licensee/")
                    || path.starts_with("/race/")
                    || path.starts_with("/trace/"))
                    && !get_like =>
            {
                (
                    "other",
                    html_error(405, &format!("method {} not allowed here", req.method)),
                )
            }
            (_, path) => ("other", html_error(404, &format!("no route for {path}"))),
        };
        hft_obs::global()
            .counter_with("http.requests", "route", label)
            .incr();

        // Immediate answers complete here; pooled ones complete in the
        // worker, exactly like wire requests.
        if let Answer::Now { status, .. } = &answer {
            cx.handler().serve_stats().on_completed(*status >= 400);
        }
        self.push(answer, keep_alive, head_only, label, started);
    }

    /// `GET /` — cheap cached lookups only; renders on the loop.
    fn index(&self) -> Answer {
        let mut rows: BTreeMap<String, usize> = BTreeMap::new();
        let mut generations = Vec::new();
        self.host.visit_shards(&mut |generation, session| {
            generations.push(generation);
            if let Some(db) = session.db() {
                for lic in db.licenses() {
                    *rows.entry(lic.licensee.clone()).or_insert(0) += 1;
                }
            }
        });
        let rows: Vec<CorpusRow> = rows
            .into_iter()
            .map(|(name, licenses)| CorpusRow { name, licenses })
            .collect();
        html_ok(pages::index_page(&generations, &rows))
    }

    /// `GET /licensee/{name}?date=` — pooled through a wire `network`
    /// request.
    fn licensee(&mut self, req: &HttpRequest, cx: &mut DriverCx<'_>) -> Answer {
        let name = req.path["/licensee/".len()..].to_string();
        if name.is_empty() || name.contains('/') {
            return html_error(404, "expected /licensee/{name}");
        }
        let date = match query(req, "date") {
            None => default_date(),
            Some(raw) => match Date::parse_iso(raw) {
                Ok(date) => date,
                Err(_) => return html_error(400, &format!("bad date {raw:?} (want YYYY-MM-DD)")),
            },
        };
        self.submit(
            Request::Network {
                licensee: name.clone(),
                date,
            },
            Finish::Licensee { name, date },
            cx,
        )
    }

    /// `GET /race/{from}/{to}?licensee=&date=&constellation=&samples=&seed=`
    /// — pooled through a wire `race` request; the page renders
    /// entirely from the wire response, so its numbers are exactly the
    /// served-bytes numbers.
    fn race(&mut self, req: &HttpRequest, cx: &mut DriverCx<'_>) -> Answer {
        let rest = &req.path["/race/".len()..];
        let mut parts = rest.split('/');
        let (from, to) = match (parts.next(), parts.next(), parts.next()) {
            (Some(from), Some(to), None) if !from.is_empty() && !to.is_empty() => (from, to),
            _ => return html_error(404, "expected /race/{from}/{to}"),
        };
        let licensee = query(req, "licensee")
            .unwrap_or("New Line Networks")
            .to_string();
        let date = match query(req, "date") {
            None => default_date(),
            Some(raw) => match Date::parse_iso(raw) {
                Ok(date) => date,
                Err(_) => return html_error(400, &format!("bad date {raw:?} (want YYYY-MM-DD)")),
            },
        };
        let constellation = query(req, "constellation")
            .unwrap_or("starlink")
            .to_string();
        let samples = match query(req, "samples").map(str::parse::<usize>) {
            None => 2000,
            Some(Ok(s)) if (1..=1_000_000).contains(&s) => s,
            Some(_) => return html_error(400, "bad samples (want 1..=1000000)"),
        };
        let seed = match query(req, "seed").map(str::parse::<u64>) {
            None => 0,
            Some(Ok(s)) => s,
            Some(Err(_)) => return html_error(400, "bad seed"),
        };
        self.submit(
            Request::Race {
                licensee: licensee.clone(),
                date,
                from: from.to_string(),
                to: to.to_string(),
                constellation,
                samples,
                seed,
            },
            Finish::Race { licensee, date },
            cx,
        )
    }

    /// `GET /funnel?radius_km=&min_filings=` — pooled through a wire
    /// `shortlist` request anchored at the CME reference point.
    fn funnel(&mut self, req: &HttpRequest, cx: &mut DriverCx<'_>) -> Answer {
        let radius_km = match query(req, "radius_km").map(str::parse::<f64>) {
            None => 10.0,
            Some(Ok(r)) if r.is_finite() && r > 0.0 => r,
            Some(_) => return html_error(400, "bad radius_km"),
        };
        let min_filings = match query(req, "min_filings").map(str::parse::<usize>) {
            None => 11,
            Some(Ok(m)) => m,
            Some(Err(_)) => return html_error(400, "bad min_filings"),
        };
        let reference = CME.position();
        self.submit(
            Request::Shortlist {
                lat_deg: reference.lat_deg(),
                lon_deg: reference.lon_deg(),
                radius_km,
                min_filings,
            },
            Finish::Funnel {
                radius_km,
                min_filings,
            },
            cx,
        )
    }

    /// `GET /evolution` — year-end active-count sparklines. The counts
    /// are cheap membership filters, so this renders on the loop.
    fn evolution(&self) -> Answer {
        let years: Vec<i32> = EVOLUTION_YEARS.collect();
        let mut rows: Vec<(String, Vec<usize>)> = Vec::new();
        self.host.visit_shards(&mut |_generation, session| {
            let Some(db) = session.db() else { return };
            // Shards partition at licensee granularity, so rows from
            // different shards never collide.
            for name in db.licensees() {
                let counts: Vec<usize> = years
                    .iter()
                    .map(|&y| {
                        let eoy = Date::new(y, 12, 31).expect("valid year end");
                        session.active_count(name, eoy)
                    })
                    .collect();
                if counts.iter().any(|&c| c > 0) {
                    rows.push((name.to_string(), counts));
                }
            }
        });
        rows.sort_by(|a, b| {
            let (fa, fb) = (a.1.last().copied(), b.1.last().copied());
            fb.cmp(&fa).then_with(|| a.0.cmp(&b.0))
        });
        rows.truncate(EVOLUTION_MAX_ROWS);
        html_ok(pages::evolution_page(&years, &rows))
    }

    /// `POST /api` — the wire request surface over HTTP. Telemetry
    /// requests bypass the queue exactly as the wire transport does;
    /// `shutdown` is refused.
    fn api(&mut self, req: &HttpRequest, cx: &mut DriverCx<'_>) -> Answer {
        let request = match Request::decode(&req.body) {
            Ok(request) => request,
            Err(message) => {
                return json_answer(
                    400,
                    Response::Error {
                        message: format!("bad request: {message}"),
                    },
                );
            }
        };
        match request {
            Request::Shutdown => json_answer(
                403,
                Response::Error {
                    message: "shutdown is not permitted over http".to_string(),
                },
            ),
            Request::Stats | Request::Metrics | Request::Traces { .. } => {
                json_answer(200, cx.handler().handle(&request))
            }
            request => self.submit(request, Finish::Api, cx),
        }
    }

    /// Admit a wire request to the worker pool on this request's behalf.
    fn submit(&mut self, request: Request, finish: Finish, cx: &mut DriverCx<'_>) -> Answer {
        match cx.submit(request) {
            Ok(slot) => Answer::Pooled { slot, finish },
            Err(SubmitError::Overloaded) => match finish {
                Finish::Api => json_answer(503, Response::Overloaded),
                _ => html_error(503, "admission queue is full; retry shortly"),
            },
            Err(SubmitError::Closed) => {
                self.closed = true;
                match finish {
                    Finish::Api => json_answer(503, Response::ShuttingDown),
                    _ => html_error(503, "server is shutting down"),
                }
            }
        }
    }

    /// Render a filled slot per its finish plan.
    fn finish(&self, finish: &Finish, response: Response) -> (u16, &'static str, Vec<u8>) {
        match finish {
            Finish::Api => {
                let status = match &response {
                    Response::Error { .. } => 400,
                    Response::Overloaded | Response::ShuttingDown => 503,
                    _ => 200,
                };
                (status, JSON_CONTENT_TYPE, response.encode())
            }
            Finish::Licensee { name, date } => match response {
                Response::Network {
                    towers,
                    links,
                    active_licenses,
                    ..
                } => {
                    if towers == 0 && links == 0 && active_licenses == 0 {
                        let body = pages::error_page(
                            404,
                            &format!("no licenses filed under {name:?} as of {}", date.to_iso()),
                        );
                        return (404, HTML_CONTENT_TYPE, body.into_bytes());
                    }
                    let markers = [
                        ("CME", CME.position()),
                        ("NY4", EQUINIX_NY4.position()),
                        ("NYSE", NYSE.position()),
                        ("NASDAQ", NASDAQ.position()),
                    ];
                    let mut page = None;
                    self.host.visit_owner(name, &mut |generation, session| {
                        // The pooled request just reconstructed this
                        // network in the owning engine: cache hit.
                        let network = session.network(name, *date);
                        let svg = hft_viz::svgmap::network_to_svg(&network, &markers);
                        page = Some(pages::licensee_page(
                            name,
                            &date.to_iso(),
                            generation,
                            towers,
                            links,
                            active_licenses,
                            &svg,
                        ));
                    });
                    let body = page.unwrap_or_else(|| pages::error_page(503, "no engine"));
                    (200, HTML_CONTENT_TYPE, body.into_bytes())
                }
                Response::Error { message } => {
                    let body = pages::error_page(400, &message);
                    (400, HTML_CONTENT_TYPE, body.into_bytes())
                }
                _ => {
                    let body = pages::error_page(503, "engine unavailable");
                    (503, HTML_CONTENT_TYPE, body.into_bytes())
                }
            },
            Finish::Funnel {
                radius_km,
                min_filings,
            } => match response {
                Response::Shortlist {
                    geographic_candidates,
                    service_filtered,
                    shortlisted,
                    names,
                } => {
                    let body = pages::funnel_page(
                        *radius_km,
                        *min_filings,
                        geographic_candidates,
                        service_filtered,
                        shortlisted,
                        &names,
                    );
                    (200, HTML_CONTENT_TYPE, body.into_bytes())
                }
                Response::Error { message } => {
                    let body = pages::error_page(400, &message);
                    (400, HTML_CONTENT_TYPE, body.into_bytes())
                }
                _ => {
                    let body = pages::error_page(503, "engine unavailable");
                    (503, HTML_CONTENT_TYPE, body.into_bytes())
                }
            },
            Finish::Race { licensee, date } => match response {
                Response::Race {
                    from,
                    to,
                    constellation,
                    geodesic_km,
                    c_bound_ms,
                    microwave_ms,
                    fiber_ms,
                    leo_ms,
                    leo_isl_hops,
                    mw_stretch,
                    fiber_stretch,
                    leo_stretch,
                    winner,
                    wx_p50_ms,
                    wx_p99_ms,
                    wx_availability,
                    wx_samples,
                    ..
                } => {
                    let body = pages::race_page(&pages::RaceView {
                        licensee: licensee.clone(),
                        date_iso: date.to_iso(),
                        from,
                        to,
                        constellation,
                        geodesic_km,
                        c_bound_ms,
                        microwave_ms,
                        fiber_ms,
                        leo_ms,
                        leo_isl_hops,
                        mw_stretch,
                        fiber_stretch,
                        leo_stretch,
                        winner,
                        wx_availability,
                        wx_p50_ms,
                        wx_p99_ms,
                        wx_samples,
                    });
                    (200, HTML_CONTENT_TYPE, body.into_bytes())
                }
                Response::Error { message } => {
                    let body = pages::error_page(400, &message);
                    (400, HTML_CONTENT_TYPE, body.into_bytes())
                }
                _ => {
                    let body = pages::error_page(503, "engine unavailable");
                    (503, HTML_CONTENT_TYPE, body.into_bytes())
                }
            },
        }
    }
}

impl<H: HttpHost + Sync> ConnDriver for HttpConn<'_, H> {
    fn on_bytes(&mut self, bytes: &[u8], cx: &mut DriverCx<'_>) {
        if self.closed {
            return; // a close-marked exchange is queued; drop the rest
        }
        self.parser.feed(bytes);
        loop {
            if self.closed || cx.closing() {
                return;
            }
            match self.parser.next() {
                Ok(Some(request)) => self.handle_request(request, cx),
                Ok(None) => return,
                Err(e) => {
                    hft_obs::global()
                        .counter_with("http.requests", "route", "error")
                        .incr();
                    let stats = cx.handler().serve_stats();
                    stats.on_received();
                    stats.on_completed(true);
                    let body = pages::error_page(e.status(), &e.to_string());
                    self.push(
                        Answer::Now {
                            status: e.status(),
                            content_type: HTML_CONTENT_TYPE,
                            body: body.into_bytes(),
                        },
                        false,
                        false,
                        "error",
                        Instant::now(),
                    );
                    return;
                }
            }
        }
    }

    fn on_eof(&mut self, _cx: &mut DriverCx<'_>) {
        // A partial request at EOF is dropped; queued answers flush.
    }

    fn pump(&mut self, cx: &mut DriverCx<'_>) {
        loop {
            let Some(entry) = self.outq.pop_front() else {
                return;
            };
            let (status, content_type, body) = match entry.answer {
                Answer::Now {
                    status,
                    content_type,
                    body,
                } => (status, content_type, body),
                Answer::Pooled { slot, finish } => match slot.try_take() {
                    Some(response) => self.finish(&finish, response),
                    None => {
                        // Not filled yet: later answers must wait (order).
                        self.outq.push_front(OutEntry {
                            answer: Answer::Pooled { slot, finish },
                            keep_alive: entry.keep_alive,
                            head_only: entry.head_only,
                            route: entry.route,
                            started: entry.started,
                        });
                        return;
                    }
                },
            };
            red_done(entry.route, status, entry.started);
            let mut buf = cx.buf();
            write_response(
                &mut buf,
                status,
                content_type,
                &body,
                entry.keep_alive,
                entry.head_only,
            );
            cx.send(buf);
            if !entry.keep_alive {
                cx.close_after_flush();
                return;
            }
        }
    }

    fn idle(&self) -> bool {
        self.outq.is_empty()
    }
}

/// First query value under `key`.
fn query<'r>(req: &'r HttpRequest, key: &str) -> Option<&'r str> {
    req.query
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn html_ok(body: String) -> Answer {
    Answer::Now {
        status: 200,
        content_type: HTML_CONTENT_TYPE,
        body: body.into_bytes(),
    }
}

fn html_error(status: u16, detail: &str) -> Answer {
    Answer::Now {
        status,
        content_type: HTML_CONTENT_TYPE,
        body: pages::error_page(status, detail).into_bytes(),
    }
}

fn json_answer(status: u16, response: Response) -> Answer {
    Answer::Now {
        status,
        content_type: JSON_CONTENT_TYPE,
        body: response.encode(),
    }
}

/// `GET /metrics` — Prometheus text exposition of the global registry.
fn metrics_answer() -> Answer {
    let snapshot = hft_obs::global().snapshot();
    Answer::Now {
        status: 200,
        content_type: PROMETHEUS_CONTENT_TYPE,
        body: hft_obs::expo::render_prometheus(&snapshot).into_bytes(),
    }
}

/// Close the RED loop for one exchange: error count and duration, both
/// labeled by route. (`http.requests{route=}` — the R — is counted at
/// dispatch in `handle_request`.)
fn red_done(route: &'static str, status: u16, started: Instant) {
    let registry = hft_obs::global();
    if status >= 400 {
        registry.counter_with("http.errors", "route", route).incr();
    }
    registry
        .histogram(&hft_obs::registry::labeled(
            "http.duration_ns",
            "route",
            route,
        ))
        .record(started.elapsed().as_nanos() as u64);
}

/// `GET /traces` — the flight recorder's index, slowest first; a
/// registry snapshot-style read, so it renders on the loop.
fn traces_answer() -> Answer {
    let records = hft_obs::trace_snapshot(50);
    html_ok(pages::traces_page(&records))
}

/// `GET /trace/{id}` — one captured trace as a cross-shard waterfall.
fn trace_answer(path: &str) -> Answer {
    let raw = &path["/trace/".len()..];
    let Some(id) = hft_obs::parse_trace_id(raw) else {
        return html_error(404, &format!("bad trace id {raw:?} (want hex digits)"));
    };
    match hft_obs::find_trace(id) {
        Some(record) => html_ok(pages::trace_page(&record)),
        None => html_error(
            404,
            &format!("no captured trace {raw} (the flight recorder is a bounded ring)"),
        ),
    }
}

/// `GET /dashboard` — the same registry as HTML.
fn dashboard_answer() -> Answer {
    let snapshot = hft_obs::global().snapshot();
    Answer::Now {
        status: 200,
        content_type: HTML_CONTENT_TYPE,
        body: pages::dashboard_page(&snapshot).into_bytes(),
    }
}
