//! hft-http: a hand-rolled, dependency-free HTTP/1.1 layer over the
//! evented serve plane — the user-facing read path the wire protocol
//! never was.
//!
//! The crate adds **no transport of its own**: [`HttpExplorer`] is a
//! [`DriverFactory`](hft_serve::DriverFactory) registered as an extra
//! listener on the serve crate's readiness loop, so HTTP connections
//! share the same poller, pooled buffers, worker pool and admission
//! queue as wire connections — no per-connection threads, no new
//! unsafe.
//!
//! Layering, bottom up:
//!
//! 1. [`parser`] — an incremental request parser with hard caps on
//!    every attacker-controlled dimension and a structured
//!    [`HttpError`](parser::HttpError) taxonomy; never panics on
//!    arbitrary bytes.
//! 2. [`response`] — status-line + header serialization into pooled
//!    buffers.
//! 3. [`host`] — [`HttpHost`](host::HttpHost): generation-pinned
//!    session visits over `Service`/`LiveService`/`ShardRouter`, so
//!    pages render one consistent corpus under live ingest.
//! 4. [`pages`] — data-ink-first HTML: the corpus index, per-licensee
//!    corridor maps (inline `hft-viz` SVG), the scrape funnel, the
//!    small-multiples evolution page, and the live registry dashboard.
//! 5. [`driver`] — the route table and the per-connection
//!    [`ConnDriver`](hft_serve::ConnDriver), including `POST /api`
//!    (wire requests over HTTP, byte-identical answers) and
//!    `GET /metrics` (Prometheus text exposition).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod host;
pub mod pages;
pub mod parser;
pub mod response;

pub use driver::HttpExplorer;
pub use host::HttpHost;
pub use parser::{HttpError, HttpRequest, RequestParser};
