//! Response serialization: status line + the minimal header set the
//! explorer needs, written straight into a pooled buffer.

use std::io::Write;

/// Canonical reason phrase for the statuses the explorer emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Serialize one response into `buf`. `head_only` answers a `HEAD`
/// request: full headers (including the real `Content-Length`) with no
/// body bytes.
pub fn write_response(
    buf: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        buf,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    if !head_only {
        buf.extend_from_slice(body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_carries_length_without_body() {
        let mut full = Vec::new();
        write_response(&mut full, 200, "text/plain", b"hello", true, false);
        let mut head = Vec::new();
        write_response(&mut head, 200, "text/plain", b"hello", true, true);
        let text = String::from_utf8(head).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
        assert!(String::from_utf8(full).unwrap().ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn close_marks_connection() {
        let mut buf = Vec::new();
        write_response(&mut buf, 404, "text/html; charset=utf-8", b"", false, false);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("404 Not Found"));
    }
}
