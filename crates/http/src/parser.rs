//! An incremental HTTP/1.1 request parser.
//!
//! Hand-rolled, zero-dependency, and defensive: the parser consumes
//! arbitrary bytes without panicking, caps every dimension an attacker
//! controls (request-line length, header block size, header count, body
//! length) with a deterministic [`HttpError`] per cap, and keeps
//! partial input buffered across reads so the readiness loop can feed
//! it whatever the socket produced.
//!
//! Scope is deliberately HTTP/1.1-minimal: origin-form targets,
//! `Content-Length` bodies only (`Transfer-Encoding` answers 501),
//! `HTTP/1.0` and `HTTP/1.1` (anything else answers 505), no obsolete
//! line folding. Header names are case-normalized to lowercase and
//! optional whitespace around values is trimmed, so case and OWS
//! variants of the same message parse identically.

use std::fmt;

/// Longest accepted request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted head (request line + all headers), bytes.
pub const MAX_HEAD_BYTES: usize = 32 * 1024;
/// Most accepted header fields.
pub const MAX_HEADERS: usize = 100;
/// Largest accepted `Content-Length` body, bytes.
pub const MAX_BODY: usize = 1 << 20;

/// Everything that can be wrong with a request, each mapped to the
/// HTTP status the server answers before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or target (400).
    BadRequest(String),
    /// Malformed header field (400).
    BadHeader(String),
    /// Request line exceeds [`MAX_REQUEST_LINE`] (414).
    UriTooLong,
    /// Head exceeds [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`] (431).
    HeadersTooLarge,
    /// `Content-Length` exceeds [`MAX_BODY`] (413).
    BodyTooLarge,
    /// `Transfer-Encoding` is not implemented (501).
    UnsupportedEncoding,
    /// An HTTP version other than 1.0/1.1 (505).
    BadVersion(String),
}

impl HttpError {
    /// The response status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) | HttpError::BadHeader(_) => 400,
            HttpError::UriTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedEncoding => 501,
            HttpError::BadVersion(_) => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::BadHeader(m) => write!(f, "bad header: {m}"),
            HttpError::UriTooLong => write!(f, "request line too long (max {MAX_REQUEST_LINE})"),
            HttpError::HeadersTooLarge => {
                write!(
                    f,
                    "headers too large (max {MAX_HEAD_BYTES} bytes, {MAX_HEADERS} fields)"
                )
            }
            HttpError::BodyTooLarge => write!(f, "body too large (max {MAX_BODY})"),
            HttpError::UnsupportedEncoding => write!(f, "transfer-encoding not implemented"),
            HttpError::BadVersion(v) => write!(f, "unsupported http version: {v}"),
        }
    }
}

/// One fully parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method, verbatim (`GET`, `HEAD`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path component of the target.
    pub path: String,
    /// Decoded query parameters, in target order.
    pub query: Vec<(String, String)>,
    /// HTTP minor version: 0 or 1.
    pub minor: u8,
    /// Header fields in arrival order, names lowercased, values
    /// OWS-trimmed.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length` body (empty when none was declared).
    pub body: Vec<u8>,
    /// Whether the connection persists after this exchange, per the
    /// HTTP/1.x defaults and any `Connection` header.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First header value under `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parser state between [`RequestParser::next`] calls.
enum State {
    /// Accumulating head bytes.
    Head,
    /// Head parsed; awaiting `need` body bytes for `head`.
    Body { head: Box<HttpRequest>, need: usize },
    /// A prior `next` returned an error; the stream is desynchronized
    /// and every further `next` repeats the error.
    Failed(HttpError),
}

/// Incremental request decoder: [`feed`](RequestParser::feed) raw
/// socket bytes, then drain complete requests with
/// [`next`](RequestParser::next).
pub struct RequestParser {
    buf: Vec<u8>,
    state: State,
}

impl Default for RequestParser {
    fn default() -> RequestParser {
        RequestParser::new()
    }
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            state: State::Head,
        }
    }

    /// Append raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // A failed parser never recovers; don't buffer garbage forever.
        if !matches!(self.state, State::Failed(_)) {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete request: `Ok(None)` means more bytes are
    /// needed, `Err` means the stream is broken (answer the error's
    /// status, then close).
    // Not `Iterator`: the item is fallible and `Ok(None)` is "feed me
    // more", not exhaustion.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        if let State::Failed(e) = &self.state {
            return Err(e.clone());
        }
        if let State::Body { need, .. } = &self.state {
            let need = *need;
            if self.buf.len() < need {
                return Ok(None);
            }
            let body: Vec<u8> = self.buf.drain(..need).collect();
            let State::Body { head, .. } = std::mem::replace(&mut self.state, State::Head) else {
                unreachable!()
            };
            let mut request = *head;
            request.body = body;
            return Ok(Some(request));
        }
        let Some(head_end) = find_head_end(&self.buf) else {
            return self.check_unterminated_caps();
        };
        match parse_head(&self.buf[..head_end]) {
            Err(e) => {
                self.state = State::Failed(e.clone());
                self.buf.clear();
                Err(e)
            }
            Ok((head, need)) => {
                self.buf.drain(..head_end);
                if self.buf.len() >= need {
                    let mut request = head;
                    request.body = self.buf.drain(..need).collect();
                    Ok(Some(request))
                } else {
                    self.state = State::Body {
                        head: Box::new(head),
                        need,
                    };
                    Ok(None)
                }
            }
        }
    }

    /// Enforce line/head caps on a buffer with no head terminator yet,
    /// so an endless header stream cannot buffer unboundedly.
    fn check_unterminated_caps(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        let first_line_done = self
            .buf
            .iter()
            .take(MAX_REQUEST_LINE + 1)
            .any(|&b| b == b'\n');
        let e = if !first_line_done && self.buf.len() > MAX_REQUEST_LINE {
            HttpError::UriTooLong
        } else if self.buf.len() > MAX_HEAD_BYTES {
            HttpError::HeadersTooLarge
        } else {
            return Ok(None);
        };
        self.state = State::Failed(e.clone());
        self.buf.clear();
        Err(e)
    }
}

/// Index one past the blank line ending the head, tolerating bare LF:
/// `\r\n\r\n`, `\n\n`, `\n\r\n` all terminate.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parse the head bytes (request line + headers + terminating blank
/// line) into a body-less request plus the declared body length.
fn parse_head(head: &[u8]) -> Result<(HttpRequest, usize), HttpError> {
    if head.len() > MAX_HEAD_BYTES {
        return Err(HttpError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::UriTooLong);
    }
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(HttpError::BadRequest(format!("bad method {method:?}")));
    }
    let minor = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        other => return Err(HttpError::BadVersion(other.to_string())),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the head terminator's blank line
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::BadHeader("obsolete line folding".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(format!("missing colon in {line:?}")));
        };
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadHeader(format!("bad field name {name:?}")));
        }
        headers.push((
            name.to_ascii_lowercase(),
            value.trim_matches([' ', '\t']).to_string(),
        ));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedEncoding);
    }
    let need = match find("content-length") {
        None => 0,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| HttpError::BadHeader(format!("bad content-length {v:?}")))?;
            if n > MAX_BODY {
                return Err(HttpError::BodyTooLarge);
            }
            n
        }
    };
    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => minor == 1,
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "target must be origin-form, got {target:?}"
        )));
    }
    let path = pct_decode(raw_path, false)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((pct_decode(k, true)?, pct_decode(v, true)?));
        }
    }

    Ok((
        HttpRequest {
            method: method.to_string(),
            path,
            query,
            minor,
            headers,
            body: Vec::new(),
            keep_alive,
        },
        need,
    ))
}

/// RFC 7230 token byte (header names, methods).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Percent-decode `s`; in query components (`plus_is_space`) `+`
/// decodes to a space.
fn pct_decode(s: &str, plus_is_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = |b: Option<&u8>| b.and_then(|b| (*b as char).to_digit(16));
                match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        return Err(HttpError::BadRequest(format!(
                            "bad percent-escape in {s:?}"
                        )));
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| HttpError::BadRequest(format!("non-UTF-8 percent-data in {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        let mut p = RequestParser::new();
        p.feed(bytes);
        p.next()
    }

    #[test]
    fn simple_get() {
        let r = parse_one(b"GET /licensee/New%20Line?date=2020-04-01 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/licensee/New Line");
        assert_eq!(r.query, vec![("date".into(), "2020-04-01".into())]);
        assert_eq!(r.minor, 1);
        assert!(r.keep_alive);
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn post_with_body_split_across_feeds() {
        let wire = b"POST /api HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        let mut p = RequestParser::new();
        for chunk in wire.chunks(3) {
            p.feed(chunk);
        }
        // Draining mid-stream never tears: requests appear only when
        // complete.
        let r = p.next().unwrap().unwrap();
        assert_eq!(r.body, b"hello world");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_pop_in_order() {
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.next().unwrap().unwrap().path, "/a");
        assert_eq!(p.next().unwrap().unwrap().path, "/b");
        assert_eq!(p.next().unwrap(), None);
    }

    #[test]
    fn header_case_and_ows_variants_parse_identically() {
        let a = parse_one(b"GET / HTTP/1.1\r\nContent-Type: text/x\r\n\r\n").unwrap();
        let b = parse_one(b"GET / HTTP/1.1\r\ncONTENT-tYPE:   text/x\t \r\n\r\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bare_lf_tolerated() {
        let r = parse_one(b"GET / HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn keep_alive_defaults_per_version() {
        assert!(
            parse_one(b"GET / HTTP/1.1\r\n\r\n")
                .unwrap()
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse_one(b"GET / HTTP/1.0\r\n\r\n")
                .unwrap()
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .unwrap()
                .keep_alive
        );
        assert!(
            parse_one(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
                .unwrap()
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn caps_hit_their_statuses() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse_one(long_line.as_bytes()).unwrap_err().status(), 414);

        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("x-h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_eq!(parse_one(many.as_bytes()).unwrap_err().status(), 431);

        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse_one(big.as_bytes()).unwrap_err().status(), 413);

        // An unterminated header flood trips the head cap without ever
        // seeing the blank line.
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD_BYTES + 1];
        p.feed(&filler);
        assert_eq!(p.next().unwrap_err().status(), 431);
    }

    #[test]
    fn unsupported_features_answer_distinct_statuses() {
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status(),
            501
        );
        assert_eq!(
            parse_one(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status(),
            505
        );
        assert_eq!(
            parse_one(b"GET http://x/ HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse_one(b"GET /%zz HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
    }

    #[test]
    fn failed_parser_stays_failed() {
        let mut p = RequestParser::new();
        p.feed(b"NOT A REQUEST\r\n\r\n");
        let first = p.next().unwrap_err();
        p.feed(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(p.next().unwrap_err(), first);
        assert_eq!(p.buffered(), 0);
    }
}
