//! The speed-of-light latency model of §2.3 of the paper.
//!
//! Microwave segments propagate at essentially the vacuum speed of light
//! (the refractive index of air, ~1.0003, is ignored by the paper and
//! here); fiber segments propagate at roughly `2c/3` due to the glass
//! refractive index.

use core::fmt;

/// Speed of light in vacuum, m/s (exact, SI definition).
pub const C_VACUUM_M_PER_S: f64 = 299_792_458.0;

/// Velocity factor of standard single-mode fiber (~2/3 of c), matching the
/// paper's `2c/3` assumption.
pub const FIBER_VELOCITY_FACTOR: f64 = 2.0 / 3.0;

/// The propagation medium of a path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Medium {
    /// Line-of-sight radio through air: speed ≈ c.
    Air,
    /// Optical fiber: speed ≈ 2c/3.
    Fiber,
    /// Vacuum (inter-satellite laser links): speed = c.
    Vacuum,
}

impl Medium {
    /// Propagation speed in m/s.
    pub fn speed_m_per_s(self) -> f64 {
        match self {
            Medium::Air | Medium::Vacuum => C_VACUUM_M_PER_S,
            Medium::Fiber => C_VACUUM_M_PER_S * FIBER_VELOCITY_FACTOR,
        }
    }
}

impl fmt::Display for Medium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Medium::Air => "air",
            Medium::Fiber => "fiber",
            Medium::Vacuum => "vacuum",
        })
    }
}

/// One-way propagation latency in seconds for `distance_m` meters through
/// `medium`.
pub fn latency_seconds(distance_m: f64, medium: Medium) -> f64 {
    distance_m / medium.speed_m_per_s()
}

/// One-way propagation latency in milliseconds (the unit of the paper's
/// tables).
pub fn one_way_ms(distance_m: f64, medium: Medium) -> f64 {
    latency_seconds(distance_m, medium) * 1e3
}

/// A convenience wrapper accumulating a latency budget over mixed-medium
/// segments (microwave hops plus fiber tails), as used for end-to-end HFT
/// routes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpeedOfLight {
    air_m: f64,
    fiber_m: f64,
    vacuum_m: f64,
}

impl SpeedOfLight {
    /// Empty budget.
    pub fn new() -> SpeedOfLight {
        SpeedOfLight::default()
    }

    /// Add a segment of `distance_m` meters in `medium`.
    pub fn add(&mut self, distance_m: f64, medium: Medium) {
        debug_assert!(distance_m >= 0.0, "negative segment length");
        match medium {
            Medium::Air => self.air_m += distance_m,
            Medium::Fiber => self.fiber_m += distance_m,
            Medium::Vacuum => self.vacuum_m += distance_m,
        }
    }

    /// Builder-style [`SpeedOfLight::add`].
    pub fn with(mut self, distance_m: f64, medium: Medium) -> SpeedOfLight {
        self.add(distance_m, medium);
        self
    }

    /// Total path length in meters, regardless of medium.
    pub fn total_distance_m(&self) -> f64 {
        self.air_m + self.fiber_m + self.vacuum_m
    }

    /// Total one-way latency in seconds.
    pub fn total_seconds(&self) -> f64 {
        latency_seconds(self.air_m, Medium::Air)
            + latency_seconds(self.fiber_m, Medium::Fiber)
            + latency_seconds(self.vacuum_m, Medium::Vacuum)
    }

    /// Total one-way latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Total one-way latency in microseconds.
    pub fn total_us(&self) -> f64 {
        self.total_seconds() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corridor_bound_matches_paper() {
        // The paper states the minimum achievable CME–NY4 latency is
        // 3.955 ms over the 1,186 km geodesic at c.
        let ms = one_way_ms(1_186_000.0, Medium::Air);
        assert!((ms - 3.956).abs() < 0.002, "got {ms}");
    }

    #[test]
    fn fiber_is_fifty_percent_slower() {
        let air = latency_seconds(1000.0, Medium::Air);
        let fiber = latency_seconds(1000.0, Medium::Fiber);
        assert!((fiber / air - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vacuum_equals_air_speed() {
        assert_eq!(Medium::Vacuum.speed_m_per_s(), Medium::Air.speed_m_per_s());
    }

    #[test]
    fn budget_accumulates_mixed_media() {
        let b = SpeedOfLight::new()
            .with(1_180_000.0, Medium::Air)
            .with(6_000.0, Medium::Fiber);
        assert!((b.total_distance_m() - 1_186_000.0).abs() < 1e-9);
        let expect = 1_180_000.0 / C_VACUUM_M_PER_S + 6_000.0 / (C_VACUUM_M_PER_S * 2.0 / 3.0);
        assert!((b.total_seconds() - expect).abs() < 1e-15);
        assert!((b.total_ms() - expect * 1e3).abs() < 1e-12);
        assert!((b.total_us() - expect * 1e6).abs() < 1e-9);
    }

    #[test]
    fn fiber_tail_penalty_magnitude() {
        // A 6 km fiber tail costs 10 µs extra versus 6 km of air — the
        // scale of the inter-network gaps in Table 1.
        let penalty_us =
            (latency_seconds(6_000.0, Medium::Fiber) - latency_seconds(6_000.0, Medium::Air)) * 1e6;
        assert!((penalty_us - 10.0).abs() < 0.2, "got {penalty_us}");
    }

    #[test]
    fn empty_budget_is_zero() {
        let b = SpeedOfLight::new();
        assert_eq!(b.total_seconds(), 0.0);
        assert_eq!(b.total_distance_m(), 0.0);
    }
}
