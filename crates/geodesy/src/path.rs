//! Polyline paths over the Earth's surface with mixed propagation media.

use crate::coord::LatLon;
use crate::latency::{Medium, SpeedOfLight};

/// One segment of a [`GeoPath`]: the geodesic from the previous waypoint,
/// traversed in a given medium.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    to: LatLon,
    medium: Medium,
}

/// A piecewise-geodesic path (sequence of waypoints), each leg annotated
/// with its propagation medium. This models an HFT route: a fiber tail
/// from the data center to the first tower, microwave tower-to-tower hops,
/// and a fiber tail into the far data center.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoPath {
    start: LatLon,
    segments: Vec<Segment>,
}

/// Aggregate measurements over a [`GeoPath`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSummary {
    /// Sum of leg geodesic lengths, meters.
    pub length_m: f64,
    /// One-way propagation latency, milliseconds.
    pub latency_ms: f64,
    /// Number of legs.
    pub hops: usize,
    /// Length of the longest single leg, meters.
    pub longest_leg_m: f64,
    /// Straight-geodesic distance between the endpoints, meters.
    pub geodesic_m: f64,
}

impl PathSummary {
    /// Path stretch: path length over endpoint geodesic distance (≥ 1 up to
    /// floating error; ∞ for zero geodesic).
    pub fn stretch(&self) -> f64 {
        if self.geodesic_m == 0.0 {
            f64::INFINITY
        } else {
            self.length_m / self.geodesic_m
        }
    }
}

impl GeoPath {
    /// A path anchored at `start` with no legs yet.
    pub fn new(start: LatLon) -> GeoPath {
        GeoPath {
            start,
            segments: Vec::new(),
        }
    }

    /// Append a leg to `to`, traversed in `medium`.
    pub fn push(&mut self, to: LatLon, medium: Medium) {
        self.segments.push(Segment { to, medium });
    }

    /// Builder-style [`GeoPath::push`].
    pub fn with(mut self, to: LatLon, medium: Medium) -> GeoPath {
        self.push(to, medium);
        self
    }

    /// First waypoint.
    pub fn start(&self) -> LatLon {
        self.start
    }

    /// Final waypoint (the start if the path has no legs).
    pub fn end(&self) -> LatLon {
        self.segments.last().map_or(self.start, |s| s.to)
    }

    /// Number of legs.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the path has no legs.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// All waypoints including the start, in order.
    pub fn waypoints(&self) -> Vec<LatLon> {
        let mut v = Vec::with_capacity(self.segments.len() + 1);
        v.push(self.start);
        v.extend(self.segments.iter().map(|s| s.to));
        v
    }

    /// Iterate `(from, to, medium)` legs.
    pub fn legs(&self) -> impl Iterator<Item = (LatLon, LatLon, Medium)> + '_ {
        let froms = std::iter::once(self.start).chain(self.segments.iter().map(|s| s.to));
        froms
            .zip(self.segments.iter())
            .map(|(from, seg)| (from, seg.to, seg.medium))
    }

    /// Measure the path.
    pub fn summarize(&self) -> PathSummary {
        let mut budget = SpeedOfLight::new();
        let mut longest = 0.0f64;
        for (from, to, medium) in self.legs() {
            let d = from.geodesic_distance_m(&to);
            budget.add(d, medium);
            longest = longest.max(d);
        }
        PathSummary {
            length_m: budget.total_distance_m(),
            latency_ms: budget.total_ms(),
            hops: self.segments.len(),
            longest_leg_m: longest,
            geodesic_m: self.start.geodesic_distance_m(&self.end()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn empty_path_summary() {
        let path = GeoPath::new(p(41.0, -88.0));
        let s = path.summarize();
        assert_eq!(s.hops, 0);
        assert_eq!(s.length_m, 0.0);
        assert_eq!(s.latency_ms, 0.0);
        assert_eq!(s.geodesic_m, 0.0);
        assert!(s.stretch().is_infinite());
    }

    #[test]
    fn straight_two_leg_path_near_unit_stretch() {
        let a = p(41.7625, -88.2443);
        let b = p(40.7930, -74.0576);
        let mid = crate::haversine::gc_interpolate(&a, &b, 0.5);
        let path = GeoPath::new(a).with(mid, Medium::Air).with(b, Medium::Air);
        let s = path.summarize();
        assert_eq!(s.hops, 2);
        assert!(s.stretch() < 1.0001, "stretch {}", s.stretch());
        assert!(s.length_m >= s.geodesic_m * 0.9999);
    }

    #[test]
    fn detour_increases_stretch() {
        let a = p(41.0, -88.0);
        let b = p(41.0, -80.0);
        let detour = p(43.5, -84.0);
        let direct = GeoPath::new(a).with(b, Medium::Air).summarize();
        let via = GeoPath::new(a)
            .with(detour, Medium::Air)
            .with(b, Medium::Air)
            .summarize();
        assert!(via.stretch() > direct.stretch());
        assert!(via.stretch() > 1.01);
    }

    #[test]
    fn mixed_media_latency_exceeds_all_air() {
        let a = p(41.7625, -88.2443);
        let t1 = p(41.75, -88.15);
        let b = p(40.7930, -74.0576);
        let t2 = p(40.80, -74.12);
        let mixed = GeoPath::new(a)
            .with(t1, Medium::Fiber)
            .with(t2, Medium::Air)
            .with(b, Medium::Fiber)
            .summarize();
        let all_air = GeoPath::new(a)
            .with(t1, Medium::Air)
            .with(t2, Medium::Air)
            .with(b, Medium::Air)
            .summarize();
        assert!(mixed.latency_ms > all_air.latency_ms);
        assert!((mixed.length_m - all_air.length_m).abs() < 1e-6);
    }

    #[test]
    fn waypoints_and_endpoints() {
        let a = p(41.0, -88.0);
        let b = p(41.0, -87.0);
        let c = p(41.0, -86.0);
        let path = GeoPath::new(a).with(b, Medium::Air).with(c, Medium::Air);
        assert_eq!(path.waypoints().len(), 3);
        assert_eq!(path.start(), a);
        assert_eq!(path.end(), c);
        assert_eq!(path.len(), 2);
        assert!(!path.is_empty());
    }

    #[test]
    fn longest_leg_tracked() {
        let a = p(41.0, -88.0);
        let b = p(41.0, -87.9); // ~8 km
        let c = p(41.0, -87.0); // ~75 km
        let s = GeoPath::new(a)
            .with(b, Medium::Air)
            .with(c, Medium::Air)
            .summarize();
        let bc = b.geodesic_distance_m(&c);
        assert!((s.longest_leg_m - bc).abs() < 1e-6);
    }
}
