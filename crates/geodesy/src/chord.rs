//! The chord-distance radius kernel: trig-free "is this point within
//! `r` meters of the center?" tests over precomputed unit vectors.
//!
//! Every geographic query in the pipeline — the §2.2 scrape funnel's
//! 10 km search, the corridor generator's placement checks, each date of
//! the evolution sweep — ultimately asks that question per tower site.
//! Answering it with a full Vincenty inverse solve costs an iterative
//! transcendental loop per site; this module reduces the common case to
//! **one dot product** against precomputed thresholds:
//!
//! * Each point is mapped once to its [`UnitEcef`] — the unit vector of
//!   its geodetic latitude/longitude on the reference sphere. For two
//!   such vectors `u·v = cos θ`, where `θ` is exactly the central angle
//!   the haversine formula computes, and the chord between the points is
//!   `2·sin(θ/2)` — monotone in the dot product. A radius comparison on
//!   the sphere is therefore a single comparison of `u·v` against a
//!   precomputed cosine (equivalently: squared chord length against a
//!   precomputed chord threshold). No trig, no iteration per point.
//! * The sphere is not the WGS-84 ellipsoid. The workspace documents
//!   (and property-tests, see `tests/prop_geodesy.rs`) that spherical
//!   and Vincenty distances diverge by less than 0.6% everywhere the
//!   corpus lives, so a spherical verdict is only trusted outside a
//!   **guard band** of `±`[`SPHERE_ELLIPSOID_MAX_REL_ERROR`]` · r` (plus
//!   a small absolute slack for floating-point) around the radius.
//!   Points landing inside the band get a Vincenty confirmation pass —
//!   the exact [`LatLon::geodesic_distance_m`] predicate — so the kernel
//!   returns *identical* answers to the scalar path, merely cheaper.

use crate::coord::LatLon;
use crate::haversine::EARTH_RADIUS_M;

/// Upper bound on the relative divergence between spherical (mean-radius
/// great-circle) and WGS-84 geodesic distance: the true maximum is
/// ~0.56% (meridional arcs), rounded up. Property-tested in
/// `tests/prop_geodesy.rs` (`vincenty_close_to_spherical`,
/// `guard_band_bounds_divergence`).
pub const SPHERE_ELLIPSOID_MAX_REL_ERROR: f64 = 0.006;

/// Absolute slack added on both sides of the guard band, meters. Covers
/// the floating-point error of the dot product in the flat region of the
/// cosine (an error of a few ulp in `u·v` near 1.0 maps to ≲ 1 m of arc),
/// so the spherical fast path never contradicts the exact predicate.
const BAND_ABS_M: f64 = 2.0;

/// A precomputed unit vector on the reference sphere: the geodetic
/// latitude/longitude of a point mapped to the unit sphere.
///
/// The dot product of two `UnitEcef`s is the cosine of the central angle
/// between the points — the same angle the haversine formula computes —
/// making radius tests a single multiply-add chain per point. Note this
/// is the *direction* for spherical chord math, not a normalized
/// geocentric [`crate::Ecef`] position (those use geocentric latitude,
/// which differs by up to 0.19°).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitEcef {
    /// X component: through the equator at the prime meridian.
    pub x: f64,
    /// Y component: through the equator at 90°E.
    pub y: f64,
    /// Z component: through the north pole.
    pub z: f64,
}

impl UnitEcef {
    /// Map a coordinate to its unit vector (two `sin_cos` calls — paid
    /// once per point, not once per query).
    pub fn from_latlon(p: &LatLon) -> UnitEcef {
        let (sin_lat, cos_lat) = p.lat_rad().sin_cos();
        let (sin_lon, cos_lon) = p.lon_rad().sin_cos();
        UnitEcef {
            x: cos_lat * cos_lon,
            y: cos_lat * sin_lon,
            z: sin_lat,
        }
    }

    /// Dot product: the cosine of the central angle to `other`.
    pub fn dot(&self, other: &UnitEcef) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Spherical surface distance to `other` in meters (mean Earth
    /// radius). Used for diagnostics; radius tests never take the
    /// `acos` — they compare dot products directly.
    pub fn sphere_distance_m(&self, other: &UnitEcef) -> f64 {
        EARTH_RADIUS_M * self.dot(other).clamp(-1.0, 1.0).acos()
    }
}

/// Verdict of the spherical fast path for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadiusClass {
    /// Spherical distance is far enough below the radius that the point
    /// is within it on the ellipsoid too — no confirmation needed.
    Inside,
    /// Within the guard band: sphere and ellipsoid could disagree here;
    /// the exact geodesic predicate must decide.
    Boundary,
    /// Spherical distance is far enough above the radius that the point
    /// is outside it on the ellipsoid too.
    Outside,
}

/// A radius membership test around a fixed center, with the center's
/// unit vector and both guard-band cosine thresholds precomputed.
///
/// Construct once per query (one `sin_cos` pair + two `cos` calls), then
/// [`RadiusTest::contains_vec`] costs one dot product per point outside
/// the guard band and one Vincenty solve inside it. Returns exactly the
/// same answers as `p.geodesic_distance_m(center) <= radius_m`.
#[derive(Debug, Clone, Copy)]
pub struct RadiusTest {
    center: LatLon,
    center_vec: UnitEcef,
    radius_m: f64,
    /// `dot ≥ accept_dot` ⇒ surely within the radius on the ellipsoid.
    accept_dot: f64,
    /// `dot < reject_dot` ⇒ surely beyond the radius on the ellipsoid.
    reject_dot: f64,
}

impl RadiusTest {
    /// A test for "within `radius_m` of `center`" (inclusive, matching
    /// [`LatLon::geodesic_distance_m`]` <= radius_m`).
    ///
    /// # Panics
    /// Panics when `radius_m` is negative or not finite.
    pub fn new(center: &LatLon, radius_m: f64) -> RadiusTest {
        assert!(
            radius_m.is_finite() && radius_m >= 0.0,
            "radius must be finite and non-negative, got {radius_m}"
        );
        let inner_m = radius_m * (1.0 - SPHERE_ELLIPSOID_MAX_REL_ERROR) - BAND_ABS_M;
        let outer_m = radius_m * (1.0 + SPHERE_ELLIPSOID_MAX_REL_ERROR) + BAND_ABS_M;
        // cos is decreasing on [0, π]: smaller angle ⇔ larger dot.
        let accept_dot = if inner_m > 0.0 {
            (inner_m / EARTH_RADIUS_M).min(core::f64::consts::PI).cos()
        } else {
            // Radius too small for a trig-free accept: everything near
            // the center goes through the confirmation pass.
            2.0
        };
        let outer_rad = outer_m / EARTH_RADIUS_M;
        let reject_dot = if outer_rad < core::f64::consts::PI {
            outer_rad.cos()
        } else {
            // The expanded radius wraps the whole sphere: no rejections.
            -2.0
        };
        RadiusTest {
            center: *center,
            center_vec: UnitEcef::from_latlon(center),
            radius_m,
            accept_dot,
            reject_dot,
        }
    }

    /// The center of the test.
    pub fn center(&self) -> &LatLon {
        &self.center
    }

    /// The (inclusive) radius in meters.
    pub fn radius_m(&self) -> f64 {
        self.radius_m
    }

    /// The spherical radius, expanded by the guard band, that any point
    /// this test could accept lies within — the bound a spatial
    /// prefilter (bounding box, grid) must cover.
    pub fn prefilter_radius_m(&self) -> f64 {
        self.radius_m * (1.0 + SPHERE_ELLIPSOID_MAX_REL_ERROR) + BAND_ABS_M
    }

    /// Classify a precomputed unit vector: one dot product, no trig.
    pub fn classify_vec(&self, v: &UnitEcef) -> RadiusClass {
        let dot = self.center_vec.dot(v);
        if dot >= self.accept_dot {
            RadiusClass::Inside
        } else if dot < self.reject_dot {
            RadiusClass::Outside
        } else {
            RadiusClass::Boundary
        }
    }

    /// Membership for a point whose unit vector is already precomputed:
    /// dot-product fast path, Vincenty confirmation only in the band.
    pub fn contains_vec(&self, v: &UnitEcef, position: &LatLon) -> bool {
        match self.classify_vec(v) {
            RadiusClass::Inside => true,
            RadiusClass::Outside => false,
            RadiusClass::Boundary => self.center.geodesic_distance_m(position) <= self.radius_m,
        }
    }

    /// Membership for a bare coordinate (computes the unit vector first).
    pub fn contains(&self, p: &LatLon) -> bool {
        self.contains_vec(&UnitEcef::from_latlon(p), p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haversine::{gc_destination, gc_distance_m};

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    fn cme() -> LatLon {
        p(41.7625, -88.171233)
    }

    #[test]
    fn unit_vec_dot_reproduces_haversine_angle() {
        let a = p(41.7625, -88.2443);
        let b = p(40.7930, -74.0576);
        let ua = UnitEcef::from_latlon(&a);
        let ub = UnitEcef::from_latlon(&b);
        let via_dot = ua.sphere_distance_m(&ub);
        let via_haversine = gc_distance_m(&a, &b);
        assert!(
            (via_dot - via_haversine).abs() < 1e-3,
            "dot {via_dot} vs haversine {via_haversine}"
        );
    }

    #[test]
    fn agrees_with_scalar_predicate_across_distances() {
        // March a point outward through the radius; the kernel must agree
        // with the exact predicate at every step, boundary included.
        let center = cme();
        let test = RadiusTest::new(&center, 10_000.0);
        for km in 0..25 {
            for frac in [0.0, 0.3, 0.7] {
                let d = (km as f64 + frac) * 1000.0;
                let q = gc_destination(&center, 73.0, d);
                let exact = center.geodesic_distance_m(&q) <= 10_000.0;
                assert_eq!(test.contains(&q), exact, "at {d} m");
            }
        }
    }

    #[test]
    fn clear_cases_skip_confirmation() {
        let center = cme();
        let test = RadiusTest::new(&center, 10_000.0);
        let near = gc_destination(&center, 10.0, 2_000.0);
        let far = gc_destination(&center, 10.0, 50_000.0);
        assert_eq!(
            test.classify_vec(&UnitEcef::from_latlon(&near)),
            RadiusClass::Inside
        );
        assert_eq!(
            test.classify_vec(&UnitEcef::from_latlon(&far)),
            RadiusClass::Outside
        );
    }

    #[test]
    fn band_straddles_the_radius() {
        // A point within a few meters of the 10 km circle must land in
        // the guard band (the sphere alone may not decide it).
        let center = cme();
        let test = RadiusTest::new(&center, 10_000.0);
        let edge = gc_destination(&center, 200.0, 10_000.0);
        assert_eq!(
            test.classify_vec(&UnitEcef::from_latlon(&edge)),
            RadiusClass::Boundary
        );
    }

    #[test]
    fn guard_band_conservative_on_corridor() {
        // The band is derived from the documented max haversine/Vincenty
        // divergence; prove the documented bound actually holds (with
        // margin) across the corridor's extent, so Inside/Outside
        // verdicts can never contradict the exact predicate.
        let anchors = [
            cme(),
            p(41.7625, -88.2443),
            p(40.7930, -74.0576),
            p(40.2204, -74.7560),
            p(38.0, -90.0),
            p(44.0, -72.0),
        ];
        for a in &anchors {
            for bearing in [0.0, 45.0, 90.0, 135.0, 180.0, 225.0, 270.0, 315.0] {
                for d in [500.0, 5_000.0, 10_000.0, 50_000.0, 300_000.0, 1_200_000.0] {
                    let b = gc_destination(a, bearing, d);
                    let sph = gc_distance_m(a, &b);
                    let ell = a.geodesic_distance_m(&b);
                    assert!(
                        (sph - ell).abs() <= SPHERE_ELLIPSOID_MAX_REL_ERROR * ell * 0.95 + 1e-9,
                        "divergence not conservative: sph={sph} ell={ell}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_radius_always_confirms() {
        // Radii at or below the band slack have no trig-free accept
        // region; membership still works through the confirmation pass.
        let center = cme();
        let test = RadiusTest::new(&center, 1.0);
        assert!(test.contains(&center));
        assert!(!test.contains(&gc_destination(&center, 90.0, 100.0)));
    }

    #[test]
    fn zero_radius_contains_center_only() {
        let center = cme();
        let test = RadiusTest::new(&center, 0.0);
        assert!(test.contains(&center));
        assert!(!test.contains(&gc_destination(&center, 90.0, 10.0)));
    }

    #[test]
    fn planet_sized_radius_accepts_everything() {
        let test = RadiusTest::new(&cme(), 21_000_000.0);
        for (lat, lon) in [(0.0, 0.0), (-89.0, 120.0), (41.0, 91.0)] {
            assert!(test.contains(&p(lat, lon)));
        }
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn negative_radius_rejected() {
        let _ = RadiusTest::new(&cme(), -1.0);
    }

    #[test]
    fn prefilter_radius_covers_all_acceptable_points() {
        let test = RadiusTest::new(&cme(), 10_000.0);
        assert!(test.prefilter_radius_m() > 10_000.0);
        assert!(test.prefilter_radius_m() < 10_100.0);
    }
}
