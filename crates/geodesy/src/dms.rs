//! Degrees-minutes-seconds notation, as used in FCC ULS location records.
//!
//! ULS location (`LO`) records carry tower positions as separate degree,
//! minute, second and hemisphere-indicator fields (e.g. `41-45-45.0 N`).
//! This module converts between that notation and decimal degrees.

use core::fmt;

/// Which hemisphere a DMS value lies in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hemisphere {
    /// North latitude (positive).
    North,
    /// South latitude (negative).
    South,
    /// East longitude (positive).
    East,
    /// West longitude (negative).
    West,
}

impl Hemisphere {
    /// Sign applied to the magnitude: +1 for N/E, -1 for S/W.
    pub fn sign(self) -> f64 {
        match self {
            Hemisphere::North | Hemisphere::East => 1.0,
            Hemisphere::South | Hemisphere::West => -1.0,
        }
    }

    /// Single-letter indicator used in ULS exports.
    pub fn letter(self) -> char {
        match self {
            Hemisphere::North => 'N',
            Hemisphere::South => 'S',
            Hemisphere::East => 'E',
            Hemisphere::West => 'W',
        }
    }

    /// Parse a single-letter indicator.
    pub fn from_letter(c: char) -> Option<Hemisphere> {
        match c.to_ascii_uppercase() {
            'N' => Some(Hemisphere::North),
            'S' => Some(Hemisphere::South),
            'E' => Some(Hemisphere::East),
            'W' => Some(Hemisphere::West),
            _ => None,
        }
    }
}

/// Error parsing a DMS string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmsParseError(pub String);

impl fmt::Display for DmsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed DMS string {:?}", self.0)
    }
}

impl std::error::Error for DmsParseError {}

/// A degrees-minutes-seconds angle with hemisphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dms {
    /// Whole degrees (non-negative; sign carried by `hemisphere`).
    pub degrees: u32,
    /// Minutes, `0..60`.
    pub minutes: u32,
    /// Seconds with fraction, `0.0..60.0`.
    pub seconds: f64,
    /// Hemisphere indicator.
    pub hemisphere: Hemisphere,
}

impl Dms {
    /// Convert to signed decimal degrees.
    pub fn to_decimal_degrees(&self) -> f64 {
        self.hemisphere.sign()
            * (self.degrees as f64 + self.minutes as f64 / 60.0 + self.seconds / 3600.0)
    }

    /// Convert a signed decimal-degree latitude to DMS.
    pub fn from_decimal_latitude(deg: f64) -> Dms {
        Self::from_decimal(deg, Hemisphere::North, Hemisphere::South)
    }

    /// Convert a signed decimal-degree longitude to DMS.
    pub fn from_decimal_longitude(deg: f64) -> Dms {
        Self::from_decimal(deg, Hemisphere::East, Hemisphere::West)
    }

    fn from_decimal(deg: f64, pos: Hemisphere, neg: Hemisphere) -> Dms {
        let hemisphere = if deg >= 0.0 { pos } else { neg };
        let mag = deg.abs();
        let mut degrees = mag.trunc() as u32;
        let rem_min = (mag - degrees as f64) * 60.0;
        let mut minutes = rem_min.trunc() as u32;
        let mut seconds = (rem_min - minutes as f64) * 60.0;
        // Guard against 59.999999… rolling over on re-normalization.
        if seconds >= 60.0 - 1e-9 {
            seconds = 0.0;
            minutes += 1;
        }
        if minutes >= 60 {
            minutes = 0;
            degrees += 1;
        }
        Dms {
            degrees,
            minutes,
            seconds,
            hemisphere,
        }
    }

    /// Format in the ULS style, e.g. `41-45-45.0 N`.
    ///
    /// Seconds are kept to one decimal; a value that rounds up to 60.0
    /// carries into the minutes (and degrees) so the text stays valid DMS.
    pub fn to_uls(&self) -> String {
        let mut degrees = self.degrees;
        let mut minutes = self.minutes;
        let mut tenths = (self.seconds * 10.0).round() as u32;
        if tenths >= 600 {
            tenths -= 600;
            minutes += 1;
        }
        if minutes >= 60 {
            minutes -= 60;
            degrees += 1;
        }
        format!(
            "{}-{:02}-{:02}.{} {}",
            degrees,
            minutes,
            tenths / 10,
            tenths % 10,
            self.hemisphere.letter()
        )
    }

    /// Parse the ULS style `D-M-S.s H` (also tolerates missing fractional
    /// seconds and extra spaces).
    pub fn parse_uls(s: &str) -> Result<Dms, DmsParseError> {
        let err = || DmsParseError(s.to_string());
        let s_trim = s.trim();
        // Split off the final character respecting UTF-8 boundaries (the
        // input may be arbitrary text from a hostile file).
        let (last_idx, last_char) = s_trim.char_indices().last().ok_or_else(err)?;
        let body = &s_trim[..last_idx];
        let hemisphere = Hemisphere::from_letter(last_char).ok_or_else(err)?;
        let mut parts = body.trim().split('-');
        let (d, m, sec) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(d), Some(m), Some(sec), None) => (d, m, sec),
            _ => return Err(err()),
        };
        let degrees: u32 = d.trim().parse().map_err(|_| err())?;
        let minutes: u32 = m.trim().parse().map_err(|_| err())?;
        let seconds: f64 = sec.trim().parse().map_err(|_| err())?;
        if minutes >= 60 || !(0.0..60.0).contains(&seconds) {
            return Err(err());
        }
        let max_deg = match hemisphere {
            Hemisphere::North | Hemisphere::South => 90,
            Hemisphere::East | Hemisphere::West => 180,
        };
        if degrees > max_deg || (degrees == max_deg && (minutes > 0 || seconds > 0.0)) {
            return Err(err());
        }
        Ok(Dms {
            degrees,
            minutes,
            seconds,
            hemisphere,
        })
    }
}

impl fmt::Display for Dms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}°{:02}′{:05.2}″{}",
            self.degrees,
            self.minutes,
            self.seconds,
            self.hemisphere.letter()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_conversion_north() {
        let d = Dms {
            degrees: 41,
            minutes: 45,
            seconds: 45.0,
            hemisphere: Hemisphere::North,
        };
        assert!((d.to_decimal_degrees() - 41.7625).abs() < 1e-9);
    }

    #[test]
    fn decimal_conversion_west_is_negative() {
        let d = Dms {
            degrees: 88,
            minutes: 14,
            seconds: 39.48,
            hemisphere: Hemisphere::West,
        };
        assert!((d.to_decimal_degrees() + 88.244_3).abs() < 1e-4);
    }

    #[test]
    fn from_decimal_round_trip() {
        for &v in &[41.7625f64, -88.2443, 0.0, 40.793, -74.0576, 89.99999] {
            let dms = Dms::from_decimal_latitude(v.clamp(-90.0, 90.0));
            assert!((dms.to_decimal_degrees() - v).abs() < 1e-9, "value {v}");
        }
    }

    #[test]
    fn rollover_guard() {
        // 40.9999999999 degrees should not produce seconds == 60.
        let dms = Dms::from_decimal_latitude(40.999_999_999_9);
        assert!(dms.seconds < 60.0);
        assert!(dms.minutes < 60);
        assert!((dms.to_decimal_degrees() - 41.0).abs() < 1e-6);
    }

    #[test]
    fn parse_uls_typical() {
        let d = Dms::parse_uls("41-45-45.0 N").unwrap();
        assert_eq!(d.degrees, 41);
        assert_eq!(d.minutes, 45);
        assert!((d.seconds - 45.0).abs() < 1e-12);
        assert_eq!(d.hemisphere, Hemisphere::North);
    }

    #[test]
    fn parse_uls_tolerates_spacing_and_case() {
        let d = Dms::parse_uls("  88-14-39.48 w ").unwrap();
        assert_eq!(d.hemisphere, Hemisphere::West);
        assert!((d.to_decimal_degrees() + 88.2443).abs() < 1e-4);
    }

    #[test]
    fn parse_uls_rejects_garbage() {
        for s in [
            "",
            "41-45 N",
            "41-45-45.0-7 N",
            "41-61-00.0 N",
            "41-45-60.0 N",
            "95-00-00.0 N",
            "181-0-0.0 E",
            "41-45-45.0 X",
        ] {
            assert!(Dms::parse_uls(s).is_err(), "{s:?}");
        }
    }

    #[test]
    fn uls_format_round_trip() {
        let d = Dms {
            degrees: 40,
            minutes: 47,
            seconds: 34.8,
            hemisphere: Hemisphere::North,
        };
        let s = d.to_uls();
        let back = Dms::parse_uls(&s).unwrap();
        assert!((back.to_decimal_degrees() - d.to_decimal_degrees()).abs() < 1e-9);
    }

    #[test]
    fn boundary_degrees_allowed() {
        assert!(Dms::parse_uls("90-00-00.0 N").is_ok());
        assert!(Dms::parse_uls("180-00-00.0 W").is_ok());
        assert!(Dms::parse_uls("90-00-00.1 N").is_err());
    }
}
