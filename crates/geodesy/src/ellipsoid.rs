//! Reference ellipsoids.

/// A rotational reference ellipsoid described by its semi-major axis and
/// flattening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipsoid {
    /// Semi-major (equatorial) axis in meters.
    pub a: f64,
    /// Flattening `f = (a - b) / a`.
    pub f: f64,
}

impl Ellipsoid {
    /// Semi-minor (polar) axis in meters.
    pub fn b(&self) -> f64 {
        self.a * (1.0 - self.f)
    }

    /// First eccentricity squared, `e² = f(2 - f)`.
    pub fn e2(&self) -> f64 {
        self.f * (2.0 - self.f)
    }

    /// Second eccentricity squared, `e'² = e² / (1 - e²)`.
    pub fn ep2(&self) -> f64 {
        let e2 = self.e2();
        e2 / (1.0 - e2)
    }

    /// Mean radius `(2a + b) / 3` (IUGG definition).
    pub fn mean_radius(&self) -> f64 {
        (2.0 * self.a + self.b()) / 3.0
    }
}

/// The WGS-84 ellipsoid, the datum of FCC ULS tower coordinates.
pub const WGS84: Ellipsoid = Ellipsoid {
    a: 6_378_137.0,
    f: 1.0 / 298.257_223_563,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wgs84_derived_constants() {
        assert!((WGS84.b() - 6_356_752.314_245).abs() < 1e-3);
        assert!((WGS84.e2() - 0.006_694_379_990_14).abs() < 1e-12);
        assert!((WGS84.mean_radius() - 6_371_008.771).abs() < 0.1);
    }

    #[test]
    fn sphere_has_zero_eccentricity() {
        let s = Ellipsoid {
            a: 6_371_000.0,
            f: 0.0,
        };
        assert_eq!(s.b(), s.a);
        assert_eq!(s.e2(), 0.0);
        assert_eq!(s.ep2(), 0.0);
    }
}
