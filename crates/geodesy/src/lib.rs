//! # hft-geodesy
//!
//! Geodesy substrate for reconstructing and analyzing line-of-sight
//! microwave networks: WGS-84 coordinates, geodesic distance (Vincenty
//! inverse/direct with a robust spherical fallback), ECEF conversions for
//! satellite geometry, DMS parsing/formatting as used in FCC filings, a
//! trig-free chord-distance radius kernel for spatial query engines
//! ([`RadiusTest`]), and the speed-of-light latency model of the IMC'20
//! paper (microwave at essentially `c` in air, fiber at roughly `2c/3`).
//!
//! ```
//! use hft_geodesy::{LatLon, Medium, latency_seconds};
//!
//! let cme = LatLon::new(41.7625, -88.2443).unwrap();   // CME, Aurora IL
//! let ny4 = LatLon::new(40.7930, -74.0576).unwrap();   // Equinix NY4, Secaucus NJ
//! let d = cme.geodesic_distance_m(&ny4);
//! assert!(d > 1_100_000.0 && d < 1_250_000.0);
//! let t_air = latency_seconds(d, Medium::Air);
//! let t_fiber = latency_seconds(d, Medium::Fiber);
//! assert!(t_fiber > 1.4 * t_air); // fiber ~50% slower than radio
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chord;
mod coord;
mod dms;
mod ecef;
mod ellipsoid;
mod haversine;
mod latency;
mod path;
mod vincenty;

pub use chord::{RadiusClass, RadiusTest, UnitEcef, SPHERE_ELLIPSOID_MAX_REL_ERROR};
pub use coord::{CoordError, LatLon, SnapGrid, SnappedCoord};
pub use dms::{Dms, DmsParseError, Hemisphere};
pub use ecef::Ecef;
pub use ellipsoid::{Ellipsoid, WGS84};
pub use haversine::{
    gc_destination, gc_distance_m, gc_initial_bearing_deg, gc_interpolate, EARTH_RADIUS_M,
};
pub use latency::{
    latency_seconds, one_way_ms, Medium, SpeedOfLight, C_VACUUM_M_PER_S, FIBER_VELOCITY_FACTOR,
};
pub use path::{GeoPath, PathSummary};
pub use vincenty::{vincenty_direct, vincenty_inverse, GeodesicSolution, VincentyError};
