//! Geographic coordinates and the snapping grid used to identify towers.

use crate::haversine;
use crate::vincenty;
use core::fmt;

/// Error constructing a [`LatLon`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoordError {
    /// Latitude outside `[-90, 90]` or not finite.
    BadLatitude(f64),
    /// Longitude outside `[-180, 180]` or not finite.
    BadLongitude(f64),
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoordError::BadLatitude(v) => write!(f, "latitude {v} outside [-90, 90]"),
            CoordError::BadLongitude(v) => write!(f, "longitude {v} outside [-180, 180]"),
        }
    }
}

impl std::error::Error for CoordError {}

/// A WGS-84 geographic coordinate in decimal degrees.
///
/// Invariants: both components are finite, latitude in `[-90, 90]`,
/// longitude in `[-180, 180]`. FCC filings place towers in the continental
/// US, but the type supports the full globe for the satellite experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLon {
    lat_deg: f64,
    lon_deg: f64,
}

impl LatLon {
    /// Construct a coordinate, validating ranges.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<LatLon, CoordError> {
        if !lat_deg.is_finite() || !(-90.0..=90.0).contains(&lat_deg) {
            return Err(CoordError::BadLatitude(lat_deg));
        }
        if !lon_deg.is_finite() || !(-180.0..=180.0).contains(&lon_deg) {
            return Err(CoordError::BadLongitude(lon_deg));
        }
        Ok(LatLon { lat_deg, lon_deg })
    }

    /// Construct, normalizing longitude into `[-180, 180)` first (latitude
    /// must still be valid).
    pub fn new_normalized(lat_deg: f64, lon_deg: f64) -> Result<LatLon, CoordError> {
        if !lon_deg.is_finite() {
            return Err(CoordError::BadLongitude(lon_deg));
        }
        let mut lon = (lon_deg + 180.0).rem_euclid(360.0) - 180.0;
        if lon == 180.0 {
            lon = -180.0;
        }
        LatLon::new(lat_deg, lon)
    }

    /// Latitude in decimal degrees.
    pub fn lat_deg(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in decimal degrees.
    pub fn lon_deg(&self) -> f64 {
        self.lon_deg
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat_deg.to_radians()
    }

    /// Longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon_deg.to_radians()
    }

    /// WGS-84 geodesic distance to `other` in meters.
    ///
    /// Uses Vincenty's inverse formula; in the (astronomically rare for our
    /// corridor) non-convergent near-antipodal case it falls back to the
    /// spherical great-circle distance, which is within 0.56% of truth.
    pub fn geodesic_distance_m(&self, other: &LatLon) -> f64 {
        match vincenty::vincenty_inverse(self, other) {
            Ok(sol) => sol.distance_m,
            Err(_) => haversine::gc_distance_m(self, other),
        }
    }

    /// Initial geodesic azimuth towards `other`, degrees clockwise from
    /// north in `[0, 360)`.
    pub fn initial_bearing_deg(&self, other: &LatLon) -> f64 {
        match vincenty::vincenty_inverse(self, other) {
            Ok(sol) => sol.initial_azimuth_deg,
            Err(_) => haversine::gc_initial_bearing_deg(self, other),
        }
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat_deg, self.lon_deg)
    }
}

/// A quantization grid for treating nearby coordinates as the same tower.
///
/// FCC licenses reference endpoints by coordinates. Two licenses that share
/// a physical tower often quote coordinates differing in the last second of
/// arc (surveying, re-filing, rounding). Reconstruction therefore snaps
/// coordinates to a grid and treats equal cells as the same node — the
/// "stitching" step of §2.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapGrid {
    /// Cell size in micro-degrees (1e-6 degree units).
    cell_microdeg: u32,
}

/// A coordinate snapped to a [`SnapGrid`]; hashable and comparable, suitable
/// as a node identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnappedCoord {
    /// Snapped latitude cell index.
    pub lat_cell: i64,
    /// Snapped longitude cell index.
    pub lon_cell: i64,
}

impl SnapGrid {
    /// Grid with cells of `cell_deg` degrees (must be ≥ 1e-6 and ≤ 1).
    ///
    /// The default used throughout the workspace is one second of arc
    /// (~31 m of latitude), see [`SnapGrid::arc_second`].
    pub fn new(cell_deg: f64) -> Option<SnapGrid> {
        if !(1e-6..=1.0).contains(&cell_deg) || !cell_deg.is_finite() {
            return None;
        }
        Some(SnapGrid {
            cell_microdeg: (cell_deg * 1e6).round() as u32,
        })
    }

    /// One-arc-second grid (1/3600 degree ≈ 278 µdeg), the tolerance within
    /// which two filings are considered to reference the same tower.
    pub fn arc_second() -> SnapGrid {
        SnapGrid { cell_microdeg: 278 }
    }

    /// Cell size in degrees.
    pub fn cell_deg(&self) -> f64 {
        self.cell_microdeg as f64 * 1e-6
    }

    /// Snap a coordinate to its grid cell.
    pub fn snap(&self, p: &LatLon) -> SnappedCoord {
        let c = self.cell_microdeg as f64;
        SnappedCoord {
            lat_cell: (p.lat_deg() * 1e6 / c).round() as i64,
            lon_cell: (p.lon_deg() * 1e6 / c).round() as i64,
        }
    }

    /// The representative (cell-center) coordinate of a snapped cell.
    pub fn unsnap(&self, s: &SnappedCoord) -> LatLon {
        let c = self.cell_microdeg as f64 * 1e-6;
        let lat = (s.lat_cell as f64 * c).clamp(-90.0, 90.0);
        LatLon::new_normalized(lat, s.lon_cell as f64 * c)
            .expect("snapped cell always yields valid coordinate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_components() {
        assert!(LatLon::new(91.0, 0.0).is_err());
        assert!(LatLon::new(-90.5, 0.0).is_err());
        assert!(LatLon::new(0.0, 180.5).is_err());
        assert!(LatLon::new(f64::NAN, 0.0).is_err());
        assert!(LatLon::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn accepts_boundaries() {
        assert!(LatLon::new(90.0, 180.0).is_ok());
        assert!(LatLon::new(-90.0, -180.0).is_ok());
    }

    #[test]
    fn normalization_wraps_longitude() {
        let p = LatLon::new_normalized(10.0, 190.0).unwrap();
        assert!((p.lon_deg() - (-170.0)).abs() < 1e-9);
        let q = LatLon::new_normalized(10.0, -540.0).unwrap();
        assert!((q.lon_deg() - 180.0).abs() < 1e-9 || (q.lon_deg() + 180.0).abs() < 1e-9);
    }

    #[test]
    fn corridor_distance_plausible() {
        // CME Aurora to Equinix NY4 Secaucus: the paper quotes 1,186 km.
        let cme = LatLon::new(41.7625, -88.2443).unwrap();
        let ny4 = LatLon::new(40.7930, -74.0576).unwrap();
        let d = cme.geodesic_distance_m(&ny4) / 1000.0;
        assert!((1150.0..1220.0).contains(&d), "got {d} km");
    }

    #[test]
    fn bearing_eastward_corridor() {
        let cme = LatLon::new(41.7625, -88.2443).unwrap();
        let ny4 = LatLon::new(40.7930, -74.0576).unwrap();
        let b = cme.initial_bearing_deg(&ny4);
        // Roughly east, tilted slightly south.
        assert!((80.0..110.0).contains(&b), "got {b} deg");
    }

    #[test]
    fn snap_identifies_near_coincident_towers() {
        let g = SnapGrid::arc_second();
        let a = LatLon::new(41.000_000, -80.000_000).unwrap();
        // ~0.1 arc-second away: same physical tower, re-surveyed.
        let b = LatLon::new(41.000_027, -80.000_027).unwrap();
        assert_eq!(g.snap(&a), g.snap(&b));
    }

    #[test]
    fn snap_separates_distinct_towers() {
        let g = SnapGrid::arc_second();
        let a = LatLon::new(41.0, -80.0).unwrap();
        let b = LatLon::new(41.01, -80.0).unwrap(); // ~1.1 km away
        assert_ne!(g.snap(&a), g.snap(&b));
    }

    #[test]
    fn unsnap_is_within_cell() {
        let g = SnapGrid::arc_second();
        let p = LatLon::new(40.123456, -74.654321).unwrap();
        let back = g.unsnap(&g.snap(&p));
        assert!((back.lat_deg() - p.lat_deg()).abs() <= g.cell_deg());
        assert!((back.lon_deg() - p.lon_deg()).abs() <= g.cell_deg());
    }

    #[test]
    fn grid_bounds() {
        assert!(SnapGrid::new(0.5).is_some());
        assert!(SnapGrid::new(2.0).is_none());
        assert!(SnapGrid::new(0.0).is_none());
        assert!(SnapGrid::new(f64::NAN).is_none());
    }
}
