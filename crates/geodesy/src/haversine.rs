//! Spherical great-circle helpers.
//!
//! Used as (a) a robust fallback where Vincenty does not converge, (b) the
//! fast path for synthetic generation where sub-meter accuracy is not
//! needed, and (c) spherical interpolation along the corridor geodesic.

use crate::coord::LatLon;

/// Mean Earth radius in meters (IUGG), used by all spherical formulas here.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle (spherical) distance in meters via the haversine formula,
/// which is numerically stable at small separations.
pub fn gc_distance_m(p1: &LatLon, p2: &LatLon) -> f64 {
    let dphi = (p2.lat_rad() - p1.lat_rad()) / 2.0;
    let dlam = (p2.lon_rad() - p1.lon_rad()) / 2.0;
    let h = dphi.sin().powi(2) + p1.lat_rad().cos() * p2.lat_rad().cos() * dlam.sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Initial great-circle bearing from `p1` to `p2`, degrees clockwise from
/// north, `[0, 360)`.
pub fn gc_initial_bearing_deg(p1: &LatLon, p2: &LatLon) -> f64 {
    let dlam = p2.lon_rad() - p1.lon_rad();
    let y = dlam.sin() * p2.lat_rad().cos();
    let x = p1.lat_rad().cos() * p2.lat_rad().sin()
        - p1.lat_rad().sin() * p2.lat_rad().cos() * dlam.cos();
    y.atan2(x).to_degrees().rem_euclid(360.0)
}

/// Destination point after traveling `distance_m` from `start` along the
/// great circle with initial bearing `bearing_deg`.
pub fn gc_destination(start: &LatLon, bearing_deg: f64, distance_m: f64) -> LatLon {
    let delta = distance_m / EARTH_RADIUS_M;
    let theta = bearing_deg.to_radians();
    let phi1 = start.lat_rad();
    let lam1 = start.lon_rad();
    let phi2 = (phi1.sin() * delta.cos() + phi1.cos() * delta.sin() * theta.cos()).asin();
    let lam2 = lam1
        + (theta.sin() * delta.sin() * phi1.cos()).atan2(delta.cos() - phi1.sin() * phi2.sin());
    LatLon::new_normalized(phi2.to_degrees(), lam2.to_degrees())
        .expect("great-circle destination is a valid coordinate")
}

/// Spherical linear interpolation along the great circle from `p1` to `p2`.
///
/// `t = 0` yields `p1`, `t = 1` yields `p2`; values outside `[0, 1]`
/// extrapolate along the same great circle. For coincident endpoints the
/// start point is returned.
pub fn gc_interpolate(p1: &LatLon, p2: &LatLon, t: f64) -> LatLon {
    let d = gc_distance_m(p1, p2);
    if d == 0.0 {
        return *p1;
    }
    // Walk the great circle rather than slerping unit vectors so that
    // extrapolation (t outside [0,1]) stays on the circle too.
    gc_destination(p1, gc_initial_bearing_deg(p1, p2), d * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn agrees_with_vincenty_on_corridor_within_half_percent() {
        let cme = p(41.7625, -88.2443);
        let ny4 = p(40.7930, -74.0576);
        let sph = gc_distance_m(&cme, &ny4);
        let ell = crate::vincenty::vincenty_inverse(&cme, &ny4)
            .unwrap()
            .distance_m;
        assert!((sph - ell).abs() / ell < 0.005, "sph={sph} ell={ell}");
    }

    #[test]
    fn zero_for_coincident() {
        let a = p(12.3, 45.6);
        assert_eq!(gc_distance_m(&a, &a), 0.0);
    }

    #[test]
    fn quarter_circumference_pole() {
        let d = gc_distance_m(&p(0.0, 0.0), &p(90.0, 0.0));
        let expected = EARTH_RADIUS_M * core::f64::consts::FRAC_PI_2;
        assert!((d - expected).abs() < 1.0);
    }

    #[test]
    fn bearing_cardinal_directions() {
        assert!((gc_initial_bearing_deg(&p(0.0, 0.0), &p(10.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((gc_initial_bearing_deg(&p(0.0, 0.0), &p(0.0, 10.0)) - 90.0).abs() < 1e-9);
        assert!((gc_initial_bearing_deg(&p(10.0, 0.0), &p(0.0, 0.0)) - 180.0).abs() < 1e-9);
        assert!((gc_initial_bearing_deg(&p(0.0, 10.0), &p(0.0, 0.0)) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let start = p(41.0, -80.0);
        let dest = gc_destination(&start, 95.0, 50_000.0);
        let back = gc_distance_m(&start, &dest);
        assert!((back - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn interpolation_endpoints_and_midpoint() {
        let a = p(41.7625, -88.2443);
        let b = p(40.7930, -74.0576);
        let at0 = gc_interpolate(&a, &b, 0.0);
        let at1 = gc_interpolate(&a, &b, 1.0);
        assert!(gc_distance_m(&a, &at0) < 1.0);
        assert!(gc_distance_m(&b, &at1) < 1.0);
        let mid = gc_interpolate(&a, &b, 0.5);
        let d_am = gc_distance_m(&a, &mid);
        let d_mb = gc_distance_m(&mid, &b);
        assert!(
            (d_am - d_mb).abs() < 5.0,
            "midpoint not equidistant: {d_am} vs {d_mb}"
        );
    }

    #[test]
    fn interpolation_is_monotone_along_path() {
        let a = p(41.7625, -88.2443);
        let b = p(40.7930, -74.0576);
        let mut prev = 0.0;
        for i in 1..=10 {
            let t = i as f64 / 10.0;
            let q = gc_interpolate(&a, &b, t);
            let d = gc_distance_m(&a, &q);
            assert!(d > prev, "distance from start must grow with t");
            prev = d;
        }
    }

    #[test]
    fn extrapolation_continues_past_end() {
        let a = p(41.0, -88.0);
        let b = p(41.0, -87.0);
        let beyond = gc_interpolate(&a, &b, 1.5);
        assert!(gc_distance_m(&a, &beyond) > gc_distance_m(&a, &b));
    }
}
