//! Vincenty's inverse and direct geodesic solutions on the WGS-84 ellipsoid.
//!
//! The inverse problem (distance and azimuths between two points) drives
//! every link-length and latency computation in the workspace; the direct
//! problem (destination given start, azimuth, distance) drives synthetic
//! tower placement along the corridor geodesic.

use crate::coord::LatLon;
use crate::ellipsoid::WGS84;
use core::fmt;

/// Convergence tolerance on the longitude-difference iterate, radians.
/// 1e-12 rad ≈ 6 µm on the Earth's surface.
const TOLERANCE: f64 = 1e-12;
/// Iteration cap; Vincenty converges in <10 iterations except for
/// near-antipodal pairs, which we report as an error instead.
const MAX_ITERS: usize = 200;

/// Failure of the Vincenty iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VincentyError {
    /// The inverse iteration failed to converge (points are near-antipodal).
    DidNotConverge,
}

impl fmt::Display for VincentyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VincentyError::DidNotConverge => {
                f.write_str("Vincenty inverse did not converge (near-antipodal points)")
            }
        }
    }
}

impl std::error::Error for VincentyError {}

/// Solution of the inverse geodesic problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeodesicSolution {
    /// Geodesic (surface) distance in meters.
    pub distance_m: f64,
    /// Azimuth at the start point, degrees clockwise from north, `[0, 360)`.
    pub initial_azimuth_deg: f64,
    /// Azimuth at the end point, degrees clockwise from north, `[0, 360)`.
    pub final_azimuth_deg: f64,
}

fn norm_deg(d: f64) -> f64 {
    d.rem_euclid(360.0)
}

/// Vincenty's inverse formula: geodesic distance and azimuths between two
/// points on WGS-84. Accurate to well under a millimeter when it converges.
pub fn vincenty_inverse(p1: &LatLon, p2: &LatLon) -> Result<GeodesicSolution, VincentyError> {
    let b = WGS84.b();
    let f = WGS84.f;

    let phi1 = p1.lat_rad();
    let phi2 = p2.lat_rad();
    let l = p2.lon_rad() - p1.lon_rad();

    // Reduced latitudes.
    let u1 = ((1.0 - f) * phi1.tan()).atan();
    let u2 = ((1.0 - f) * phi2.tan()).atan();
    let (sin_u1, cos_u1) = u1.sin_cos();
    let (sin_u2, cos_u2) = u2.sin_cos();

    if (phi1 - phi2).abs() < 1e-15 && l.abs() < 1e-15 {
        return Ok(GeodesicSolution {
            distance_m: 0.0,
            initial_azimuth_deg: 0.0,
            final_azimuth_deg: 0.0,
        });
    }

    let mut lambda = l;
    let mut iter = 0;
    let (mut sin_sigma, mut cos_sigma, mut sigma, mut cos_sq_alpha, mut cos_2sigma_m);
    loop {
        let (sin_lambda, cos_lambda) = lambda.sin_cos();
        sin_sigma = ((cos_u2 * sin_lambda).powi(2)
            + (cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lambda).powi(2))
        .sqrt();
        if sin_sigma == 0.0 {
            // Coincident points.
            return Ok(GeodesicSolution {
                distance_m: 0.0,
                initial_azimuth_deg: 0.0,
                final_azimuth_deg: 0.0,
            });
        }
        cos_sigma = sin_u1 * sin_u2 + cos_u1 * cos_u2 * cos_lambda;
        sigma = sin_sigma.atan2(cos_sigma);
        let sin_alpha = cos_u1 * cos_u2 * sin_lambda / sin_sigma;
        cos_sq_alpha = 1.0 - sin_alpha * sin_alpha;
        cos_2sigma_m = if cos_sq_alpha.abs() < 1e-15 {
            0.0 // equatorial line
        } else {
            cos_sigma - 2.0 * sin_u1 * sin_u2 / cos_sq_alpha
        };
        let c = f / 16.0 * cos_sq_alpha * (4.0 + f * (4.0 - 3.0 * cos_sq_alpha));
        let lambda_prev = lambda;
        lambda = l
            + (1.0 - c)
                * f
                * sin_alpha
                * (sigma
                    + c * sin_sigma
                        * (cos_2sigma_m
                            + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m * cos_2sigma_m)));
        iter += 1;
        if (lambda - lambda_prev).abs() < TOLERANCE {
            break;
        }
        if iter >= MAX_ITERS {
            return Err(VincentyError::DidNotConverge);
        }
    }

    let u_sq = cos_sq_alpha * WGS84.ep2();
    let big_a = 1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)));
    let big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)));
    let delta_sigma = big_b
        * sin_sigma
        * (cos_2sigma_m
            + big_b / 4.0
                * (cos_sigma * (-1.0 + 2.0 * cos_2sigma_m * cos_2sigma_m)
                    - big_b / 6.0
                        * cos_2sigma_m
                        * (-3.0 + 4.0 * sin_sigma * sin_sigma)
                        * (-3.0 + 4.0 * cos_2sigma_m * cos_2sigma_m)));
    let s = b * big_a * (sigma - delta_sigma);

    let (sin_lambda, cos_lambda) = lambda.sin_cos();
    let alpha1 = (cos_u2 * sin_lambda).atan2(cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lambda);
    let alpha2 = (cos_u1 * sin_lambda).atan2(-sin_u1 * cos_u2 + cos_u1 * sin_u2 * cos_lambda);

    Ok(GeodesicSolution {
        distance_m: s,
        initial_azimuth_deg: norm_deg(alpha1.to_degrees()),
        final_azimuth_deg: norm_deg(alpha2.to_degrees()),
    })
}

/// Vincenty's direct formula: destination point and final azimuth, given a
/// start point, initial azimuth (degrees clockwise from north) and geodesic
/// distance in meters.
pub fn vincenty_direct(start: &LatLon, azimuth_deg: f64, distance_m: f64) -> (LatLon, f64) {
    let b = WGS84.b();
    let f = WGS84.f;

    let alpha1 = azimuth_deg.to_radians();
    let (sin_alpha1, cos_alpha1) = alpha1.sin_cos();

    let u1 = ((1.0 - f) * start.lat_rad().tan()).atan();
    let (sin_u1, cos_u1) = u1.sin_cos();
    let sigma1 = sin_u1.atan2(cos_u1 * cos_alpha1); // angular distance on sphere from equator
    let sin_alpha = cos_u1 * sin_alpha1;
    let cos_sq_alpha = 1.0 - sin_alpha * sin_alpha;
    let u_sq = cos_sq_alpha * WGS84.ep2();
    let big_a = 1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)));
    let big_b = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)));

    let mut sigma = distance_m / (b * big_a);
    let mut cos_2sigma_m;
    loop {
        cos_2sigma_m = (2.0 * sigma1 + sigma).cos();
        let (sin_sigma, cos_sigma) = sigma.sin_cos();
        let delta_sigma = big_b
            * sin_sigma
            * (cos_2sigma_m
                + big_b / 4.0
                    * (cos_sigma * (-1.0 + 2.0 * cos_2sigma_m * cos_2sigma_m)
                        - big_b / 6.0
                            * cos_2sigma_m
                            * (-3.0 + 4.0 * sin_sigma * sin_sigma)
                            * (-3.0 + 4.0 * cos_2sigma_m * cos_2sigma_m)));
        let sigma_prev = sigma;
        sigma = distance_m / (b * big_a) + delta_sigma;
        if (sigma - sigma_prev).abs() < TOLERANCE {
            break;
        }
    }

    let (sin_sigma, cos_sigma) = sigma.sin_cos();
    let tmp = sin_u1 * sin_sigma - cos_u1 * cos_sigma * cos_alpha1;
    let phi2 = (sin_u1 * cos_sigma + cos_u1 * sin_sigma * cos_alpha1)
        .atan2((1.0 - f) * (sin_alpha * sin_alpha + tmp * tmp).sqrt());
    let lambda =
        (sin_sigma * sin_alpha1).atan2(cos_u1 * cos_sigma - sin_u1 * sin_sigma * cos_alpha1);
    let c = f / 16.0 * cos_sq_alpha * (4.0 + f * (4.0 - 3.0 * cos_sq_alpha));
    let l = lambda
        - (1.0 - c)
            * f
            * sin_alpha
            * (sigma
                + c * sin_sigma
                    * (cos_2sigma_m + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m * cos_2sigma_m)));
    let lon2 = start.lon_rad() + l;
    let alpha2 = sin_alpha.atan2(-tmp);

    let dest = LatLon::new_normalized(phi2.to_degrees(), lon2.to_degrees())
        .expect("direct solution yields valid coordinate");
    (dest, norm_deg(alpha2.to_degrees()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn flinders_peak_to_buninyong() {
        // Vincenty's classic test line (Australia Geodetic survey),
        // expressed in decimal degrees. Known WGS-84-ish answer ~54.9 km.
        let flinders = p(-37.951_033_42, 144.424_867_89);
        let buninyong = p(-37.652_821_14, 143.926_495_53);
        let sol = vincenty_inverse(&flinders, &buninyong).unwrap();
        assert!(
            (sol.distance_m - 54_972.3).abs() < 2.0,
            "got {}",
            sol.distance_m
        );
        assert!(
            (sol.initial_azimuth_deg - 306.868).abs() < 0.01,
            "got {}",
            sol.initial_azimuth_deg
        );
    }

    #[test]
    fn equatorial_degree_length() {
        // One degree of longitude along the equator: a * pi/180.
        let sol = vincenty_inverse(&p(0.0, 0.0), &p(0.0, 1.0)).unwrap();
        let expected = WGS84.a * core::f64::consts::PI / 180.0;
        assert!((sol.distance_m - expected).abs() < 1e-3);
        assert!((sol.initial_azimuth_deg - 90.0).abs() < 1e-9);
    }

    #[test]
    fn meridian_arc_to_pole() {
        // Equator to pole along a meridian: the quarter-meridian, 10 001.966 km.
        let sol = vincenty_inverse(&p(0.0, 0.0), &p(90.0, 0.0)).unwrap();
        assert!(
            (sol.distance_m - 10_001_965.73).abs() < 1.0,
            "got {}",
            sol.distance_m
        );
    }

    #[test]
    fn coincident_points_zero() {
        let sol = vincenty_inverse(&p(41.5, -74.2), &p(41.5, -74.2)).unwrap();
        assert_eq!(sol.distance_m, 0.0);
    }

    #[test]
    fn antipodal_reports_nonconvergence() {
        // Near-perfectly antipodal equatorial points defeat the classic
        // Vincenty iteration.
        let r = vincenty_inverse(&p(0.0, 0.0), &p(0.5, 179.7));
        assert_eq!(r, Err(VincentyError::DidNotConverge));
    }

    #[test]
    fn symmetry_of_distance() {
        let a = p(41.7625, -88.2443);
        let b = p(40.7930, -74.0576);
        let ab = vincenty_inverse(&a, &b).unwrap().distance_m;
        let ba = vincenty_inverse(&b, &a).unwrap().distance_m;
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn direct_inverts_inverse() {
        let a = p(41.7625, -88.2443);
        let b = p(40.7930, -74.0576);
        let sol = vincenty_inverse(&a, &b).unwrap();
        let (dest, _) = vincenty_direct(&a, sol.initial_azimuth_deg, sol.distance_m);
        assert!((dest.lat_deg() - b.lat_deg()).abs() < 1e-8);
        assert!((dest.lon_deg() - b.lon_deg()).abs() < 1e-8);
    }

    #[test]
    fn direct_zero_distance_is_identity() {
        let a = p(40.0, -75.0);
        let (dest, _) = vincenty_direct(&a, 123.0, 0.0);
        assert!((dest.lat_deg() - 40.0).abs() < 1e-12);
        assert!((dest.lon_deg() + 75.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_on_corridor() {
        let cme = p(41.7625, -88.2443);
        let mid = p(41.2, -81.0);
        let ny4 = p(40.7930, -74.0576);
        let direct = vincenty_inverse(&cme, &ny4).unwrap().distance_m;
        let via = vincenty_inverse(&cme, &mid).unwrap().distance_m
            + vincenty_inverse(&mid, &ny4).unwrap().distance_m;
        assert!(via >= direct);
    }
}
