//! Earth-centered Earth-fixed (ECEF) Cartesian coordinates.
//!
//! Slant ranges between ground stations and satellites — needed for the
//! Fig. 5 LEO comparison — are straight-line distances in three dimensions,
//! not surface geodesics, so they are computed in ECEF.

use crate::coord::LatLon;
use crate::ellipsoid::WGS84;

/// An Earth-centered Earth-fixed Cartesian position in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ecef {
    /// X axis: through the equator at the prime meridian.
    pub x: f64,
    /// Y axis: through the equator at 90°E.
    pub y: f64,
    /// Z axis: through the north pole.
    pub z: f64,
}

impl Ecef {
    /// Construct from raw components (meters).
    pub fn new(x: f64, y: f64, z: f64) -> Ecef {
        Ecef { x, y, z }
    }

    /// Convert a geodetic coordinate plus altitude above the WGS-84
    /// ellipsoid (meters) to ECEF.
    pub fn from_geodetic(p: &LatLon, alt_m: f64) -> Ecef {
        let (sin_lat, cos_lat) = p.lat_rad().sin_cos();
        let (sin_lon, cos_lon) = p.lon_rad().sin_cos();
        let e2 = WGS84.e2();
        // Prime-vertical radius of curvature.
        let n = WGS84.a / (1.0 - e2 * sin_lat * sin_lat).sqrt();
        Ecef {
            x: (n + alt_m) * cos_lat * cos_lon,
            y: (n + alt_m) * cos_lat * sin_lon,
            z: (n * (1.0 - e2) + alt_m) * sin_lat,
        }
    }

    /// Straight-line (chord / slant) distance to another ECEF point, meters.
    pub fn distance_m(&self, other: &Ecef) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Euclidean norm (distance from Earth's center), meters.
    pub fn norm_m(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Convert back to geodetic latitude/longitude and ellipsoidal altitude
    /// using Bowring's iteration (converges in a few rounds to sub-mm).
    pub fn to_geodetic(&self) -> (LatLon, f64) {
        let e2 = WGS84.e2();
        let p = (self.x * self.x + self.y * self.y).sqrt();
        let lon = self.y.atan2(self.x);
        if p < 1e-9 {
            // On the polar axis.
            let lat = if self.z >= 0.0 { 90.0 } else { -90.0 };
            let alt = self.z.abs() - WGS84.b();
            return (
                LatLon::new_normalized(lat, lon.to_degrees()).expect("pole is valid"),
                alt,
            );
        }
        let mut lat = (self.z / (p * (1.0 - e2))).atan();
        let mut alt = 0.0;
        for _ in 0..10 {
            let sin_lat = lat.sin();
            let n = WGS84.a / (1.0 - e2 * sin_lat * sin_lat).sqrt();
            alt = p / lat.cos() - n;
            let new_lat = (self.z / (p * (1.0 - e2 * n / (n + alt)))).atan();
            if (new_lat - lat).abs() < 1e-14 {
                lat = new_lat;
                break;
            }
            lat = new_lat;
        }
        (
            LatLon::new_normalized(lat.to_degrees(), lon.to_degrees())
                .expect("iteration yields valid coordinate"),
            alt,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn equator_prime_meridian() {
        let e = Ecef::from_geodetic(&p(0.0, 0.0), 0.0);
        assert!((e.x - WGS84.a).abs() < 1e-6);
        assert!(e.y.abs() < 1e-6);
        assert!(e.z.abs() < 1e-6);
    }

    #[test]
    fn north_pole() {
        let e = Ecef::from_geodetic(&p(90.0, 0.0), 0.0);
        assert!(e.x.abs() < 1e-6);
        assert!(e.y.abs() < 1e-6);
        assert!((e.z - WGS84.b()).abs() < 1e-6);
    }

    #[test]
    fn altitude_adds_radially() {
        let ground = Ecef::from_geodetic(&p(45.0, 7.0), 0.0);
        let up = Ecef::from_geodetic(&p(45.0, 7.0), 550_000.0);
        let d = ground.distance_m(&up);
        assert!((d - 550_000.0).abs() < 1.0);
    }

    #[test]
    fn geodetic_round_trip() {
        for &(lat, lon, alt) in &[
            (41.7625, -88.2443, 200.0),
            (40.7930, -74.0576, 3.0),
            (-33.9, 151.2, 50.0),
            (78.2, 15.6, 0.0),
            (0.0, 0.0, 550_000.0),
        ] {
            let e = Ecef::from_geodetic(&p(lat, lon), alt);
            let (back, alt_back) = e.to_geodetic();
            assert!((back.lat_deg() - lat).abs() < 1e-9, "lat {lat}");
            assert!((back.lon_deg() - lon).abs() < 1e-9, "lon {lon}");
            assert!((alt_back - alt).abs() < 1e-3, "alt {alt}");
        }
    }

    #[test]
    fn polar_axis_round_trip() {
        let e = Ecef::new(0.0, 0.0, WGS84.b() + 100.0);
        let (back, alt) = e.to_geodetic();
        assert!((back.lat_deg() - 90.0).abs() < 1e-9);
        assert!((alt - 100.0).abs() < 1e-6);
    }

    #[test]
    fn chord_shorter_than_arc() {
        let a = p(41.7625, -88.2443);
        let b = p(40.7930, -74.0576);
        let chord = Ecef::from_geodetic(&a, 0.0).distance_m(&Ecef::from_geodetic(&b, 0.0));
        let arc = a.geodesic_distance_m(&b);
        assert!(chord < arc);
        // ...but not by much over ~1000 km.
        assert!(chord > 0.995 * arc);
    }
}
