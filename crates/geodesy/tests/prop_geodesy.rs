//! Property-based tests for geodesic invariants.

use hft_geodesy::{
    gc_destination, gc_distance_m, gc_interpolate, vincenty_direct, vincenty_inverse, Dms, Ecef,
    LatLon, Medium, RadiusClass, RadiusTest, SnapGrid, SpeedOfLight, UnitEcef,
    SPHERE_ELLIPSOID_MAX_REL_ERROR,
};
use proptest::prelude::*;

/// Mid-latitude coordinates (avoids poles/antipodes where Vincenty is
/// legitimately allowed to bail to the spherical fallback).
fn arb_midlat() -> impl Strategy<Value = LatLon> {
    (-60.0f64..60.0, -179.0f64..179.0).prop_map(|(lat, lon)| LatLon::new(lat, lon).unwrap())
}

/// Coordinates confined to the continental-US corridor box.
fn arb_corridor() -> impl Strategy<Value = LatLon> {
    (38.0f64..44.0, -90.0f64..-72.0).prop_map(|(lat, lon)| LatLon::new(lat, lon).unwrap())
}

proptest! {
    #[test]
    fn distance_symmetric(a in arb_midlat(), b in arb_midlat()) {
        let ab = a.geodesic_distance_m(&b);
        let ba = b.geodesic_distance_m(&a);
        prop_assert!((ab - ba).abs() < 1e-6 * (1.0 + ab));
    }

    #[test]
    fn distance_nonnegative_and_zero_iff_same(a in arb_midlat()) {
        prop_assert_eq!(a.geodesic_distance_m(&a), 0.0);
    }

    #[test]
    fn triangle_inequality(a in arb_corridor(), b in arb_corridor(), c in arb_corridor()) {
        let ab = a.geodesic_distance_m(&b);
        let bc = b.geodesic_distance_m(&c);
        let ac = a.geodesic_distance_m(&c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn vincenty_close_to_spherical(a in arb_corridor(), b in arb_corridor()) {
        let ell = match vincenty_inverse(&a, &b) {
            Ok(s) => s.distance_m,
            Err(_) => return Ok(()),
        };
        let sph = gc_distance_m(&a, &b);
        // Ellipsoidal vs spherical differ < 0.6% everywhere.
        prop_assert!((ell - sph).abs() <= 0.006 * ell.max(1.0), "ell={ell} sph={sph}");
    }

    #[test]
    fn direct_then_inverse_round_trip(a in arb_corridor(), az in 0.0f64..360.0, d in 1.0f64..500_000.0) {
        let (dest, _) = vincenty_direct(&a, az, d);
        let sol = vincenty_inverse(&a, &dest);
        if let Ok(sol) = sol {
            prop_assert!((sol.distance_m - d).abs() < 1e-3, "d={d} got {}", sol.distance_m);
            let mut daz = (sol.initial_azimuth_deg - az).abs();
            if daz > 180.0 { daz = 360.0 - daz; }
            prop_assert!(daz < 1e-6, "az={az} got {}", sol.initial_azimuth_deg);
        }
    }

    #[test]
    fn interpolation_partitions_distance(a in arb_corridor(), b in arb_corridor(), t in 0.05f64..0.95) {
        prop_assume!(gc_distance_m(&a, &b) > 1000.0);
        let m = gc_interpolate(&a, &b, t);
        let d = gc_distance_m(&a, &b);
        let am = gc_distance_m(&a, &m);
        let mb = gc_distance_m(&m, &b);
        prop_assert!((am + mb - d).abs() < 1.0, "am+mb={} d={d}", am + mb);
        prop_assert!((am - t * d).abs() < 1.0);
    }

    #[test]
    fn ecef_round_trip(p in arb_midlat(), alt in 0.0f64..1_000_000.0) {
        let e = Ecef::from_geodetic(&p, alt);
        let (back, alt_back) = e.to_geodetic();
        prop_assert!((back.lat_deg() - p.lat_deg()).abs() < 1e-8);
        prop_assert!((back.lon_deg() - p.lon_deg()).abs() < 1e-8);
        prop_assert!((alt_back - alt).abs() < 1e-2);
    }

    #[test]
    fn chord_never_exceeds_arc(a in arb_midlat(), b in arb_midlat()) {
        let chord = Ecef::from_geodetic(&a, 0.0).distance_m(&Ecef::from_geodetic(&b, 0.0));
        let arc = a.geodesic_distance_m(&b);
        prop_assert!(chord <= arc + 1e-6);
    }

    #[test]
    fn dms_round_trip_latitude(v in -90.0f64..90.0) {
        let dms = Dms::from_decimal_latitude(v);
        prop_assert!((dms.to_decimal_degrees() - v).abs() < 1e-9);
        let parsed = Dms::parse_uls(&dms.to_uls()).unwrap();
        // ULS text keeps one decimal of arc-seconds → ~3 m resolution.
        prop_assert!((parsed.to_decimal_degrees() - v).abs() < 0.1 / 3600.0 + 1e-9);
    }

    #[test]
    fn snap_within_half_cell(p in arb_corridor()) {
        let g = SnapGrid::arc_second();
        let s = g.snap(&p);
        let c = g.unsnap(&s);
        prop_assert!((c.lat_deg() - p.lat_deg()).abs() <= g.cell_deg() / 2.0 + 1e-12);
        prop_assert!((c.lon_deg() - p.lon_deg()).abs() <= g.cell_deg() / 2.0 + 1e-12);
    }

    #[test]
    fn snap_idempotent(p in arb_corridor()) {
        let g = SnapGrid::arc_second();
        let s = g.snap(&p);
        prop_assert_eq!(g.snap(&g.unsnap(&s)), s);
    }

    #[test]
    fn guard_band_bounds_divergence(a in arb_midlat(), b in arb_midlat()) {
        // The chord kernel's guard band is sized by this bound: spherical
        // and exact geodesic distance never diverge by more than
        // SPHERE_ELLIPSOID_MAX_REL_ERROR of the distance.
        let ell = a.geodesic_distance_m(&b);
        let sph = gc_distance_m(&a, &b);
        prop_assert!(
            (sph - ell).abs() <= SPHERE_ELLIPSOID_MAX_REL_ERROR * ell.max(1.0),
            "ell={ell} sph={sph}"
        );
    }

    #[test]
    fn radius_test_agrees_with_scalar_predicate(
        center in arb_corridor(),
        p in arb_corridor(),
        r_km in 0.0f64..2_000.0,
    ) {
        let radius_m = r_km * 1000.0;
        let test = RadiusTest::new(&center, radius_m);
        let exact = center.geodesic_distance_m(&p) <= radius_m;
        prop_assert_eq!(test.contains(&p), exact);
    }

    #[test]
    fn radius_test_exact_within_meters_of_the_circle(
        center in arb_corridor(),
        bearing in 0.0f64..360.0,
        r in 100.0f64..100_000.0,
        jitter_m in -3.0f64..3.0,
    ) {
        // Points deliberately within a few meters of the circle — the
        // regime where sphere-vs-ellipsoid disagreement would bite.
        let q = gc_destination(&center, bearing, r + jitter_m);
        let test = RadiusTest::new(&center, r);
        let exact = center.geodesic_distance_m(&q) <= r;
        prop_assert_eq!(test.contains(&q), exact);
    }

    #[test]
    fn fast_path_verdicts_never_contradict_the_geodesic(
        center in arb_corridor(),
        p in arb_corridor(),
        r_km in 0.0f64..2_000.0,
    ) {
        // Inside/Outside skip the Vincenty confirmation entirely, so they
        // must be unconditionally safe; only Boundary may defer.
        let radius_m = r_km * 1000.0;
        let test = RadiusTest::new(&center, radius_m);
        let d = center.geodesic_distance_m(&p);
        match test.classify_vec(&UnitEcef::from_latlon(&p)) {
            RadiusClass::Inside => prop_assert!(d <= radius_m, "d={d} r={radius_m}"),
            RadiusClass::Outside => prop_assert!(d > radius_m, "d={d} r={radius_m}"),
            RadiusClass::Boundary => {}
        }
    }

    #[test]
    fn latency_monotone_in_distance(d1 in 0.0f64..2.0e6, d2 in 0.0f64..2.0e6) {
        prop_assume!(d1 < d2);
        for m in [Medium::Air, Medium::Fiber, Medium::Vacuum] {
            prop_assert!(hft_geodesy::latency_seconds(d1, m) < hft_geodesy::latency_seconds(d2, m));
        }
    }

    #[test]
    fn budget_equals_manual_sum(air in 0.0f64..2e6, fiber in 0.0f64..1e5) {
        let b = SpeedOfLight::new().with(air, Medium::Air).with(fiber, Medium::Fiber);
        let manual = hft_geodesy::latency_seconds(air, Medium::Air)
            + hft_geodesy::latency_seconds(fiber, Medium::Fiber);
        prop_assert!((b.total_seconds() - manual).abs() < 1e-15);
    }
}
