//! Corridor sweeps: many races reduced to stretch factors, ready for
//! the stretch-CDF figure.

use crate::engine::RaceEngine;
use hft_core::corridor::{CME, NJ_DATA_CENTERS};
use hft_core::session::AnalysisSession;
use hft_leo::paper_segments;
use hft_time::Date;

/// One swept pair, reduced to stretch factors vs the vacuum bound.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchEntry {
    /// Segment name, `FROM-TO`.
    pub pair: String,
    /// Geodesic distance, km.
    pub geodesic_km: f64,
    /// Microwave stretch (corpus route on corridor pairs, idealized on
    /// feasible free pairs; `None` when unroutable/infeasible).
    pub mw_stretch: Option<f64>,
    /// Fiber stretch.
    pub fiber_stretch: f64,
    /// LEO stretch (`None` when the constellation cannot route it).
    pub leo_stretch: Option<f64>,
}

impl RaceEngine {
    /// Sweep the standard segment set: the three Chicago–NJ corridor
    /// pairs with `licensee`'s corpus-reconstructed microwave leg, plus
    /// the paper's §6 transoceanic segments (Frankfurt–DC, Tokyo–NY)
    /// where only fiber and LEO can race. Deterministic order.
    pub fn stretch_sweep(
        &self,
        session: &AnalysisSession<'_>,
        licensee: &str,
        date: Date,
        constellation: &str,
    ) -> Result<Vec<StretchEntry>, String> {
        let mut entries = Vec::with_capacity(NJ_DATA_CENTERS.len() + 2);
        for dc in &NJ_DATA_CENTERS {
            // One MC sample: the sweep reads only clear-sky stretch, but
            // the engine contract wants samples >= 1.
            let race = self.race(session, licensee, date, &CME, dc, constellation, 1, 0)?;
            entries.push(StretchEntry {
                pair: format!("{}-{}", race.from, race.to),
                geodesic_km: race.geodesic_km,
                mw_stretch: race.mw_stretch(),
                fiber_stretch: race.fiber_stretch(),
                leo_stretch: race.leo_stretch(),
            });
        }
        for seg in paper_segments().iter().skip(1) {
            let race =
                self.race_positions(&seg.from, &seg.to, constellation, seg.terrestrial_feasible)?;
            entries.push(StretchEntry {
                pair: format!("{}-{}", race.from, race.to),
                geodesic_km: race.geodesic_km,
                mw_stretch: race.mw_stretch(),
                fiber_stretch: race.fiber_stretch(),
                leo_stretch: race.leo_stretch(),
            });
        }
        Ok(entries)
    }
}

/// Reduce stretch samples to ascending CDF steps `(value, F(value))`,
/// the input shape of `hft-viz`'s `Series::cdf_steps`. Non-finite
/// samples are dropped; an empty input yields no steps.
pub fn stretch_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = finite.len();
    finite
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_corridor_and_transoceanic_segments() {
        let session = AnalysisSession::over([]);
        let engine = RaceEngine::new();
        let date = Date::new(2020, 4, 1).expect("valid");
        let entries = engine
            .stretch_sweep(&session, "Nobody", date, "starlink")
            .expect("sweep");
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].pair, "CME-NY4");
        assert!(entries.iter().any(|e| e.pair.contains("Tokyo")));
        for e in &entries {
            assert!(e.fiber_stretch > 1.0, "{}: {}", e.pair, e.fiber_stretch);
            // Empty corpus: no corpus microwave; transoceanic: infeasible.
            if let Some(mw) = e.mw_stretch {
                assert!(mw >= 1.0);
            }
        }
    }

    #[test]
    fn cdf_steps_are_monotone_and_normalized() {
        let steps = stretch_cdf(&[1.5, 1.2, f64::INFINITY, 1.8]);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].0, 1.2);
        assert!((steps.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
        for w in steps.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        assert!(stretch_cdf(&[]).is_empty());
    }
}
