//! # hft-race
//!
//! A latency-race scenario engine: for a pair of sites, race every
//! substrate the repo can model against the vacuum geodesic limit and
//! report who wins, by how much, and how often weather takes the
//! winner out.
//!
//! The racers:
//!
//! * **terrestrial microwave** — the corpus-reconstructed route from the
//!   analysis session (real towers, real licensed links), so the answer
//!   is corpus-dependent and generation-pinned by whoever owns the
//!   engine;
//! * **fiber** — refraction-index-weighted great-circle at `2c/3` with
//!   the blended route stretch from [`hft_leo::fiber_latency_ms`];
//! * **LEO** — shortest up/ISL/down path through a Walker constellation
//!   ([`hft_leo::Constellation`]);
//! * **vacuum** — the geodesic at `c`, the bound nothing beats.
//!
//! The weather leg reuses the §5 Monte Carlo
//! ([`hft_core::weather::conditional_latency_on`]), deterministic per
//! seed, and its outcomes are cached per `(licensee, epoch, pair,
//! samples, seed)` so repeated races over a stable corpus epoch are
//! cache hits — observable as `race.mc_cache{outcome=hit|miss}` in the
//! global registry, alongside the `race.compute_ns` histogram.
//!
//! ```
//! use hft_race::RaceEngine;
//! use hft_core::corridor::{CME, EQUINIX_NY4};
//! use hft_core::session::AnalysisSession;
//!
//! let session = AnalysisSession::over([]);
//! let engine = RaceEngine::new();
//! let date = hft_time::Date::new(2020, 4, 1).unwrap();
//! let race = engine
//!     .race(&session, "Nobody", date, &CME, &EQUINIX_NY4, "starlink", 50, 7)
//!     .unwrap();
//! // Empty corpus: no microwave leg, but the race still has a winner.
//! assert!(race.microwave_ms.is_none());
//! assert!(race.fiber_ms > race.c_bound_ms);
//! assert_ne!(race.winner, "microwave");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod sweep;

pub use engine::{RaceEngine, RaceOutcome};
pub use sweep::{stretch_cdf, StretchEntry};
