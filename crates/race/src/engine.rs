//! The race engine: per-substrate legs, result caches, instrumentation.

use hft_core::corridor::DataCenter;
use hft_core::session::AnalysisSession;
use hft_core::weather::{conditional_latency_on, WeatherOutcome};
use hft_geodesy::{latency_seconds, LatLon, Medium};
use hft_leo::{fiber_latency_ms, mw_latency_ms, Constellation, GroundStation};
use hft_obs::{Counter, Histogram};
use hft_radio::WeatherSampler;
use hft_time::Date;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The outcome of one cross-substrate race between two sites.
///
/// All latencies are one-way milliseconds; every stretch factor is
/// relative to [`RaceOutcome::c_bound_ms`], the vacuum geodesic limit.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceOutcome {
    /// Origin site code.
    pub from: String,
    /// Destination site code.
    pub to: String,
    /// Constellation raced on the LEO leg.
    pub constellation: String,
    /// Geodesic distance, km.
    pub geodesic_km: f64,
    /// The vacuum geodesic limit, ms — the bound nothing beats.
    pub c_bound_ms: f64,
    /// Microwave leg, ms. Corpus-reconstructed in
    /// [`RaceEngine::race`] (`None` when the licensee has no route);
    /// idealized in [`RaceEngine::race_positions`] (`None` when
    /// terrestrial microwave is infeasible, e.g. transoceanic).
    pub microwave_ms: Option<f64>,
    /// Fiber leg: great-circle × route stretch at `2c/3`, ms.
    pub fiber_ms: f64,
    /// LEO leg: shortest up/ISL/down path, ms (`None` if unroutable).
    pub leo_ms: Option<f64>,
    /// Inter-satellite hops on the LEO leg.
    pub leo_isl_hops: Option<u64>,
    /// The winning substrate: `"microwave"`, `"LEO"` or `"fiber"`.
    pub winner: String,
    /// Weather-adjusted availability windows for the microwave leg
    /// (§5 Monte Carlo), absent when there is no corpus route.
    pub weather: Option<WeatherOutcome>,
}

impl RaceOutcome {
    /// Microwave stretch factor vs the vacuum bound.
    pub fn mw_stretch(&self) -> Option<f64> {
        self.microwave_ms.map(|ms| ms / self.c_bound_ms)
    }

    /// Fiber stretch factor vs the vacuum bound.
    pub fn fiber_stretch(&self) -> f64 {
        self.fiber_ms / self.c_bound_ms
    }

    /// LEO stretch factor vs the vacuum bound.
    pub fn leo_stretch(&self) -> Option<f64> {
        self.leo_ms.map(|ms| ms / self.c_bound_ms)
    }
}

/// Pick the winner among the available legs (ties go to the faster
/// medium in the [`hft_leo::Comparison`] order: microwave, LEO, fiber).
fn winner(microwave_ms: Option<f64>, leo_ms: Option<f64>, fiber_ms: f64) -> &'static str {
    let mw = microwave_ms.unwrap_or(f64::INFINITY);
    let leo = leo_ms.unwrap_or(f64::INFINITY);
    if mw <= leo && mw <= fiber_ms {
        "microwave"
    } else if leo <= fiber_ms {
        "LEO"
    } else {
        "fiber"
    }
}

/// A cached LEO leg: pure constellation geometry, corpus-independent.
#[derive(Debug, Clone, Copy)]
struct LeoLeg {
    latency_ms: f64,
    isl_hops: u64,
}

/// Monte-Carlo cache key: the (pair, epoch) identity of a weather
/// answer. The epoch pins the corpus snapshot, so a stable corpus
/// always hits.
type McKey = (String, usize, &'static str, &'static str, usize, u64);

/// LEO cache key: endpoint positions (bit-exact) plus constellation.
type LeoKey = ([u64; 2], [u64; 2], String);

/// The latency-race scenario engine.
///
/// Owns the lazily-built constellations and two result caches — the §5
/// weather Monte Carlo keyed per `(licensee, epoch, pair, samples,
/// seed)` and the LEO legs keyed per `(pair, constellation)`. An
/// engine is expected to be owned by one corpus generation (the serve
/// layer builds one per `Service`), which is what makes the epoch in
/// the MC key a complete identity.
pub struct RaceEngine {
    constellations: Mutex<HashMap<String, Arc<Constellation>>>,
    mc_cache: Mutex<HashMap<McKey, Option<WeatherOutcome>>>,
    leo_cache: Mutex<HashMap<LeoKey, Option<LeoLeg>>>,
    compute_ns: Arc<Histogram>,
    mc_hits: Arc<Counter>,
    mc_misses: Arc<Counter>,
}

impl Default for RaceEngine {
    fn default() -> Self {
        RaceEngine::new()
    }
}

impl RaceEngine {
    /// A fresh engine with empty caches, registered against the global
    /// telemetry registry.
    pub fn new() -> RaceEngine {
        let r = hft_obs::global();
        RaceEngine {
            constellations: Mutex::new(HashMap::new()),
            mc_cache: Mutex::new(HashMap::new()),
            leo_cache: Mutex::new(HashMap::new()),
            compute_ns: r.histogram("race.compute_ns"),
            mc_hits: r.counter_with("race.mc_cache", "outcome", "hit"),
            mc_misses: r.counter_with("race.mc_cache", "outcome", "miss"),
        }
    }

    /// Weather Monte-Carlo cache hits and misses since this engine was
    /// created (process-wide counters, monotone).
    pub fn mc_cache_counts(&self) -> (u64, u64) {
        (self.mc_hits.value(), self.mc_misses.value())
    }

    /// Resolve a constellation by name (`"starlink"`), building and
    /// caching it on first use.
    fn constellation(&self, name: &str) -> Result<Arc<Constellation>, String> {
        if let Some(c) = self
            .constellations
            .lock()
            .expect("constellations")
            .get(name)
        {
            return Ok(Arc::clone(c));
        }
        let built = match name {
            "starlink" => Constellation::starlink_like(),
            other => return Err(format!("unknown constellation {other:?}; try \"starlink\"")),
        };
        let built = Arc::new(built);
        self.constellations
            .lock()
            .expect("constellations")
            .entry(name.to_string())
            .or_insert_with(|| Arc::clone(&built));
        Ok(built)
    }

    /// The LEO leg between two positions, cached per (pair,
    /// constellation) — pure geometry, identical on every shard.
    fn leo_leg(
        &self,
        a: &GroundStation,
        b: &GroundStation,
        constellation: &str,
    ) -> Result<Option<LeoLeg>, String> {
        let key: LeoKey = (
            [
                a.position.lat_deg().to_bits(),
                a.position.lon_deg().to_bits(),
            ],
            [
                b.position.lat_deg().to_bits(),
                b.position.lon_deg().to_bits(),
            ],
            constellation.to_string(),
        );
        if let Some(hit) = self.leo_cache.lock().expect("leo cache").get(&key) {
            return Ok(*hit);
        }
        let shell = self.constellation(constellation)?;
        let leg = shell.route(a, b, 0.0).map(|r| LeoLeg {
            latency_ms: r.latency_ms,
            isl_hops: r.isl_hops as u64,
        });
        self.leo_cache
            .lock()
            .expect("leo cache")
            .entry(key)
            .or_insert(leg);
        Ok(leg)
    }

    /// The §5 weather Monte Carlo for the corpus microwave route,
    /// cached per `(licensee, epoch, pair, samples, seed)`.
    /// Deterministic in `seed` (explicit ChaCha8 threading downstream).
    #[allow(clippy::too_many_arguments)]
    fn weather_windows(
        &self,
        session: &AnalysisSession<'_>,
        licensee: &str,
        date: Date,
        from: &DataCenter,
        to: &DataCenter,
        samples: usize,
        seed: u64,
    ) -> Option<WeatherOutcome> {
        let epoch = session.epoch(licensee, date);
        let key: McKey = (
            licensee.to_string(),
            epoch,
            from.code,
            to.code,
            samples,
            seed,
        );
        if let Some(hit) = self.mc_cache.lock().expect("mc cache").get(&key) {
            self.mc_hits.add(1);
            // Zero-duration marker so a traced waterfall distinguishes a
            // cache-served leg from a full Monte-Carlo run.
            let _span = hft_obs::child_span("race.mc_cache_hit");
            return *hit;
        }
        self.mc_misses.add(1);
        let _span = hft_obs::span("race.weather_mc");
        let network = session.network(licensee, date);
        let rg = session.routing_graph(licensee, date, from, to);
        let outcome = conditional_latency_on(
            &rg,
            &network,
            from,
            to,
            &WeatherSampler::stormy_season(),
            samples,
            seed,
        );
        self.mc_cache
            .lock()
            .expect("mc cache")
            .entry(key)
            .or_insert(outcome);
        outcome
    }

    /// Race every substrate between two corridor data centers, with the
    /// microwave leg reconstructed from `licensee`'s corpus as of
    /// `date` and weather windows from the §5 Monte Carlo.
    #[allow(clippy::too_many_arguments)]
    pub fn race(
        &self,
        session: &AnalysisSession<'_>,
        licensee: &str,
        date: Date,
        from: &DataCenter,
        to: &DataCenter,
        constellation: &str,
        samples: usize,
        seed: u64,
    ) -> Result<RaceOutcome, String> {
        if samples == 0 {
            return Err("samples must be >= 1".to_string());
        }
        let _span = hft_obs::span("race.compute");
        let start = Instant::now();
        let a = from.position();
        let b = to.position();
        let geodesic_m = a.geodesic_distance_m(&b);
        let microwave_ms = session.latency_ms(licensee, date, from, to);
        let weather = if microwave_ms.is_some() {
            self.weather_windows(session, licensee, date, from, to, samples, seed)
        } else {
            None
        };
        let outcome = self.assemble(
            from.code,
            a,
            to.code,
            b,
            geodesic_m,
            microwave_ms,
            weather,
            constellation,
        )?;
        self.compute_ns.record(start.elapsed().as_nanos() as u64);
        Ok(outcome)
    }

    /// Race arbitrary positions with an *idealized* microwave leg
    /// (geodesic × mature-network stretch) when `terrestrial_feasible`,
    /// and no weather model — the free-pair path used by corridor
    /// sweeps over segments the corpus does not cover.
    pub fn race_positions(
        &self,
        from: &GroundStation,
        to: &GroundStation,
        constellation: &str,
        terrestrial_feasible: bool,
    ) -> Result<RaceOutcome, String> {
        let _span = hft_obs::span("race.compute");
        let start = Instant::now();
        let geodesic_m = from.position.geodesic_distance_m(&to.position);
        let microwave_ms = terrestrial_feasible.then(|| mw_latency_ms(geodesic_m));
        let outcome = self.assemble(
            &from.name,
            from.position,
            &to.name,
            to.position,
            geodesic_m,
            microwave_ms,
            None,
            constellation,
        )?;
        self.compute_ns.record(start.elapsed().as_nanos() as u64);
        Ok(outcome)
    }

    /// Shared tail of both race paths: the corpus-independent legs plus
    /// the verdict.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        from: &str,
        a: LatLon,
        to: &str,
        b: LatLon,
        geodesic_m: f64,
        microwave_ms: Option<f64>,
        weather: Option<WeatherOutcome>,
        constellation: &str,
    ) -> Result<RaceOutcome, String> {
        let gs_a = GroundStation {
            name: from.to_string(),
            position: a,
        };
        let gs_b = GroundStation {
            name: to.to_string(),
            position: b,
        };
        let leo = self.leo_leg(&gs_a, &gs_b, constellation)?;
        let fiber_ms = fiber_latency_ms(geodesic_m);
        let leo_ms = leo.map(|l| l.latency_ms);
        Ok(RaceOutcome {
            from: from.to_string(),
            to: to.to_string(),
            constellation: constellation.to_string(),
            geodesic_km: geodesic_m / 1000.0,
            c_bound_ms: latency_seconds(geodesic_m, Medium::Vacuum) * 1e3,
            microwave_ms,
            fiber_ms,
            leo_ms,
            leo_isl_hops: leo.map(|l| l.isl_hops),
            winner: winner(microwave_ms, leo_ms, fiber_ms).to_string(),
            weather,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_core::corridor::{CME, EQUINIX_NY4};

    fn date() -> Date {
        Date::new(2020, 4, 1).expect("valid")
    }

    #[test]
    fn empty_corpus_race_has_no_microwave_leg() {
        let session = AnalysisSession::over([]);
        let engine = RaceEngine::new();
        let race = engine
            .race(
                &session,
                "Nobody",
                date(),
                &CME,
                &EQUINIX_NY4,
                "starlink",
                40,
                7,
            )
            .expect("race");
        assert_eq!(race.from, "CME");
        assert_eq!(race.to, "NY4");
        assert!(race.microwave_ms.is_none());
        assert!(race.weather.is_none());
        assert!((race.geodesic_km - 1186.0).abs() < 0.1);
        // Every substrate is bounded below by the vacuum geodesic.
        assert!(race.fiber_ms > race.c_bound_ms);
        if let Some(leo) = race.leo_ms {
            assert!(leo > race.c_bound_ms);
            assert!(race.leo_isl_hops.is_some());
        }
        assert!(race.fiber_stretch() > 1.0);
    }

    #[test]
    fn unknown_constellation_is_an_error() {
        let session = AnalysisSession::over([]);
        let engine = RaceEngine::new();
        let err = engine
            .race(&session, "x", date(), &CME, &EQUINIX_NY4, "iridium", 10, 1)
            .expect_err("unknown constellation");
        assert!(err.contains("iridium"), "{err}");
    }

    #[test]
    fn zero_samples_is_an_error() {
        let session = AnalysisSession::over([]);
        let engine = RaceEngine::new();
        assert!(engine
            .race(&session, "x", date(), &CME, &EQUINIX_NY4, "starlink", 0, 1)
            .is_err());
    }

    #[test]
    fn race_is_deterministic_to_the_bit() {
        let session = AnalysisSession::over([]);
        let engine = RaceEngine::new();
        let a = engine
            .race(&session, "x", date(), &CME, &EQUINIX_NY4, "starlink", 25, 3)
            .expect("race");
        // Second call hits the LEO cache; a fresh engine recomputes.
        let b = engine
            .race(&session, "x", date(), &CME, &EQUINIX_NY4, "starlink", 25, 3)
            .expect("race");
        let c = RaceEngine::new()
            .race(&session, "x", date(), &CME, &EQUINIX_NY4, "starlink", 25, 3)
            .expect("race");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.c_bound_ms.to_bits(), c.c_bound_ms.to_bits());
        assert_eq!(a.fiber_ms.to_bits(), c.fiber_ms.to_bits());
    }

    #[test]
    fn transoceanic_free_race_prefers_leo_over_fiber() {
        let engine = RaceEngine::new();
        let fra = GroundStation::new("Frankfurt", 50.1109, 8.6821).expect("valid");
        let dc = GroundStation::new("WashingtonDC", 38.9072, -77.0369).expect("valid");
        let race = engine
            .race_positions(&fra, &dc, "starlink", false)
            .expect("race");
        assert!(race.microwave_ms.is_none());
        let leo = race.leo_ms.expect("routable");
        assert!(leo < race.fiber_ms, "LEO {leo} vs fiber {}", race.fiber_ms);
        assert_eq!(race.winner, "LEO");
    }
}
