//! Suurballe-style edge-disjoint shortest path pairs.
//!
//! APA measures *single-link* survivability; a stronger notion of
//! redundancy — what §6 recommends future low-latency networks engineer
//! for — is a pair of fully edge-disjoint paths, so that any one failure
//! leaves a complete standby route. This module finds the edge-disjoint
//! pair with minimum total cost via two successive shortest-path passes
//! over a residual graph with reduced costs (Suurballe/Bhandari).

use crate::graph::{EdgeId, Graph, NodeId};
use crate::shortest::dijkstra;
use std::collections::{HashMap, HashSet};

/// An edge-disjoint pair of paths.
#[derive(Debug, Clone, PartialEq)]
pub struct DisjointPair {
    /// First path (the cheaper of the two), as edge ids in path order.
    pub first: Vec<EdgeId>,
    /// Second path, as edge ids in path order.
    pub second: Vec<EdgeId>,
    /// Cost of the first path.
    pub first_cost: f64,
    /// Cost of the second path.
    pub second_cost: f64,
}

impl DisjointPair {
    /// Combined cost of both paths.
    pub fn total_cost(&self) -> f64 {
        self.first_cost + self.second_cost
    }
}

/// Find a minimum-total-cost pair of edge-disjoint paths from `source`
/// to `target`, or `None` when the graph does not contain two
/// edge-disjoint routes.
///
/// Costs must be non-negative. Runs two Dijkstra passes (the second on
/// reduced costs over a residual graph), then cancels arcs traversed in
/// opposite directions — Bhandari's formulation of Suurballe for
/// undirected graphs.
pub fn disjoint_shortest_pair<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    mut cost: impl FnMut(EdgeId, &E) -> f64,
) -> Option<DisjointPair> {
    if source == target {
        return None;
    }
    let costs: Vec<f64> = graph.edge_ids().map(|e| cost(e, graph.edge(e))).collect();

    // Pass 1: plain shortest path.
    let sp1 = dijkstra(graph, source, |e, _| costs[e.index()], |_| true);
    let (nodes1, edges1) = sp1.path(target)?;
    let potentials = sp1.distances();

    // Direction each P1 edge was traversed: map edge -> (from, to).
    let mut p1_dir: HashMap<EdgeId, (NodeId, NodeId)> = HashMap::new();
    for (i, &e) in edges1.iter().enumerate() {
        p1_dir.insert(e, (nodes1[i], nodes1[i + 1]));
    }

    // Pass 2: shortest path in the residual graph under reduced costs
    // w'(u,v) = w + φ(u) − φ(v) ≥ 0. Arcs along P1's direction are
    // removed; the reverse arcs get reduced cost 0 (they "refund" P1).
    //
    // We run Dijkstra over a *directed view* encoded through the filter
    // and cost functions of the undirected engine: that is not directly
    // expressible, so build an explicit directed expansion instead.
    // Each undirected edge e=(u,v) becomes arcs (u→v) and (v→u); the
    // expansion is a fresh Graph where each arc is an edge used only in
    // its forward direction by construction of the search below.
    //
    // Rather than a general directed engine, we exploit that reduced
    // costs are non-negative and implement the second pass as a
    // hand-rolled Dijkstra over arcs.
    #[derive(Clone, Copy)]
    struct Arc {
        to: usize,
        edge: EdgeId,
        reduced: f64,
    }
    let n = graph.node_count();
    let mut arcs: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let phi = |i: usize| potentials[i];
    for (e, u, v, _) in graph.edges() {
        let w = costs[e.index()];
        let (ui, vi) = (u.index(), v.index());
        if !phi(ui).is_finite() || !phi(vi).is_finite() {
            continue; // unreachable corner of the graph
        }
        match p1_dir.get(&e) {
            Some(&(from, _to)) => {
                // Only the reverse arc survives. Its *original* cost is −w
                // (walking it refunds P1's spend), so its reduced cost is
                // −w + φ(to) − φ(from) = 0 exactly: P1 edges are shortest-
                // path tree edges, where φ(to) = φ(from) + w.
                let (fi, ti) = (from.index(), graph.opposite(e, from).index());
                let reduced = (phi(ti) - phi(fi) - w).max(0.0);
                debug_assert!(reduced <= 1e-6 * (1.0 + w), "P1 reverse arc must be ~free");
                arcs[ti].push(Arc {
                    to: fi,
                    edge: e,
                    reduced,
                });
            }
            None => {
                let r_uv = (w + phi(ui) - phi(vi)).max(0.0);
                let r_vu = (w + phi(vi) - phi(ui)).max(0.0);
                arcs[ui].push(Arc {
                    to: vi,
                    edge: e,
                    reduced: r_uv,
                });
                arcs[vi].push(Arc {
                    to: ui,
                    edge: e,
                    reduced: r_vu,
                });
            }
        }
    }

    // Dijkstra over the arc expansion.
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(usize, EdgeId)>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push((std::cmp::Reverse(ordered(0.0)), source.index()));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        let d = d.0;
        if d > dist[u] {
            continue;
        }
        for a in &arcs[u] {
            let nd = d + a.reduced;
            if nd < dist[a.to] {
                dist[a.to] = nd;
                prev[a.to] = Some((u, a.edge));
                heap.push((std::cmp::Reverse(ordered(nd)), a.to));
            }
        }
    }
    if !dist[target.index()].is_finite() {
        return None;
    }
    // Extract P2's edge multiset.
    let mut p2_edges: Vec<EdgeId> = Vec::new();
    let mut cur = target.index();
    while let Some((p, e)) = prev[cur] {
        p2_edges.push(e);
        cur = p;
    }

    // Cancel edges used by both paths (P2 traversed them backwards).
    let p2_set: HashSet<EdgeId> = p2_edges.iter().copied().collect();
    let union: Vec<EdgeId> = edges1
        .iter()
        .copied()
        .filter(|e| !p2_set.contains(e))
        .chain(p2_edges.iter().copied().filter(|e| !p1_dir.contains_key(e)))
        .collect();

    // Decompose the union into two edge-disjoint s→t paths by walking.
    let mut adj: HashMap<NodeId, Vec<EdgeId>> = HashMap::new();
    for &e in &union {
        let (u, v) = graph.endpoints(e);
        adj.entry(u).or_default().push(e);
        adj.entry(v).or_default().push(e);
    }
    let mut used: HashSet<EdgeId> = HashSet::new();
    let mut extract = || -> Option<(Vec<EdgeId>, f64)> {
        let mut path = Vec::new();
        let mut total = 0.0;
        let mut cur = source;
        let mut guard = 0;
        while cur != target {
            guard += 1;
            if guard > graph.edge_count() + 2 {
                return None; // malformed union — should not happen
            }
            let next = adj.get(&cur)?.iter().copied().find(|e| !used.contains(e))?;
            used.insert(next);
            total += costs[next.index()];
            path.push(next);
            cur = graph.opposite(next, cur);
        }
        Some((path, total))
    };
    let (pa, ca) = extract()?;
    let (pb, cb) = extract()?;
    let (first, first_cost, second, second_cost) = if ca <= cb {
        (pa, ca, pb, cb)
    } else {
        (pb, cb, pa, ca)
    };
    Some(DisjointPair {
        first,
        second,
        first_cost,
        second_cost,
    })
}

/// Total-order wrapper for f64 heap keys (costs are never NaN here).
fn ordered(v: f64) -> OrderedF64 {
    OrderedF64(v)
}

#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph<(), f64>, NodeId, NodeId) {
        let mut g = Graph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 1.0);
        g.add_edge(a, t, 1.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(b, t, 2.0);
        (g, s, t)
    }

    #[test]
    fn finds_both_diamond_paths() {
        let (g, s, t) = diamond();
        let pair = disjoint_shortest_pair(&g, s, t, |_, w| *w).unwrap();
        assert_eq!(pair.first_cost, 2.0);
        assert_eq!(pair.second_cost, 4.0);
        assert_eq!(pair.total_cost(), 6.0);
        // Disjointness.
        let f: HashSet<_> = pair.first.iter().collect();
        assert!(pair.second.iter().all(|e| !f.contains(e)));
    }

    #[test]
    fn chain_has_no_disjoint_pair() {
        let mut g: Graph<(), f64> = Graph::new();
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        assert!(disjoint_shortest_pair(&g, nodes[0], nodes[3], |_, w| *w).is_none());
    }

    #[test]
    fn trap_topology_needs_the_rewind() {
        // The classic case where greedily removing the shortest path
        // disconnects the graph, but a disjoint pair exists: Suurballe's
        // residual rewind must find it.
        //
        //      s --1-- a --1-- t
        //      |       |       |
        //      2       0*      2
        //      |       |       |
        //      +------ b ------+
        //
        // Shortest path is s-a-t (2). Removing it leaves s-b (2), b-t (2)
        // and a-b (0) with `a` dangling — still connected, pair exists:
        // s-a-b-t? needs a-b. Total optimum: s-a-t + s-b-t = 2 + 4.
        let mut g: Graph<(), f64> = Graph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 1.0);
        g.add_edge(a, t, 1.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(b, t, 2.0);
        g.add_edge(a, b, 0.0);
        let pair = disjoint_shortest_pair(&g, s, t, |_, w| *w).unwrap();
        assert!(
            (pair.total_cost() - 6.0).abs() < 1e-9,
            "optimal pair costs 6, got {}",
            pair.total_cost()
        );
    }

    #[test]
    fn rewind_beats_greedy() {
        // Topology where the greedy (remove-P1, rerun) approach fails
        // entirely but Suurballe succeeds:
        //
        //  s→m is on the unique shortest path; both s-m arcs needed.
        //      s --1-- m --1-- t        (shortest: s-m-t = 2)
        //      s --5-- x --1-- m        (alt into m)
        //      m --5-- y? no: make t side:
        //      x --9-- t
        // Greedy removes s-m and m-t; remaining: s-x(5), x-m(1), x-t(9):
        // second path s-x-t = 14; pair total 16. Suurballe can instead
        // use s-m-t and s-x-m? m already used only as node (edge-disjoint
        // allows node reuse): s-x-m-t needs m-t — taken. So best pair is
        // indeed {s-m-t, s-x-t} = 16; check we find it.
        let mut g: Graph<(), f64> = Graph::new();
        let s = g.add_node(());
        let m = g.add_node(());
        let x = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, m, 1.0);
        g.add_edge(m, t, 1.0);
        g.add_edge(s, x, 5.0);
        g.add_edge(x, m, 1.0);
        g.add_edge(x, t, 9.0);
        let pair = disjoint_shortest_pair(&g, s, t, |_, w| *w).unwrap();
        assert!(
            (pair.total_cost() - 16.0).abs() < 1e-9,
            "got {}",
            pair.total_cost()
        );
    }

    #[test]
    fn cancellation_case() {
        // A graph where the optimal pair does NOT include the shortest
        // path — the residual pass must traverse a P1 edge backwards and
        // cancel it.
        //
        //   s-a: 1   a-t: 1    (P1 = s-a-t, cost 2)
        //   s-b: 1   b-a: 0.1  a-c: 0.1  c-t: 1
        // Disjoint pair must avoid sharing a-? edges... construct the
        // textbook example:
        //   s-a 1, a-b 1, b-t 1  (P1 cost 3)
        //   s-c 2, c-b 1
        //   a-d 1, d-t 2
        // Optimal pair: {s-a-d-t (4), s-c-b-t (4)} total 8, which uses
        // a-b ZERO times — P2 in the residual walks b→a backwards.
        let mut g: Graph<(), f64> = Graph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 1.0);
        g.add_edge(a, b, 1.0);
        g.add_edge(b, t, 1.0);
        g.add_edge(s, c, 2.0);
        g.add_edge(c, b, 1.0);
        g.add_edge(a, d, 1.0);
        g.add_edge(d, t, 2.0);
        let pair = disjoint_shortest_pair(&g, s, t, |_, w| *w).unwrap();
        assert!(
            (pair.total_cost() - 8.0).abs() < 1e-9,
            "got {}",
            pair.total_cost()
        );
        // And the cancelled edge a-b appears in neither path.
        let ab = g.find_edge(a, b).unwrap();
        assert!(!pair.first.contains(&ab) && !pair.second.contains(&ab));
    }

    #[test]
    fn parallel_edges_form_a_pair() {
        let mut g: Graph<(), f64> = Graph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, 3.0);
        g.add_edge(s, t, 5.0);
        let pair = disjoint_shortest_pair(&g, s, t, |_, w| *w).unwrap();
        assert_eq!(pair.first_cost, 3.0);
        assert_eq!(pair.second_cost, 5.0);
    }

    #[test]
    fn same_node_is_none() {
        let (g, s, _) = diamond();
        assert!(disjoint_shortest_pair(&g, s, s, |_, w| *w).is_none());
    }
}
