//! Undirected multigraph with typed node and edge payloads.

use core::fmt;

/// Opaque handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Opaque handle to an edge in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Zero-based dense index of this node (stable over the graph's life).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a handle from a dense index. The caller is responsible for the
    /// index referring to a node of the intended graph; out-of-range
    /// handles panic on first use.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl EdgeId {
    /// Zero-based dense index of this edge (stable over the graph's life).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a handle from a dense index; see [`NodeId::from_index`].
    pub fn from_index(index: usize) -> EdgeId {
        EdgeId(u32::try_from(index).expect("edge index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct EdgeRecord<E> {
    u: NodeId,
    v: NodeId,
    payload: E,
}

/// An undirected multigraph. Nodes and edges are append-only (analysis
/// passes "remove" edges via filters rather than mutation, so a
/// reconstructed network can be probed many times cheaply).
///
/// Self-loops are permitted by the representation but rejected by
/// [`Graph::add_edge`], since a microwave link from a tower to itself is
/// always a data error.
#[derive(Debug, Clone)]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    /// adjacency[u] = list of (edge, neighbor) pairs.
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Graph::new()
    }
}

impl<N, E> Graph<N, E> {
    /// An empty graph.
    pub fn new() -> Graph<N, E> {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Append a node, returning its handle.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits in u32"));
        self.nodes.push(payload);
        self.adjacency.push(Vec::new());
        id
    }

    /// Append an undirected edge between distinct nodes `u` and `v`.
    ///
    /// # Panics
    /// Panics when `u == v` (self-loop) or when either handle does not
    /// belong to this graph.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, payload: E) -> EdgeId {
        assert_ne!(u, v, "self-loop rejected: {u}");
        assert!(u.index() < self.nodes.len(), "unknown node {u}");
        assert!(v.index() < self.nodes.len(), "unknown node {v}");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count fits in u32"));
        self.edges.push(EdgeRecord { u, v, payload });
        self.adjacency[u.index()].push((id, v));
        self.adjacency[v.index()].push((id, u));
        id
    }

    /// Node payload.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable node payload.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Edge payload.
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.index()].payload
    }

    /// Mutable edge payload.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()].payload
    }

    /// The two endpoints of an edge, in insertion order.
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.index()];
        (e.u, e.v)
    }

    /// Given an edge and one of its endpoints, the opposite endpoint.
    ///
    /// # Panics
    /// Panics when `from` is not an endpoint of `edge`.
    pub fn opposite(&self, edge: EdgeId, from: NodeId) -> NodeId {
        let (u, v) = self.endpoints(edge);
        if from == u {
            v
        } else if from == v {
            u
        } else {
            panic!("{from} is not an endpoint of {edge}");
        }
    }

    /// Iterate `(edge, neighbor)` pairs incident to `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adjacency[node.index()].iter().copied()
    }

    /// Degree (number of incident edges, counting multi-edges).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterate all node handles.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate all edge handles.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + 'static {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterate `(id, payload)` for all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterate `(id, u, v, payload)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e.u, e.v, &e.payload))
    }

    /// Find an edge connecting `u` and `v` (either orientation), if any.
    ///
    /// This graph is a multigraph: parallel edges between the same node
    /// pair are legal (e.g. two licensed paths over the same tower
    /// pair). When several exist, the **first-inserted** one is returned
    /// — adjacency lists append on [`Graph::add_edge`], so the scan
    /// meets parallel edges in insertion order. Callers that care about
    /// a specific parallel edge (lowest latency, a particular band)
    /// must enumerate [`Graph::neighbors`] instead.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adjacency[u.index()]
            .iter()
            .find(|(_, n)| *n == v)
            .map(|(e, _)| *e)
    }

    /// Map node and edge payloads into a new graph with identical topology
    /// and identical `NodeId`/`EdgeId` assignments.
    pub fn map<N2, E2>(
        &self,
        mut node_fn: impl FnMut(NodeId, &N) -> N2,
        mut edge_fn: impl FnMut(EdgeId, &E) -> E2,
    ) -> Graph<N2, E2> {
        Graph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| node_fn(NodeId(i as u32), n))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| EdgeRecord {
                    u: e.u,
                    v: e.v,
                    payload: edge_fn(EdgeId(i as u32), &e.payload),
                })
                .collect(),
            adjacency: self.adjacency.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph<&'static str, f64>, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let ab = g.add_edge(a, b, 1.0);
        let bc = g.add_edge(b, c, 2.0);
        let ca = g.add_edge(c, a, 3.0);
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn counts() {
        let (g, _, _) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn payload_access() {
        let (mut g, [a, ..], [ab, ..]) = triangle();
        assert_eq!(*g.node(a), "a");
        assert_eq!(*g.edge(ab), 1.0);
        *g.node_mut(a) = "z";
        *g.edge_mut(ab) = 9.0;
        assert_eq!(*g.node(a), "z");
        assert_eq!(*g.edge(ab), 9.0);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (g, [a, b, _c], _) = triangle();
        assert!(g.neighbors(a).any(|(_, n)| n == b));
        assert!(g.neighbors(b).any(|(_, n)| n == a));
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn opposite_endpoint() {
        let (g, [a, b, c], [ab, ..]) = triangle();
        assert_eq!(g.opposite(ab, a), b);
        assert_eq!(g.opposite(ab, b), a);
        let _ = c;
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn opposite_panics_for_non_endpoint() {
        let (g, [_, _, c], [ab, ..]) = triangle();
        let _ = g.opposite(ab, c);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
    }

    #[test]
    fn multi_edges_allowed() {
        let mut g: Graph<(), u8> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(a, b, 2);
        assert_ne!(e1, e2);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn find_edge_either_orientation() {
        let (g, [a, b, c], [ab, bc, _]) = triangle();
        assert_eq!(g.find_edge(a, b), Some(ab));
        assert_eq!(g.find_edge(b, a), Some(ab));
        assert_eq!(g.find_edge(c, b), Some(bc));
        let mut g2: Graph<(), ()> = Graph::new();
        let x = g2.add_node(());
        let y = g2.add_node(());
        assert_eq!(g2.find_edge(x, y), None);
    }

    #[test]
    fn find_edge_returns_first_inserted_parallel_edge() {
        // Multigraph contract: with parallel edges, find_edge pins the
        // first-inserted one — from either endpoint, regardless of the
        // parallel edges' payloads or of edges added in between.
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let first = g.add_edge(a, b, 9.0);
        let _detour = g.add_edge(a, c, 1.0);
        let second = g.add_edge(a, b, 1.0);
        let third = g.add_edge(b, a, 0.5);
        assert_eq!(g.find_edge(a, b), Some(first));
        assert_eq!(g.find_edge(b, a), Some(first));
        assert_ne!(Some(second), Some(third));
        assert_eq!(g.degree(a), 4);
    }

    #[test]
    fn map_preserves_ids() {
        let (g, [a, ..], [ab, ..]) = triangle();
        let g2 = g.map(|_, n| n.len(), |_, w| *w as i64);
        assert_eq!(g2.node_count(), 3);
        assert_eq!(*g2.node(a), 1usize);
        assert_eq!(*g2.edge(ab), 1i64);
        assert_eq!(g2.endpoints(ab), g.endpoints(ab));
    }

    #[test]
    fn iterators_cover_everything() {
        let (g, _, _) = triangle();
        assert_eq!(g.node_ids().count(), 3);
        assert_eq!(g.edge_ids().count(), 3);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.edges().count(), 3);
    }
}
