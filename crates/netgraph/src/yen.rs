//! Yen's algorithm for the k shortest loop-free paths.
//!
//! Used to list the top alternate routes through an HFT network, e.g. for
//! the "NLN-alternate" frequency analysis of Fig. 4b.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::shortest::dijkstra;
use std::collections::HashSet;

/// A loop-free path with its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedPath {
    /// Node sequence, `source..=target`.
    pub nodes: Vec<NodeId>,
    /// Edge sequence; `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// Total cost under the supplied cost function.
    pub cost: f64,
}

fn path_cost<N, E>(
    graph: &Graph<N, E>,
    edges: &[EdgeId],
    cost: &mut impl FnMut(EdgeId, &E) -> f64,
) -> f64 {
    edges.iter().map(|&e| cost(e, graph.edge(e))).sum()
}

/// Compute up to `k` shortest loop-free paths from `source` to `target`
/// in ascending cost order, using Yen's algorithm over repeated filtered
/// Dijkstra runs.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// distinct loop-free routes. Costs must be non-negative.
pub fn yen_k_shortest<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    mut cost: impl FnMut(EdgeId, &E) -> f64,
) -> Vec<CostedPath> {
    if k == 0 {
        return Vec::new();
    }
    let first = dijkstra(graph, source, &mut cost, |_| true);
    let Some((nodes, edges)) = first.path(target) else {
        return Vec::new();
    };
    let c = path_cost(graph, &edges, &mut cost);
    let mut accepted = vec![CostedPath {
        nodes,
        edges,
        cost: c,
    }];
    // Candidate pool; tuple of (cost, path) kept sorted ascending lazily.
    let mut candidates: Vec<CostedPath> = Vec::new();
    // Dedup set over edge sequences (edge ids uniquely identify a path).
    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    seen.insert(accepted[0].edges.clone());

    while accepted.len() < k {
        let last = accepted.last().expect("at least one accepted path").clone();
        // Each prefix of the last accepted path spawns a spur search.
        for i in 0..last.edges.len() {
            let spur_node = last.nodes[i];
            let root_nodes = &last.nodes[..=i];
            let root_edges = &last.edges[..i];

            // Edges to hide: any edge continuing a previously accepted (or
            // candidate) path that shares this root.
            let mut banned_edges: HashSet<EdgeId> = HashSet::new();
            for p in accepted.iter().chain(candidates.iter()) {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    banned_edges.insert(p.edges[i]);
                }
            }
            // Nodes on the root (except the spur node) must not be re-visited.
            let banned_nodes: HashSet<NodeId> = root_nodes[..i].iter().copied().collect();

            let sp = dijkstra(graph, spur_node, &mut cost, |e| {
                if banned_edges.contains(&e) {
                    return false;
                }
                let (u, v) = graph.endpoints(e);
                !(banned_nodes.contains(&u) || banned_nodes.contains(&v))
            });
            if let Some((spur_nodes, spur_edges)) = sp.path(target) {
                let mut total_nodes = root_nodes.to_vec();
                total_nodes.extend_from_slice(&spur_nodes[1..]);
                let mut total_edges = root_edges.to_vec();
                total_edges.extend_from_slice(&spur_edges);
                if seen.insert(total_edges.clone()) {
                    let c = path_cost(graph, &total_edges, &mut cost);
                    candidates.push(CostedPath {
                        nodes: total_nodes,
                        edges: total_edges,
                        cost: c,
                    });
                }
            }
        }
        // Pop the cheapest candidate (stable tie-break on edge ids for
        // determinism).
        if candidates.is_empty() {
            break;
        }
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(core::cmp::Ordering::Equal)
                    .then_with(|| a.edges.cmp(&b.edges))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        accepted.push(candidates.swap_remove(best));
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph with three distinct a→d routes of costs 3, 4, 7.
    fn three_route_graph() -> (Graph<(), f64>, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 2.0); // a-b-d = 3
        g.add_edge(a, c, 2.0);
        g.add_edge(c, d, 2.0); // a-c-d = 4
        g.add_edge(a, d, 7.0); // direct = 7
        (g, a, d)
    }

    #[test]
    fn returns_paths_in_ascending_cost() {
        let (g, a, d) = three_route_graph();
        let paths = yen_k_shortest(&g, a, d, 3, |_, w| *w);
        assert_eq!(paths.len(), 3);
        let costs: Vec<f64> = paths.iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![3.0, 4.0, 7.0]);
    }

    #[test]
    fn truncates_when_fewer_paths_exist() {
        let (g, a, d) = three_route_graph();
        let paths = yen_k_shortest(&g, a, d, 10, |_, w| *w);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn k_zero_and_unreachable() {
        let (g, a, d) = three_route_graph();
        assert!(yen_k_shortest(&g, a, d, 0, |_, w| *w).is_empty());
        let mut g2: Graph<(), f64> = Graph::new();
        let x = g2.add_node(());
        let y = g2.add_node(());
        assert!(yen_k_shortest(&g2, x, y, 3, |_, w| *w).is_empty());
    }

    #[test]
    fn paths_are_loop_free() {
        let (g, a, d) = three_route_graph();
        for p in yen_k_shortest(&g, a, d, 3, |_, w| *w) {
            let mut seen = HashSet::new();
            for n in &p.nodes {
                assert!(seen.insert(*n), "node repeated in path");
            }
        }
    }

    #[test]
    fn paths_are_distinct() {
        let (g, a, d) = three_route_graph();
        let paths = yen_k_shortest(&g, a, d, 3, |_, w| *w);
        let mut edge_seqs: Vec<&Vec<EdgeId>> = paths.iter().map(|p| &p.edges).collect();
        edge_seqs.dedup();
        assert_eq!(edge_seqs.len(), 3);
    }

    #[test]
    fn ladder_graph_many_paths() {
        // 2xN ladder: lots of loop-free paths; check monotone costs.
        let n = 5;
        let mut g: Graph<(), f64> = Graph::new();
        let top: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        let bot: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n - 1 {
            g.add_edge(top[i], top[i + 1], 1.0);
            g.add_edge(bot[i], bot[i + 1], 1.0);
        }
        for i in 0..n {
            g.add_edge(top[i], bot[i], 0.5);
        }
        let paths = yen_k_shortest(&g, top[0], top[n - 1], 8, |_, w| *w);
        assert!(paths.len() >= 4);
        for w in paths.windows(2) {
            assert!(
                w[0].cost <= w[1].cost + 1e-12,
                "costs must be non-decreasing"
            );
        }
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let (g, a, d) = three_route_graph();
        let paths = yen_k_shortest(&g, a, d, 1, |_, w| *w);
        let sp = crate::shortest::dijkstra(&g, a, |_, w| *w, |_| true);
        assert_eq!(paths[0].cost, sp.distance(d).unwrap());
        assert_eq!(paths[0].nodes, sp.path_nodes(d).unwrap());
    }

    #[test]
    fn multigraph_parallel_edges_counted_separately() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.0);
        let paths = yen_k_shortest(&g, a, b, 5, |_, w| *w);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost, 1.0);
        assert_eq!(paths[1].cost, 2.0);
    }
}
