//! Connectivity and bridge analysis.

use crate::graph::{EdgeId, Graph, NodeId};

/// Connected components as a label per node: `labels[i]` is the component
/// index (0-based, in order of first discovery) of node `i`.
pub fn connected_components<N, E>(graph: &Graph<N, E>) -> Vec<usize> {
    let n = graph.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in graph.node_ids() {
        if labels[start.index()] != usize::MAX {
            continue;
        }
        labels[start.index()] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for (_, v) in graph.neighbors(u) {
                if labels[v.index()] == usize::MAX {
                    labels[v.index()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    labels
}

/// Whether `a` and `b` lie in the same connected component.
pub fn is_connected_between<N, E>(graph: &Graph<N, E>, a: NodeId, b: NodeId) -> bool {
    let labels = connected_components(graph);
    labels[a.index()] == labels[b.index()]
}

/// All bridges (cut edges) of the graph, via Tarjan's low-link DFS.
///
/// A bridge is an edge whose removal disconnects its endpoints. Parallel
/// edges are never bridges (the twin keeps the endpoints connected).
pub fn bridges<N, E>(graph: &Graph<N, E>) -> Vec<EdgeId> {
    let n = graph.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut out = Vec::new();

    // Iterative DFS frame: (node, incoming edge, neighbor cursor).
    let adj: Vec<Vec<(EdgeId, NodeId)>> = graph
        .node_ids()
        .map(|u| graph.neighbors(u).collect())
        .collect();

    for start in graph.node_ids() {
        if disc[start.index()] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = vec![(start, None, 0)];
        disc[start.index()] = timer;
        low[start.index()] = timer;
        timer += 1;
        while let Some(&mut (u, via, ref mut cursor)) = stack.last_mut() {
            if *cursor < adj[u.index()].len() {
                let (e, v) = adj[u.index()][*cursor];
                *cursor += 1;
                // Skip only the exact edge we arrived on; a parallel edge
                // between the same endpoints must still update low-links.
                if Some(e) == via {
                    continue;
                }
                if disc[v.index()] == usize::MAX {
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push((v, Some(e), 0));
                } else {
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                stack.pop();
                if let Some(&(parent, _, _)) = stack.last() {
                    low[parent.index()] = low[parent.index()].min(low[u.index()]);
                    if low[u.index()] > disc[parent.index()] {
                        out.push(via.expect("non-root frame has incoming edge"));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_disjoint_graph() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(c, d, ());
        let labels = connected_components(&g);
        assert_eq!(labels[a.index()], labels[b.index()]);
        assert_eq!(labels[c.index()], labels[d.index()]);
        assert_ne!(labels[a.index()], labels[c.index()]);
        assert!(is_connected_between(&g, a, b));
        assert!(!is_connected_between(&g, a, c));
    }

    #[test]
    fn single_node_is_its_own_component() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0]);
        assert!(is_connected_between(&g, a, a));
    }

    #[test]
    fn chain_all_edges_are_bridges() {
        let mut g: Graph<(), ()> = Graph::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        let mut edges = Vec::new();
        for w in nodes.windows(2) {
            edges.push(g.add_edge(w[0], w[1], ()));
        }
        let mut b = bridges(&g);
        b.sort_unstable();
        let mut expect = edges.clone();
        expect.sort_unstable();
        assert_eq!(b, expect);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let mut g: Graph<(), ()> = Graph::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(nodes[i], nodes[(i + 1) % 5], ());
        }
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn mixed_topology_bridge_set() {
        // Triangle (a,b,c) - bridge (c,d) - triangle (d,e,f).
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        let bridge = g.add_edge(c, d, ());
        g.add_edge(d, e, ());
        g.add_edge(e, f, ());
        g.add_edge(f, d, ());
        assert_eq!(bridges(&g), vec![bridge]);
    }

    #[test]
    fn ladder_rungs_are_not_bridges_but_rails_at_ends_are_not_either() {
        // Full 2xN ladder is 2-edge-connected: no bridges at all.
        let n = 4;
        let mut g: Graph<(), ()> = Graph::new();
        let top: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        let bot: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n - 1 {
            g.add_edge(top[i], top[i + 1], ());
            g.add_edge(bot[i], bot[i + 1], ());
        }
        for i in 0..n {
            g.add_edge(top[i], bot[i], ());
        }
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn pendant_edge_is_bridge() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        let d = g.add_node(());
        let pendant = g.add_edge(a, d, ());
        assert_eq!(bridges(&g), vec![pendant]);
    }

    #[test]
    fn empty_graph() {
        let g: Graph<(), ()> = Graph::new();
        assert!(connected_components(&g).is_empty());
        assert!(bridges(&g).is_empty());
    }
}
