//! Enumeration of all loop-free paths within a cost bound.
//!
//! The paper's Fig. 4a measures link lengths over *all* loop-free
//! CME→NY4 paths whose latency is within 5% of the geodesic c-latency.
//! Naive DFS over a redundant network explodes; we prune with exact
//! lower bounds ("potentials") from a reverse Dijkstra: a partial path of
//! cost `g` at node `v` can be abandoned as soon as
//! `g + dist(v, target) > bound`.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::shortest::dijkstra;
use std::collections::HashSet;

/// Configuration for [`bounded_paths`].
#[derive(Debug, Clone, Copy)]
pub struct BoundedPathsConfig {
    /// Absolute cost bound; only paths with total cost ≤ `bound` are kept.
    pub bound: f64,
    /// Safety cap on the number of enumerated paths (the edge/node sets
    /// keep filling until the cap trips). Guards against pathological
    /// inputs; `usize::MAX` disables.
    pub max_paths: usize,
    /// When `false`, skip recording full path node sequences (cheaper) and
    /// only collect the edge/node membership sets.
    pub record_paths: bool,
}

impl Default for BoundedPathsConfig {
    fn default() -> Self {
        BoundedPathsConfig {
            bound: f64::INFINITY,
            max_paths: 1_000_000,
            record_paths: true,
        }
    }
}

/// Result of [`bounded_paths`]: the set of loop-free paths within the
/// bound, plus membership sets over edges and nodes.
#[derive(Debug, Clone)]
pub struct PathSet {
    /// Full paths (edge sequences), present when
    /// [`BoundedPathsConfig::record_paths`] is set. Order is the
    /// deterministic DFS discovery order.
    pub paths: Vec<Vec<EdgeId>>,
    /// Every edge appearing on at least one within-bound path.
    pub edges: HashSet<EdgeId>,
    /// Every node appearing on at least one within-bound path.
    pub nodes: HashSet<NodeId>,
    /// Number of paths found (valid even when paths are not recorded).
    pub count: usize,
    /// True when enumeration stopped early at `max_paths`.
    pub truncated: bool,
}

/// Enumerate all loop-free `source → target` paths of total cost ≤
/// `config.bound`, using reverse-Dijkstra potentials for exact pruning.
///
/// Edge costs must be non-negative (checked by the underlying Dijkstra in
/// debug builds). With non-negative costs the potential-based cut is exact:
/// no within-bound path is ever missed.
pub fn bounded_paths<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    mut cost: impl FnMut(EdgeId, &E) -> f64,
    config: &BoundedPathsConfig,
) -> PathSet {
    // Exact distance-to-target potentials (graph is undirected, so a
    // forward tree from `target` gives reverse distances).
    let to_target = dijkstra(graph, target, &mut cost, |_| true);
    let potentials = to_target.distances();

    let mut out = PathSet {
        paths: Vec::new(),
        edges: HashSet::new(),
        nodes: HashSet::new(),
        count: 0,
        truncated: false,
    };
    if potentials[source.index()].is_infinite() {
        return out; // target unreachable
    }

    // Iterative DFS with explicit stack of (node, next-neighbor-index).
    let mut on_path = vec![false; graph.node_count()];
    let mut node_stack: Vec<NodeId> = vec![source];
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut iter_stack: Vec<usize> = vec![0];
    let mut g_cost = 0.0f64;
    on_path[source.index()] = true;

    // Snapshot adjacency for index-stable iteration.
    let adj: Vec<Vec<(EdgeId, NodeId)>> = graph
        .node_ids()
        .map(|n| graph.neighbors(n).collect())
        .collect();
    // Pre-compute edge costs once (cost fn may be expensive).
    let edge_costs: Vec<f64> = graph.edge_ids().map(|e| cost(e, graph.edge(e))).collect();

    while let Some(&u) = node_stack.last() {
        if out.count >= config.max_paths {
            out.truncated = true;
            break;
        }
        let i = iter_stack.last_mut().expect("stacks in sync");
        if u == target && edge_stack.is_empty() && node_stack.len() > 1 {
            unreachable!("target handling below pops before descending");
        }
        let neighbors = &adj[u.index()];
        if *i < neighbors.len() {
            let (e, v) = neighbors[*i];
            *i += 1;
            if on_path[v.index()] {
                continue;
            }
            let w = edge_costs[e.index()];
            let ng = g_cost + w;
            // Exact prune: even the best continuation overshoots.
            if ng + potentials[v.index()] > config.bound * (1.0 + 1e-12) {
                continue;
            }
            if v == target {
                // Record the completed path without descending (any
                // continuation through the target would loop back).
                out.count += 1;
                let mut full = edge_stack.clone();
                full.push(e);
                for &pe in &full {
                    out.edges.insert(pe);
                    let (a, b) = graph.endpoints(pe);
                    out.nodes.insert(a);
                    out.nodes.insert(b);
                }
                if config.record_paths {
                    out.paths.push(full);
                }
                continue;
            }
            // Descend.
            on_path[v.index()] = true;
            node_stack.push(v);
            edge_stack.push(e);
            iter_stack.push(0);
            g_cost = ng;
        } else {
            // Backtrack.
            on_path[u.index()] = false;
            node_stack.pop();
            iter_stack.pop();
            if let Some(e) = edge_stack.pop() {
                g_cost -= edge_costs[e.index()];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph<(), f64>, [NodeId; 4]) {
        let mut g = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 2.0); // route 1: cost 3
        g.add_edge(a, c, 2.0);
        g.add_edge(c, d, 2.0); // route 2: cost 4
        g.add_edge(a, d, 7.0); // route 3: cost 7
        (g, [a, b, c, d])
    }

    #[test]
    fn bound_selects_routes() {
        let (g, [a, _, _, d]) = diamond();
        let cfg = |b: f64| BoundedPathsConfig {
            bound: b,
            ..Default::default()
        };
        assert_eq!(bounded_paths(&g, a, d, |_, w| *w, &cfg(2.9)).count, 0);
        assert_eq!(bounded_paths(&g, a, d, |_, w| *w, &cfg(3.0)).count, 1);
        assert_eq!(bounded_paths(&g, a, d, |_, w| *w, &cfg(4.5)).count, 2);
        assert_eq!(bounded_paths(&g, a, d, |_, w| *w, &cfg(100.0)).count, 3);
    }

    #[test]
    fn edge_membership_union() {
        let (g, [a, _, _, d]) = diamond();
        let ps = bounded_paths(
            &g,
            a,
            d,
            |_, w| *w,
            &BoundedPathsConfig {
                bound: 4.5,
                ..Default::default()
            },
        );
        // Routes 1 and 2 use edges 0..4; the direct edge 4 is excluded.
        assert_eq!(ps.edges.len(), 4);
        assert!(!ps.edges.iter().any(|e| e.index() == 4));
        assert_eq!(ps.nodes.len(), 4);
    }

    #[test]
    fn unreachable_target() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let ps = bounded_paths(&g, a, b, |_, w| *w, &BoundedPathsConfig::default());
        assert_eq!(ps.count, 0);
        assert!(ps.paths.is_empty());
    }

    #[test]
    fn paths_are_loop_free_and_within_bound() {
        let (g, [a, _, _, d]) = diamond();
        let bound = 7.0;
        let ps = bounded_paths(
            &g,
            a,
            d,
            |_, w| *w,
            &BoundedPathsConfig {
                bound,
                ..Default::default()
            },
        );
        for p in &ps.paths {
            let total: f64 = p.iter().map(|e| *g.edge(*e)).sum();
            assert!(total <= bound + 1e-9);
            // Loop-free: walk and check node uniqueness.
            let mut cur = a;
            let mut seen = HashSet::from([a]);
            for e in p {
                cur = g.opposite(*e, cur);
                assert!(seen.insert(cur), "revisited node");
            }
            assert_eq!(cur, d);
        }
    }

    #[test]
    fn max_paths_truncation() {
        // Complete-ish graph with many paths.
        let mut g: Graph<(), f64> = Graph::new();
        let nodes: Vec<NodeId> = (0..8).map(|_| g.add_node(())).collect();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                g.add_edge(nodes[i], nodes[j], 1.0);
            }
        }
        let ps = bounded_paths(
            &g,
            nodes[0],
            nodes[7],
            |_, w| *w,
            &BoundedPathsConfig {
                bound: 100.0,
                max_paths: 5,
                record_paths: true,
            },
        );
        assert!(ps.truncated);
        assert_eq!(ps.count, 5);
    }

    #[test]
    fn record_paths_false_still_counts() {
        let (g, [a, _, _, d]) = diamond();
        let ps = bounded_paths(
            &g,
            a,
            d,
            |_, w| *w,
            &BoundedPathsConfig {
                bound: 100.0,
                max_paths: usize::MAX,
                record_paths: false,
            },
        );
        assert_eq!(ps.count, 3);
        assert!(ps.paths.is_empty());
        assert_eq!(ps.edges.len(), 5);
    }

    #[test]
    fn matches_brute_force_on_ladder() {
        // 2x4 ladder; compare against a simple recursive enumeration.
        let n = 4;
        let mut g: Graph<(), f64> = Graph::new();
        let top: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        let bot: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n - 1 {
            g.add_edge(top[i], top[i + 1], 1.0);
            g.add_edge(bot[i], bot[i + 1], 1.0);
        }
        for i in 0..n {
            g.add_edge(top[i], bot[i], 0.3);
        }
        fn brute(
            g: &Graph<(), f64>,
            cur: NodeId,
            target: NodeId,
            cost: f64,
            bound: f64,
            visited: &mut HashSet<NodeId>,
            count: &mut usize,
        ) {
            if cur == target {
                *count += 1;
                return;
            }
            let neighbors: Vec<(EdgeId, NodeId)> = g.neighbors(cur).collect();
            for (e, v) in neighbors {
                if visited.contains(&v) {
                    continue;
                }
                let c = cost + *g.edge(e);
                if c > bound {
                    continue;
                }
                visited.insert(v);
                brute(g, v, target, c, bound, visited, count);
                visited.remove(&v);
            }
        }
        for bound in [3.0, 3.6, 4.2, 10.0] {
            let mut count = 0;
            let mut visited = HashSet::from([top[0]]);
            brute(&g, top[0], top[n - 1], 0.0, bound, &mut visited, &mut count);
            let ps = bounded_paths(
                &g,
                top[0],
                top[n - 1],
                |_, w| *w,
                &BoundedPathsConfig {
                    bound,
                    ..Default::default()
                },
            );
            assert_eq!(ps.count, count, "bound {bound}");
        }
    }
}
