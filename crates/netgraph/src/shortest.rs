//! Dijkstra single-source shortest paths with filtered edges.

use crate::graph::{EdgeId, Graph, NodeId};
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry; `BinaryHeap` is a max-heap so ordering is reversed.
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance for a min-heap; break ties on node id so the
        // order (and thus returned paths) is fully deterministic.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The shortest-path tree produced by [`dijkstra`].
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// The source node the tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest distance from the source to `node`, or `None` if
    /// unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// All distances, indexed by node index; unreachable nodes hold
    /// `f64::INFINITY`. Useful as a potential/heuristic table.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Shortest path to `target` as a node sequence `source..=target`, or
    /// `None` if unreachable.
    pub fn path_nodes(&self, target: NodeId) -> Option<Vec<NodeId>> {
        self.path(target).map(|(nodes, _)| nodes)
    }

    /// Shortest path to `target` as the edge sequence walked, or `None` if
    /// unreachable.
    pub fn path_edges(&self, target: NodeId) -> Option<Vec<EdgeId>> {
        self.path(target).map(|(_, edges)| edges)
    }

    /// Shortest path to `target` as `(nodes, edges)`; `nodes.len() ==
    /// edges.len() + 1`. `None` if unreachable.
    pub fn path(&self, target: NodeId) -> Option<(Vec<NodeId>, Vec<EdgeId>)> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.prev[cur.index()] {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        nodes.reverse();
        edges.reverse();
        Some((nodes, edges))
    }
}

/// Dijkstra's algorithm from `source` over edges passing `filter`, with
/// per-edge non-negative costs from `cost`.
///
/// `cost` receives the edge id and payload; negative or NaN costs panic in
/// debug builds and are clamped to zero in release (latency costs are
/// physically non-negative, so this is strictly a data-error guard).
pub fn dijkstra<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    mut cost: impl FnMut(EdgeId, &E) -> f64,
    mut filter: impl FnMut(EdgeId) -> bool,
) -> ShortestPaths {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        for (e, v) in graph.neighbors(u) {
            if settled[v.index()] || !filter(e) {
                continue;
            }
            let w = cost(e, graph.edge(e));
            debug_assert!(w >= 0.0 && !w.is_nan(), "negative/NaN edge cost on {e}");
            let w = if w.is_nan() { 0.0 } else { w.max(0.0) };
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some((u, e));
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    ShortestPaths { source, dist, prev }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the classic diamond: a-b-d (cost 3), a-c-d (cost 3), a-d (cost 7).
    fn diamond() -> (Graph<(), f64>, [NodeId; 4]) {
        let mut g = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 2.0);
        g.add_edge(a, c, 2.0);
        g.add_edge(c, d, 1.0);
        g.add_edge(a, d, 7.0);
        (g, [a, b, c, d])
    }

    #[test]
    fn finds_min_cost_path() {
        let (g, [a, _, _, d]) = diamond();
        let sp = dijkstra(&g, a, |_, w| *w, |_| true);
        assert_eq!(sp.distance(d), Some(3.0));
        let nodes = sp.path_nodes(d).unwrap();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0], a);
        assert_eq!(nodes[2], d);
    }

    #[test]
    fn source_distance_zero_and_empty_path() {
        let (g, [a, ..]) = diamond();
        let sp = dijkstra(&g, a, |_, w| *w, |_| true);
        assert_eq!(sp.distance(a), Some(0.0));
        assert_eq!(sp.path_nodes(a).unwrap(), vec![a]);
        assert!(sp.path_edges(a).unwrap().is_empty());
    }

    #[test]
    fn unreachable_is_none() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1.0);
        let sp = dijkstra(&g, a, |_, w| *w, |_| true);
        assert_eq!(sp.distance(c), None);
        assert!(sp.path(c).is_none());
    }

    #[test]
    fn edge_filter_forces_detour() {
        let (g, [a, b, _, d]) = diamond();
        // Block the b-route's first edge: a-b is edge 0.
        let blocked = g.find_edge(a, b).unwrap();
        let sp = dijkstra(&g, a, |_, w| *w, |e| e != blocked);
        assert_eq!(sp.distance(d), Some(3.0)); // c-route still 3.0
        let sp_all_blocked = dijkstra(&g, a, |_, w| *w, |e| e.index() >= 4);
        assert_eq!(sp_all_blocked.distance(d), Some(7.0)); // only direct edge left
    }

    #[test]
    fn multi_edge_takes_cheapest() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 5.0);
        let cheap = g.add_edge(a, b, 2.0);
        let sp = dijkstra(&g, a, |_, w| *w, |_| true);
        assert_eq!(sp.distance(b), Some(2.0));
        assert_eq!(sp.path_edges(b).unwrap(), vec![cheap]);
    }

    #[test]
    fn path_edges_consistent_with_nodes() {
        let (g, [a, _, _, d]) = diamond();
        let sp = dijkstra(&g, a, |_, w| *w, |_| true);
        let (nodes, edges) = sp.path(d).unwrap();
        assert_eq!(nodes.len(), edges.len() + 1);
        for (i, e) in edges.iter().enumerate() {
            let (u, v) = g.endpoints(*e);
            assert!(
                (u == nodes[i] && v == nodes[i + 1]) || (v == nodes[i] && u == nodes[i + 1]),
                "edge {i} does not connect consecutive path nodes"
            );
        }
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-cost routes; run twice and expect identical paths.
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(c, d, 1.0);
        let p1 = dijkstra(&g, a, |_, w| *w, |_| true).path_nodes(d).unwrap();
        let p2 = dijkstra(&g, a, |_, w| *w, |_| true).path_nodes(d).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn zero_cost_edges_ok() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 0.0);
        g.add_edge(b, c, 0.0);
        let sp = dijkstra(&g, a, |_, w| *w, |_| true);
        assert_eq!(sp.distance(c), Some(0.0));
        assert_eq!(sp.path_nodes(c).unwrap().len(), 3);
    }

    #[test]
    fn distances_slice_matches_accessor() {
        let (g, [a, b, c, d]) = diamond();
        let sp = dijkstra(&g, a, |_, w| *w, |_| true);
        let ds = sp.distances();
        for n in [a, b, c, d] {
            assert_eq!(sp.distance(n), Some(ds[n.index()]));
        }
    }
}
