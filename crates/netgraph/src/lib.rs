//! # hft-netgraph
//!
//! A from-scratch graph substrate replacing the `networkx` usage in the
//! IMC'20 paper's tooling. It provides exactly the algorithms network
//! reconstruction and analysis need:
//!
//! * an undirected multigraph with typed node/edge payloads ([`Graph`]);
//! * Dijkstra single-source shortest paths with arbitrary non-negative
//!   edge costs and edge filtering ([`dijkstra`]) — heterogeneous speeds
//!   of light become edge costs;
//! * Yen's algorithm for k-shortest loop-free paths ([`yen_k_shortest`]);
//! * enumeration of *all* loop-free paths within a cost bound
//!   ([`bounded_paths`]), pruned by reverse-Dijkstra potentials — this is
//!   what the paper's link-length CDF (Fig. 4a) is computed over;
//! * connectivity and bridge analysis ([`connected_components`],
//!   [`bridges`]) supporting the alternate-path-availability metric.
//!
//! ```
//! use hft_netgraph::{Graph, dijkstra};
//!
//! let mut g: Graph<&str, f64> = Graph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, 1.0);
//! g.add_edge(b, c, 2.0);
//! g.add_edge(a, c, 10.0);
//! let sp = dijkstra(&g, a, |_, w| *w, |_| true);
//! assert_eq!(sp.distance(c), Some(3.0));
//! assert_eq!(sp.path_nodes(c).unwrap(), vec![a, b, c]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connectivity;
mod disjoint;
mod graph;
mod paths;
mod shortest;
mod yen;

pub use connectivity::{bridges, connected_components, is_connected_between};
pub use disjoint::{disjoint_shortest_pair, DisjointPair};
pub use graph::{EdgeId, Graph, NodeId};
pub use paths::{bounded_paths, BoundedPathsConfig, PathSet};
pub use shortest::{dijkstra, ShortestPaths};
pub use yen::{yen_k_shortest, CostedPath};
