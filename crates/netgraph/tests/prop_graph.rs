//! Property tests pitting the graph algorithms against brute-force oracles
//! on random graphs.

use hft_netgraph::{
    bounded_paths, bridges, connected_components, dijkstra, yen_k_shortest, BoundedPathsConfig,
    Graph, NodeId,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random undirected graph with up to 10 nodes and 18 weighted edges.
fn arb_graph() -> impl Strategy<Value = Graph<(), f64>> {
    let n = 2usize..=10;
    n.prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0.1f64..10.0), 0..=18);
        edges.prop_map(move |edges| {
            let mut g: Graph<(), f64> = Graph::new();
            let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(ids[u], ids[v], w);
                }
            }
            g
        })
    })
}

/// Bellman-Ford oracle for shortest distances.
fn bellman_ford(g: &Graph<(), f64>, src: NodeId) -> Vec<f64> {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[src.index()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for (_, u, v, w) in g.edges() {
            if dist[u.index()] + w < dist[v.index()] {
                dist[v.index()] = dist[u.index()] + w;
                changed = true;
            }
            if dist[v.index()] + w < dist[u.index()] {
                dist[u.index()] = dist[v.index()] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_graph()) {
        let src = NodeId::from_index(0);
        let sp = dijkstra(&g, src, |_, w| *w, |_| true);
        let oracle = bellman_ford(&g, src);
        for v in g.node_ids() {
            let a = sp.distance(v).unwrap_or(f64::INFINITY);
            let b = oracle[v.index()];
            prop_assert!((a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                "node {v}: dijkstra={a} oracle={b}");
        }
    }

    #[test]
    fn dijkstra_path_cost_equals_distance(g in arb_graph()) {
        let src = NodeId::from_index(0);
        let sp = dijkstra(&g, src, |_, w| *w, |_| true);
        for v in g.node_ids() {
            if let Some((_, edges)) = sp.path(v) {
                let total: f64 = edges.iter().map(|e| *g.edge(*e)).sum();
                prop_assert!((total - sp.distance(v).unwrap()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn yen_first_equals_dijkstra_and_sorted(g in arb_graph()) {
        let src = NodeId::from_index(0);
        let dst = NodeId::from_index(g.node_count() - 1);
        let paths = yen_k_shortest(&g, src, dst, 5, |_, w| *w);
        let sp = dijkstra(&g, src, |_, w| *w, |_| true);
        match sp.distance(dst) {
            None => prop_assert!(paths.is_empty()),
            Some(d) => {
                prop_assert!(!paths.is_empty());
                prop_assert!((paths[0].cost - d).abs() < 1e-9);
                for w in paths.windows(2) {
                    prop_assert!(w[0].cost <= w[1].cost + 1e-9);
                }
                // Distinct and loop-free.
                let mut seen = HashSet::new();
                for p in &paths {
                    prop_assert!(seen.insert(p.edges.clone()), "duplicate path");
                    let mut nodes = HashSet::new();
                    for n in &p.nodes {
                        prop_assert!(nodes.insert(*n), "loop in path");
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_paths_subsumes_yen(g in arb_graph(), slack in 1.0f64..2.0) {
        let src = NodeId::from_index(0);
        let dst = NodeId::from_index(g.node_count() - 1);
        let sp = dijkstra(&g, src, |_, w| *w, |_| true);
        let Some(d) = sp.distance(dst) else { return Ok(()); };
        let bound = d * slack;
        let ps = bounded_paths(&g, src, dst, |_, w| *w,
            &BoundedPathsConfig { bound, max_paths: 100_000, record_paths: true });
        // Every yen path within the bound must be found by bounded_paths.
        let yen = yen_k_shortest(&g, src, dst, 10, |_, w| *w);
        let ps_set: HashSet<_> = ps.paths.iter().cloned().collect();
        for p in yen.iter().filter(|p| p.cost <= bound + 1e-9) {
            prop_assert!(ps_set.contains(&p.edges), "yen path missing from bounded set");
        }
        // And every bounded path respects the bound.
        for p in &ps.paths {
            let total: f64 = p.iter().map(|e| *g.edge(*e)).sum();
            prop_assert!(total <= bound * (1.0 + 1e-9));
        }
    }

    #[test]
    fn bridge_removal_disconnects(g in arb_graph()) {
        let comp_before = connected_components(&g);
        for b in bridges(&g) {
            let (u, v) = g.endpoints(b);
            // Removing a bridge must disconnect u from v: check via filtered Dijkstra.
            let sp = dijkstra(&g, u, |_, _| 1.0, |e| e != b);
            prop_assert!(sp.distance(v).is_none(), "bridge removal left endpoints connected");
            let _ = comp_before;
        }
    }

    #[test]
    fn non_bridge_removal_keeps_component(g in arb_graph()) {
        let bridge_set: HashSet<_> = bridges(&g).into_iter().collect();
        for (e, u, v, _) in g.edges() {
            if bridge_set.contains(&e) {
                continue;
            }
            let sp = dijkstra(&g, u, |_, _| 1.0, |x| x != e);
            prop_assert!(sp.distance(v).is_some(), "non-bridge removal disconnected endpoints");
        }
    }

    #[test]
    fn components_agree_with_reachability(g in arb_graph()) {
        let labels = connected_components(&g);
        let src = NodeId::from_index(0);
        let sp = dijkstra(&g, src, |_, _| 1.0, |_| true);
        for v in g.node_ids() {
            let same = labels[v.index()] == labels[src.index()];
            prop_assert_eq!(same, sp.distance(v).is_some());
        }
    }
}

/// Brute-force oracle: enumerate all simple paths, then the best
/// edge-disjoint pair by total cost.
fn brute_best_pair(g: &Graph<(), f64>, s: NodeId, t: NodeId) -> Option<f64> {
    fn all_paths(
        g: &Graph<(), f64>,
        cur: NodeId,
        t: NodeId,
        visited: &mut Vec<bool>,
        edges: &mut Vec<hft_netgraph::EdgeId>,
        cost: f64,
        out: &mut Vec<(Vec<hft_netgraph::EdgeId>, f64)>,
    ) {
        if cur == t {
            out.push((edges.clone(), cost));
            return;
        }
        let neighbors: Vec<(hft_netgraph::EdgeId, NodeId)> = g.neighbors(cur).collect();
        for (e, v) in neighbors {
            if visited[v.index()] {
                continue;
            }
            visited[v.index()] = true;
            edges.push(e);
            all_paths(g, v, t, visited, edges, cost + *g.edge(e), out);
            edges.pop();
            visited[v.index()] = false;
        }
    }
    let mut paths = Vec::new();
    let mut visited = vec![false; g.node_count()];
    visited[s.index()] = true;
    all_paths(g, s, t, &mut visited, &mut Vec::new(), 0.0, &mut paths);
    let mut best: Option<f64> = None;
    for i in 0..paths.len() {
        'outer: for j in 0..paths.len() {
            if i == j && !paths[i].0.is_empty() {
                // A path cannot pair with itself unless it is a distinct
                // parallel edge path; handled by j != i plus multigraph
                // paths being enumerated separately.
            }
            if i >= j {
                continue;
            }
            let set: HashSet<_> = paths[i].0.iter().collect();
            for e in &paths[j].0 {
                if set.contains(e) {
                    continue 'outer;
                }
            }
            let total = paths[i].1 + paths[j].1;
            if best.is_none_or(|b| total < b) {
                best = Some(total);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn suurballe_matches_brute_force(g in arb_graph()) {
        prop_assume!(g.node_count() <= 8 && g.edge_count() <= 12);
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        prop_assume!(s != t);
        let ours = hft_netgraph::disjoint_shortest_pair(&g, s, t, |_, w| *w);
        let oracle = brute_best_pair(&g, s, t);
        match (ours, oracle) {
            (None, None) => {}
            (Some(p), Some(best)) => {
                prop_assert!((p.total_cost() - best).abs() < 1e-9,
                    "suurballe {} vs oracle {best}", p.total_cost());
                // Disjointness invariant.
                let f: HashSet<_> = p.first.iter().collect();
                prop_assert!(p.second.iter().all(|e| !f.contains(e)));
            }
            (a, b) => prop_assert!(false, "existence mismatch: ours={:?} oracle={:?}", a.map(|p| p.total_cost()), b),
        }
    }
}
