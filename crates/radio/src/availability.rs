//! Per-link outage models and weather-state sampling.
//!
//! Ties the propagation models together for the §5 reliability experiment:
//! a link fails when rain plus multipath fading exceeds its clear-air fade
//! margin. Sampling corridor-wide weather events then yields distributions
//! of *conditional* network latency — the quantity on which a
//! high-redundancy network (Webline Holdings) can beat a shorter-path one
//! (New Line Networks).

use crate::linkbudget::LinkBudget;
use crate::multipath::multipath_outage_probability;
use crate::rain::rain_attenuation_db;
use rand::Rng;

/// Outage model for one microwave link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOutageModel {
    /// Path length, km.
    pub length_km: f64,
    /// Operating frequency, GHz.
    pub freq_ghz: f64,
    /// Radio parameters.
    pub budget: LinkBudget,
}

impl LinkOutageModel {
    /// Model with the [`LinkBudget::typical_hft`] radio.
    pub fn typical(length_km: f64, freq_ghz: f64) -> LinkOutageModel {
        LinkOutageModel {
            length_km,
            freq_ghz,
            budget: LinkBudget::typical_hft(),
        }
    }

    /// Clear-air fade margin, dB.
    pub fn fade_margin_db(&self) -> f64 {
        self.budget.fade_margin_db(self.freq_ghz, self.length_km)
    }

    /// Whether the link stays up under rain rate `rain_mm_h`:
    /// rain attenuation must leave the margin positive.
    pub fn up_under_rain(&self, rain_mm_h: f64) -> bool {
        rain_attenuation_db(self.freq_ghz, self.length_km, rain_mm_h) < self.fade_margin_db()
    }

    /// Residual margin (dB) under rain rate `rain_mm_h`; negative = outage.
    pub fn residual_margin_db(&self, rain_mm_h: f64) -> f64 {
        self.fade_margin_db() - rain_attenuation_db(self.freq_ghz, self.length_km, rain_mm_h)
    }

    /// Probability of a clear-air multipath outage (no rain), i.e. fading
    /// through the entire margin.
    pub fn multipath_outage_probability(&self) -> f64 {
        multipath_outage_probability(self.freq_ghz, self.length_km, self.fade_margin_db())
    }

    /// The critical rain rate (mm/h) at which the link fails, found by
    /// bisection; `None` if the link survives even 200 mm/h (tropical
    /// cloudburst — effectively never on this corridor).
    pub fn critical_rain_rate(&self) -> Option<f64> {
        let margin = self.fade_margin_db();
        if margin <= 0.0 {
            return Some(0.0);
        }
        let attenuation = |r: f64| rain_attenuation_db(self.freq_ghz, self.length_km, r);
        if attenuation(200.0) < margin {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, 200.0f64);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if attenuation(mid) < margin {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some((lo + hi) / 2.0)
    }
}

/// One sampled corridor weather event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherEvent {
    /// Center of the rain cell as a fraction `0..1` of corridor length.
    pub center: f64,
    /// Half-width of the cell, same fractional units.
    pub half_width: f64,
    /// Peak rain rate at the cell center, mm/h.
    pub peak_mm_h: f64,
}

impl WeatherEvent {
    /// Rain rate at fractional corridor position `x`, with a triangular
    /// profile falling from the peak at the center to zero at the edges.
    pub fn rain_at(&self, x: f64) -> f64 {
        let d = (x - self.center).abs();
        if d >= self.half_width || self.half_width <= 0.0 {
            0.0
        } else {
            self.peak_mm_h * (1.0 - d / self.half_width)
        }
    }
}

/// Samples corridor weather states: clear skies most of the time, with
/// occasional rain cells of varying intensity placed along the corridor.
#[derive(Debug, Clone, Copy)]
pub struct WeatherSampler {
    /// Probability that a sampled state has any rain at all.
    pub rain_probability: f64,
    /// Scale (mean) of the exponentially distributed peak rain rate, mm/h.
    pub mean_peak_mm_h: f64,
    /// Maximum cell half-width as a fraction of the corridor.
    pub max_half_width: f64,
}

impl Default for WeatherSampler {
    /// Midwestern-corridor defaults: rain somewhere on the 1,200 km
    /// corridor in ~25% of states, mean peak 18 mm/h (with an
    /// exponential tail into violent-storm territory), cells up to ~8% of
    /// the corridor (~100 km) across.
    fn default() -> Self {
        WeatherSampler {
            rain_probability: 0.25,
            mean_peak_mm_h: 18.0,
            max_half_width: 0.08,
        }
    }
}

impl WeatherSampler {
    /// A convective-season distribution for tail-latency analysis: rain
    /// somewhere on the corridor in 40% of states, heavier cells (mean
    /// peak 28 mm/h) up to ~12% of the corridor across. Use this to study
    /// the §5 "who is faster in *bad* weather" question, where the mild
    /// [`WeatherSampler::default`] rarely breaks a well-engineered link.
    pub fn stormy_season() -> WeatherSampler {
        WeatherSampler {
            rain_probability: 0.40,
            mean_peak_mm_h: 28.0,
            max_half_width: 0.12,
        }
    }

    /// Sample a weather state: `None` = clear skies.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<WeatherEvent> {
        if rng.gen::<f64>() >= self.rain_probability {
            return None;
        }
        let center = rng.gen::<f64>();
        let half_width = rng.gen::<f64>() * self.max_half_width;
        // Exponential via inverse CDF; bounded to a physical ceiling.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let peak = (-u.ln() * self.mean_peak_mm_h).min(150.0);
        Some(WeatherEvent {
            center,
            half_width,
            peak_mm_h: peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn margin_decides_survival() {
        let link = LinkOutageModel::typical(48.5, 11.2);
        assert!(link.up_under_rain(0.0));
        assert!(!link.up_under_rain(150.0));
    }

    #[test]
    fn short_low_band_link_tougher_than_long_high_band() {
        let wh = LinkOutageModel::typical(36.0, 6.2);
        let nln = LinkOutageModel::typical(48.5, 11.2);
        let r_wh = wh.critical_rain_rate();
        let r_nln = nln
            .critical_rain_rate()
            .expect("11 GHz 48 km link must fail somewhere");
        match r_wh {
            None => {} // 6 GHz link survives everything we model — fine.
            Some(r_wh) => assert!(r_wh > r_nln, "wh fails at {r_wh}, nln at {r_nln}"),
        }
    }

    #[test]
    fn residual_margin_signs() {
        let link = LinkOutageModel::typical(40.0, 11.0);
        assert!(link.residual_margin_db(0.0) > 0.0);
        let crit = link.critical_rain_rate().unwrap();
        assert!(link.residual_margin_db(crit + 5.0) < 0.0);
        assert!(link.residual_margin_db(crit - 5.0) > 0.0);
    }

    #[test]
    fn critical_rate_is_a_fixed_point() {
        let link = LinkOutageModel::typical(45.0, 11.0);
        let crit = link.critical_rain_rate().unwrap();
        assert!(
            link.residual_margin_db(crit).abs() < 0.01,
            "margin at crit = {}",
            link.residual_margin_db(crit)
        );
    }

    #[test]
    fn multipath_outage_small_but_positive() {
        let link = LinkOutageModel::typical(48.5, 11.2);
        let p = link.multipath_outage_probability();
        assert!(p > 0.0 && p < 0.01, "got {p}");
    }

    #[test]
    fn weather_event_profile() {
        let e = WeatherEvent {
            center: 0.5,
            half_width: 0.1,
            peak_mm_h: 40.0,
        };
        assert_eq!(e.rain_at(0.5), 40.0);
        assert_eq!(e.rain_at(0.61), 0.0);
        assert_eq!(e.rain_at(0.39), 0.0);
        let mid = e.rain_at(0.55);
        assert!((mid - 20.0).abs() < 1e-9);
        assert_eq!(e.rain_at(0.3), 0.0);
    }

    #[test]
    fn degenerate_cell_has_no_rain_off_center() {
        let e = WeatherEvent {
            center: 0.5,
            half_width: 0.0,
            peak_mm_h: 40.0,
        };
        assert_eq!(e.rain_at(0.5), 0.0);
    }

    #[test]
    fn sampler_rain_fraction_matches_probability() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let s = WeatherSampler::default();
        let n = 20_000;
        let rainy = (0..n).filter(|_| s.sample(&mut rng).is_some()).count();
        let frac = rainy as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn sampler_events_within_bounds() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let s = WeatherSampler::default();
        for _ in 0..5_000 {
            if let Some(e) = s.sample(&mut rng) {
                assert!((0.0..=1.0).contains(&e.center));
                assert!((0.0..=s.max_half_width).contains(&e.half_width));
                assert!(e.peak_mm_h > 0.0 && e.peak_mm_h <= 150.0);
            }
        }
    }

    #[test]
    fn sampler_deterministic_under_seed() {
        let s = WeatherSampler::default();
        let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut b = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
