//! Clear-air multipath fading occurrence.
//!
//! Follows the shape of the ITU-R P.530 small-percentage deep-fade model:
//! the probability that multipath fading exceeds a fade depth `A` (dB) on
//! an overland link is
//!
//! `p = K · d³·⁰ · f^0.8 · 10^(−A/10)` (as a fraction of the worst month)
//!
//! with `d` in km and `f` in GHz, and `K` a geoclimatic factor. The cubic
//! distance dependence is why HFT designers prefer many short hops over a
//! few long ones even before rain enters the picture.

/// Geoclimatic factor for temperate continental plains (midwest US),
/// chosen so a 50 km 6 GHz link with a 40 dB margin sees deep fades a few
/// hundredths of a percent of the time.
const K_GEOCLIMATIC: f64 = 1.6e-6;

/// Probability (fraction of time, `0..=1`) that clear-air multipath fading
/// exceeds `fade_depth_db` on a link of `d_km` km at `f_ghz` GHz.
///
/// Clamped to `[0, 1]`; a non-positive fade depth means the link is
/// *always* below that threshold (probability 1).
pub fn multipath_outage_probability(f_ghz: f64, d_km: f64, fade_depth_db: f64) -> f64 {
    if d_km <= 0.0 || f_ghz <= 0.0 {
        return 0.0;
    }
    if fade_depth_db <= 0.0 {
        return 1.0;
    }
    let p = K_GEOCLIMATIC * d_km.powf(3.0) * f_ghz.powf(0.8) * 10f64.powf(-fade_depth_db / 10.0);
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_fades_are_rare_on_well_designed_links() {
        let p = multipath_outage_probability(6.0, 50.0, 40.0);
        assert!(p > 0.0 && p < 1e-3, "got {p}");
    }

    #[test]
    fn probability_grows_cubically_with_distance() {
        let p1 = multipath_outage_probability(6.0, 20.0, 30.0);
        let p2 = multipath_outage_probability(6.0, 40.0, 30.0);
        assert!((p2 / p1 - 8.0).abs() < 1e-6, "ratio {}", p2 / p1);
    }

    #[test]
    fn each_10db_of_margin_buys_10x() {
        let p30 = multipath_outage_probability(11.0, 45.0, 30.0);
        let p40 = multipath_outage_probability(11.0, 45.0, 40.0);
        assert!((p30 / p40 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_behaviour() {
        assert_eq!(multipath_outage_probability(6.0, 0.0, 30.0), 0.0);
        assert_eq!(multipath_outage_probability(0.0, 50.0, 30.0), 0.0);
        assert_eq!(multipath_outage_probability(6.0, 50.0, 0.0), 1.0);
        assert_eq!(multipath_outage_probability(6.0, 50.0, -5.0), 1.0);
    }

    #[test]
    fn clamped_to_unit_interval() {
        // Absurdly long link with no margin.
        let p = multipath_outage_probability(18.0, 500.0, 0.5);
        assert!(p <= 1.0);
    }

    #[test]
    fn higher_frequency_fades_more() {
        let p6 = multipath_outage_probability(6.0, 40.0, 30.0);
        let p11 = multipath_outage_probability(11.0, 40.0, 30.0);
        assert!(p11 > p6);
    }
}
