//! # hft-radio
//!
//! Microwave-radio substrate for the reliability analysis of §5 of the
//! IMC'20 paper. The paper *cites* the ITU-R propagation recommendations
//! (P.530 for line-of-sight design, P.838 for rain specific attenuation)
//! to argue that shorter links and lower frequencies are more reliable;
//! this crate implements those models so the argument becomes a runnable
//! experiment:
//!
//! * [`bands`] — FCC Part 101-style fixed-microwave band plans and channel
//!   assignment (the 6, 11, 18 and 23 GHz bands seen in HFT filings);
//! * [`rain`] — ITU-R P.838-style specific attenuation `γ = k·Rᵅ` and the
//!   P.530-style effective-path-length reduction;
//! * [`multipath`] — clear-air multipath fade occurrence for small fade
//!   margins;
//! * [`linkbudget`] — free-space path loss and fade-margin computation;
//! * [`availability`] — per-link outage probability under a rain-rate
//!   distribution, and weather-state sampling for Monte Carlo analysis of
//!   whole networks;
//! * [`climate`] — annual availability from a rain climatology.
//!
//! ```
//! use hft_radio::{LinkOutageModel, RainClimate, link_annual_availability};
//!
//! // A Webline-style hop (36 km at 6.2 GHz) vs an NLN-style hop
//! // (48.5 km at 11.2 GHz): the §5 reliability ordering.
//! let climate = RainClimate::continental_temperate();
//! let short_low = link_annual_availability(&LinkOutageModel::typical(36.0, 6.2), &climate);
//! let long_high = link_annual_availability(&LinkOutageModel::typical(48.5, 11.2), &climate);
//! assert!(short_low > long_high);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod bands;
pub mod climate;
pub mod linkbudget;
pub mod multipath;
pub mod rain;

pub use availability::{LinkOutageModel, WeatherEvent, WeatherSampler};
pub use bands::{Band, BandPlan, Channel, GHZ, MHZ};
pub use climate::{link_annual_availability, path_annual_availability, RainClimate};
pub use linkbudget::{fade_margin_db, free_space_path_loss_db, LinkBudget};
pub use multipath::multipath_outage_probability;
pub use rain::{effective_path_length_km, rain_attenuation_db, specific_attenuation_db_per_km};
