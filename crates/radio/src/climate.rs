//! Annual availability from a rain-rate climatology.
//!
//! The ITU-R design flow sizes a link's fade margin against the rain rate
//! exceeded 0.01% of an average year. We model the corridor's climate as
//! a wet-time fraction with an exponential rate distribution within wet
//! periods — coarse, but it orders links by length/frequency exactly the
//! way the recommendations do, which is what the §5 analysis needs.

use crate::availability::LinkOutageModel;

/// A rain-rate climatology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RainClimate {
    /// Fraction of the year with any rain at a point (0..1).
    pub wet_fraction: f64,
    /// Mean rain rate during wet periods, mm/h (exponential tail).
    pub mean_rate_mm_h: f64,
}

impl RainClimate {
    /// Temperate continental plains (the Chicago–NJ corridor): raining
    /// ~6% of the time with a 4 mm/h mean — which puts the 0.01%-of-year
    /// exceedance near 25–35 mm/h, consistent with ITU rain region K.
    pub fn continental_temperate() -> RainClimate {
        RainClimate {
            wet_fraction: 0.06,
            mean_rate_mm_h: 4.0,
        }
    }

    /// Probability (fraction of the year) that the point rain rate
    /// exceeds `rate_mm_h`.
    pub fn exceedance(&self, rate_mm_h: f64) -> f64 {
        if rate_mm_h <= 0.0 {
            return self.wet_fraction;
        }
        self.wet_fraction * (-rate_mm_h / self.mean_rate_mm_h).exp()
    }

    /// The rain rate exceeded `p` fraction of the year (inverse of
    /// [`RainClimate::exceedance`]); `None` when `p` ≥ the wet fraction
    /// (any positive rate is exceeded less often than that).
    pub fn rate_exceeded(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p >= self.wet_fraction {
            return None;
        }
        Some(-self.mean_rate_mm_h * (p / self.wet_fraction).ln())
    }
}

/// Annual availability of one link under a climate: one minus the time
/// rain fades it out, minus the clear-air multipath outage time.
pub fn link_annual_availability(link: &LinkOutageModel, climate: &RainClimate) -> f64 {
    let rain_outage = match link.critical_rain_rate() {
        Some(critical) => climate.exceedance(critical),
        None => 0.0,
    };
    (1.0 - rain_outage - link.multipath_outage_probability()).clamp(0.0, 1.0)
}

/// Availability of a whole path: the product over its links (independent
/// outages — conservative for rain, which correlates neighbours, but the
/// standard first-order model).
pub fn path_annual_availability<'a>(
    links: impl IntoIterator<Item = &'a LinkOutageModel>,
    climate: &RainClimate,
) -> f64 {
    links
        .into_iter()
        .map(|l| link_annual_availability(l, climate))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceedance_is_monotone_and_bounded() {
        let c = RainClimate::continental_temperate();
        assert_eq!(c.exceedance(0.0), c.wet_fraction);
        let mut prev = 1.0;
        for r in [1.0, 5.0, 20.0, 50.0, 100.0] {
            let p = c.exceedance(r);
            assert!(p < prev && p > 0.0);
            prev = p;
        }
    }

    #[test]
    fn r001_in_itu_region_k_ballpark() {
        // Rain region K (US midwest): R_0.01% ≈ 42 mm/h; our coarse model
        // should land in the same decade.
        let c = RainClimate::continental_temperate();
        let r001 = c.rate_exceeded(0.0001).unwrap();
        assert!((20.0..60.0).contains(&r001), "got {r001}");
    }

    #[test]
    fn rate_exceeded_inverts_exceedance() {
        let c = RainClimate::continental_temperate();
        for p in [0.01, 0.001, 0.0001] {
            let r = c.rate_exceeded(p).unwrap();
            assert!((c.exceedance(r) - p).abs() < 1e-12);
        }
        assert!(c.rate_exceeded(0.5).is_none());
        assert!(c.rate_exceeded(0.0).is_none());
    }

    #[test]
    fn well_designed_links_hit_four_nines() {
        // The §5 workhorse links must be highly available in this climate.
        let c = RainClimate::continental_temperate();
        let wh = LinkOutageModel::typical(36.0, 6.2);
        let nln = LinkOutageModel::typical(48.5, 11.2);
        assert!(link_annual_availability(&wh, &c) > 0.9999);
        assert!(
            link_annual_availability(&nln, &c) > 0.998,
            "multipath-dominated but still high"
        );
    }

    #[test]
    fn shorter_lower_band_links_are_more_available() {
        let c = RainClimate::continental_temperate();
        let wh = LinkOutageModel::typical(36.0, 6.2);
        let nln = LinkOutageModel::typical(48.5, 11.2);
        assert!(
            link_annual_availability(&wh, &c) > link_annual_availability(&nln, &c),
            "the §5 ordering"
        );
    }

    #[test]
    fn path_availability_is_product() {
        let c = RainClimate::continental_temperate();
        let links: Vec<LinkOutageModel> = (0..24)
            .map(|_| LinkOutageModel::typical(48.5, 11.2))
            .collect();
        let path = path_annual_availability(links.iter(), &c);
        let single = link_annual_availability(&links[0], &c);
        assert!((path - single.powi(24)).abs() < 1e-12);
        assert!(path < single);
    }

    #[test]
    fn whole_route_comparison_matches_section5() {
        // WH's 26-hop short/6 GHz route vs NLN's 24-hop long/11 GHz route:
        // per-route annual availability must favor WH despite more hops.
        let c = RainClimate::continental_temperate();
        let wh: Vec<LinkOutageModel> = (0..26)
            .map(|_| LinkOutageModel::typical(45.8, 6.2))
            .collect();
        let nln: Vec<LinkOutageModel> = (0..24)
            .map(|_| LinkOutageModel::typical(49.4, 11.2))
            .collect();
        let a_wh = path_annual_availability(wh.iter(), &c);
        let a_nln = path_annual_availability(nln.iter(), &c);
        assert!(a_wh > a_nln, "WH route {a_wh} vs NLN route {a_nln}");
    }

    #[test]
    fn degenerate_inputs() {
        let c = RainClimate::continental_temperate();
        // A hopeless link (enormous hop at 18 GHz) still yields a valid
        // probability.
        let bad = LinkOutageModel::typical(150.0, 18.0);
        let a = link_annual_availability(&bad, &c);
        assert!((0.0..=1.0).contains(&a));
        // Empty path: vacuous product = 1.
        assert_eq!(path_annual_availability([].iter(), &c), 1.0);
    }
}
