//! FCC fixed-microwave band plans and channel assignment.
//!
//! HFT networks on the Chicago–NJ corridor file licenses in a handful of
//! Part 101 fixed-service bands. The paper's Fig. 4b shows Webline
//! Holdings concentrated in the ~6 GHz band and New Line Networks in the
//! ~11 GHz band; this module models those bands with realistic edges and
//! channel rasters so synthetic license generation can assign plausible,
//! interference-free frequencies.

use core::fmt;

/// One hertz-denominated megahertz, for readability of frequency literals.
pub const MHZ: f64 = 1.0e6;
/// One gigahertz in hertz.
pub const GHZ: f64 = 1.0e9;

/// A named fixed-service band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// Lower 6 GHz (5925–6425 MHz): long-haul workhorse, best rain
    /// performance, 30 MHz raster.
    L6GHz,
    /// Upper 6 GHz (6525–6875 MHz): 10 MHz raster in our plan.
    U6GHz,
    /// 11 GHz (10700–11700 MHz): shorter hops, 40 MHz raster.
    B11GHz,
    /// 18 GHz (17700–19700 MHz): short hops, rain-limited, 50 MHz raster.
    B18GHz,
    /// 23 GHz (21200–23600 MHz): very short hops, 50 MHz raster.
    B23GHz,
}

impl Band {
    /// All modeled bands, ascending in frequency.
    pub const ALL: [Band; 5] = [
        Band::L6GHz,
        Band::U6GHz,
        Band::B11GHz,
        Band::B18GHz,
        Band::B23GHz,
    ];

    /// Band edges `(low, high)` in Hz.
    pub fn edges_hz(self) -> (f64, f64) {
        match self {
            Band::L6GHz => (5_925.0 * MHZ, 6_425.0 * MHZ),
            Band::U6GHz => (6_525.0 * MHZ, 6_875.0 * MHZ),
            Band::B11GHz => (10_700.0 * MHZ, 11_700.0 * MHZ),
            Band::B18GHz => (17_700.0 * MHZ, 19_700.0 * MHZ),
            Band::B23GHz => (21_200.0 * MHZ, 23_600.0 * MHZ),
        }
    }

    /// Channel raster (spacing) in Hz.
    pub fn channel_spacing_hz(self) -> f64 {
        match self {
            Band::L6GHz => 30.0 * MHZ,
            Band::U6GHz => 10.0 * MHZ,
            Band::B11GHz => 40.0 * MHZ,
            Band::B18GHz | Band::B23GHz => 50.0 * MHZ,
        }
    }

    /// Nominal center frequency in GHz (used for propagation models).
    pub fn center_ghz(self) -> f64 {
        let (lo, hi) = self.edges_hz();
        (lo + hi) / 2.0 / GHZ
    }

    /// Classify a frequency (Hz) into its band, if it falls inside one.
    pub fn classify_hz(freq_hz: f64) -> Option<Band> {
        Band::ALL.into_iter().find(|b| {
            let (lo, hi) = b.edges_hz();
            (lo..=hi).contains(&freq_hz)
        })
    }

    /// Number of whole channels the band fits.
    pub fn channel_count(self) -> usize {
        let (lo, hi) = self.edges_hz();
        ((hi - lo) / self.channel_spacing_hz()).floor() as usize
    }
}

impl fmt::Display for Band {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Band::L6GHz => "L6",
            Band::U6GHz => "U6",
            Band::B11GHz => "11G",
            Band::B18GHz => "18G",
            Band::B23GHz => "23G",
        })
    }
}

/// A concrete channel within a band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// The band the channel belongs to.
    pub band: Band,
    /// Zero-based channel index within the band.
    pub index: usize,
    /// Center frequency in Hz.
    pub center_hz: f64,
}

/// A band plan: deterministic channel raster generation and round-robin
/// assignment that avoids reusing a channel at the same tower (the
/// first-order interference constraint a frequency coordinator enforces).
#[derive(Debug, Clone)]
pub struct BandPlan {
    band: Band,
    channels: Vec<f64>,
}

impl BandPlan {
    /// Build the raster for `band`: channel centers spaced by the raster,
    /// offset half a step from the lower edge.
    pub fn new(band: Band) -> BandPlan {
        let (lo, _hi) = band.edges_hz();
        let step = band.channel_spacing_hz();
        let n = band.channel_count();
        let channels = (0..n).map(|i| lo + step / 2.0 + i as f64 * step).collect();
        BandPlan { band, channels }
    }

    /// The band this plan covers.
    pub fn band(&self) -> Band {
        self.band
    }

    /// All channel center frequencies, Hz, ascending.
    pub fn channels_hz(&self) -> &[f64] {
        &self.channels
    }

    /// The `i`-th channel (wrapping), as a [`Channel`].
    pub fn channel(&self, i: usize) -> Channel {
        let index = i % self.channels.len();
        Channel {
            band: self.band,
            index,
            center_hz: self.channels[index],
        }
    }

    /// Assign channels to the links of a chain such that consecutive links
    /// (sharing a tower) never reuse a channel: alternates between two
    /// well-separated raster positions, advancing every other hop — the
    /// classic "high/low" plan.
    pub fn assign_chain(&self, links: usize) -> Vec<Channel> {
        let half = (self.channels.len() / 2).max(1);
        (0..links)
            .map(|i| {
                let idx = if i % 2 == 0 {
                    (i / 2) % half
                } else {
                    half + (i / 2) % half
                };
                self.channel(idx.min(self.channels.len() - 1))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_ordered_and_disjoint() {
        let mut prev_hi = 0.0;
        for b in Band::ALL {
            let (lo, hi) = b.edges_hz();
            assert!(lo < hi, "{b}");
            assert!(lo >= prev_hi, "bands overlap at {b}");
            prev_hi = hi;
        }
    }

    #[test]
    fn classify_center_frequencies() {
        for b in Band::ALL {
            assert_eq!(Band::classify_hz(b.center_ghz() * GHZ), Some(b));
        }
    }

    #[test]
    fn classify_out_of_band() {
        assert_eq!(Band::classify_hz(1.0 * GHZ), None);
        assert_eq!(Band::classify_hz(6.45 * GHZ), None); // between L6 and U6
        assert_eq!(Band::classify_hz(30.0 * GHZ), None);
    }

    #[test]
    fn l6_channel_count() {
        // 500 MHz / 30 MHz = 16 whole channels.
        assert_eq!(Band::L6GHz.channel_count(), 16);
        assert_eq!(Band::B11GHz.channel_count(), 25);
    }

    #[test]
    fn raster_inside_band() {
        for b in Band::ALL {
            let plan = BandPlan::new(b);
            let (lo, hi) = b.edges_hz();
            for &c in plan.channels_hz() {
                assert!(c > lo && c < hi, "{b} channel {c} outside edges");
                assert_eq!(Band::classify_hz(c), Some(b));
            }
        }
    }

    #[test]
    fn raster_is_evenly_spaced() {
        let plan = BandPlan::new(Band::L6GHz);
        let ch = plan.channels_hz();
        for w in ch.windows(2) {
            assert!((w[1] - w[0] - Band::L6GHz.channel_spacing_hz()).abs() < 1.0);
        }
    }

    #[test]
    fn chain_assignment_never_repeats_at_shared_tower() {
        for b in Band::ALL {
            let plan = BandPlan::new(b);
            let chans = plan.assign_chain(40);
            for w in chans.windows(2) {
                assert_ne!(
                    w[0].center_hz, w[1].center_hz,
                    "adjacent links share channel in {b}"
                );
            }
        }
    }

    #[test]
    fn chain_assignment_length() {
        let plan = BandPlan::new(Band::B11GHz);
        assert_eq!(plan.assign_chain(0).len(), 0);
        assert_eq!(plan.assign_chain(7).len(), 7);
    }

    #[test]
    fn channel_wraps() {
        let plan = BandPlan::new(Band::L6GHz);
        let n = plan.channels_hz().len();
        assert_eq!(plan.channel(n).center_hz, plan.channel(0).center_hz);
    }

    #[test]
    fn centers_match_fig4b_axis() {
        // Fig. 4b's x-axis runs 4–18 GHz; our primary bands sit inside it.
        assert!((4.0..18.0).contains(&Band::L6GHz.center_ghz()));
        assert!((4.0..18.0).contains(&Band::B11GHz.center_ghz()));
    }
}
