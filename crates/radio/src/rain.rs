//! Rain attenuation following the structure of ITU-R P.838 / P.530.
//!
//! Specific attenuation is the power-law `γ = k·Rᵅ` dB/km where `R` is the
//! rain rate in mm/h. The regression coefficients `k` and `α` vary with
//! frequency; we tabulate representative horizontal-polarization values on
//! a coarse frequency grid and interpolate (log-k linearly in log-f, α
//! linearly in log-f), which reproduces the qualitative behaviour the
//! paper relies on: attenuation grows steeply with frequency, making
//! 6 GHz links far more rain-robust than 11 or 18 GHz links.

/// Coefficient table rows: (frequency GHz, k, α), horizontal polarization,
/// following the magnitudes of the P.838-3 regression constants.
const COEFFS: [(f64, f64, f64); 9] = [
    (1.0, 0.0000259, 0.9691),
    (2.0, 0.0000847, 1.0664),
    (4.0, 0.0001071, 1.6009),
    (6.0, 0.001915, 1.4810),
    (8.0, 0.004115, 1.3905),
    (10.0, 0.01217, 1.2571),
    (12.0, 0.02386, 1.1825),
    (18.0, 0.07078, 1.0818),
    (25.0, 0.1571, 1.0000),
];

/// Specific rain attenuation `γ` in dB/km at `freq_ghz` for rain rate
/// `rain_mm_h` (mm/h). Clamps frequency to the table range `[1, 25]` GHz.
///
/// Zero or negative rain rate yields zero attenuation.
pub fn specific_attenuation_db_per_km(freq_ghz: f64, rain_mm_h: f64) -> f64 {
    if rain_mm_h <= 0.0 {
        return 0.0;
    }
    let f = freq_ghz.clamp(COEFFS[0].0, COEFFS[COEFFS.len() - 1].0);
    // Locate bracketing rows.
    let mut i = 0;
    while i + 2 < COEFFS.len() && COEFFS[i + 1].0 < f {
        i += 1;
    }
    let (f0, k0, a0) = COEFFS[i];
    let (f1, k1, a1) = COEFFS[i + 1];
    let t = if f1 > f0 {
        (f.ln() - f0.ln()) / (f1.ln() - f0.ln())
    } else {
        0.0
    };
    let k = (k0.ln() + t * (k1.ln() - k0.ln())).exp();
    let alpha = a0 + t * (a1 - a0);
    k * rain_mm_h.powf(alpha)
}

/// Effective path length (km) for rain attenuation per the P.530-style
/// reduction: rain cells are a few km across, so long paths are never
/// entirely inside a cell. `d_eff = d / (1 + d/d0)` with
/// `d0 = 35·e^(−0.015·R)` km.
pub fn effective_path_length_km(path_km: f64, rain_mm_h: f64) -> f64 {
    if path_km <= 0.0 {
        return 0.0;
    }
    let d0 = 35.0 * (-0.015 * rain_mm_h.min(100.0)).exp();
    path_km / (1.0 + path_km / d0)
}

/// Total rain attenuation in dB over a link of `path_km` km at `freq_ghz`
/// under rain rate `rain_mm_h`.
pub fn rain_attenuation_db(freq_ghz: f64, path_km: f64, rain_mm_h: f64) -> f64 {
    specific_attenuation_db_per_km(freq_ghz, rain_mm_h)
        * effective_path_length_km(path_km, rain_mm_h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rain_zero_attenuation() {
        assert_eq!(specific_attenuation_db_per_km(6.0, 0.0), 0.0);
        assert_eq!(rain_attenuation_db(11.0, 50.0, 0.0), 0.0);
        assert_eq!(specific_attenuation_db_per_km(6.0, -3.0), 0.0);
    }

    #[test]
    fn attenuation_grows_with_frequency() {
        let r = 40.0; // heavy rain
        let g6 = specific_attenuation_db_per_km(6.0, r);
        let g11 = specific_attenuation_db_per_km(11.0, r);
        let g18 = specific_attenuation_db_per_km(18.0, r);
        assert!(g6 < g11 && g11 < g18, "γ6={g6} γ11={g11} γ18={g18}");
        // 11 GHz is several times worse than 6 GHz — the crux of §5.
        assert!(g11 / g6 > 3.0, "ratio {}", g11 / g6);
    }

    #[test]
    fn attenuation_grows_with_rain_rate() {
        let mut prev = 0.0;
        for r in [1.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
            let g = specific_attenuation_db_per_km(11.0, r);
            assert!(g > prev);
            prev = g;
        }
    }

    #[test]
    fn tabulated_rows_are_reproduced() {
        // At exactly a table frequency the interpolation must return the row.
        let g = specific_attenuation_db_per_km(6.0, 1.0);
        assert!((g - 0.001915).abs() < 1e-9, "got {g}");
    }

    #[test]
    fn magnitudes_plausible_at_heavy_rain() {
        // 18 GHz at 50 mm/h should be several dB/km (rain-limited band);
        // 6 GHz should stay below ~1 dB/km.
        let g18 = specific_attenuation_db_per_km(18.0, 50.0);
        let g6 = specific_attenuation_db_per_km(6.0, 50.0);
        assert!(g18 > 3.0, "g18={g18}");
        assert!(g6 < 1.0, "g6={g6}");
    }

    #[test]
    fn clamps_out_of_range_frequencies() {
        let lo = specific_attenuation_db_per_km(0.5, 30.0);
        let at1 = specific_attenuation_db_per_km(1.0, 30.0);
        assert!((lo - at1).abs() < 1e-12);
        let hi = specific_attenuation_db_per_km(40.0, 30.0);
        let at25 = specific_attenuation_db_per_km(25.0, 30.0);
        assert!((hi - at25).abs() < 1e-12);
    }

    #[test]
    fn effective_length_shrinks_long_paths() {
        let short = effective_path_length_km(5.0, 30.0);
        assert!(short > 4.0 && short <= 5.0);
        let long = effective_path_length_km(100.0, 30.0);
        assert!(long < 100.0 * 0.3, "long path barely reduced: {long}");
        assert_eq!(effective_path_length_km(0.0, 30.0), 0.0);
    }

    #[test]
    fn effective_length_monotone_in_path() {
        let mut prev = 0.0;
        for d in [1.0, 5.0, 20.0, 50.0, 100.0] {
            let e = effective_path_length_km(d, 25.0);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn heavier_rain_means_smaller_cells() {
        assert!(effective_path_length_km(50.0, 80.0) < effective_path_length_km(50.0, 5.0));
    }

    #[test]
    fn total_attenuation_composition() {
        let f = 11.0;
        let d = 48.5; // NLN's median link length
        let r = 40.0;
        let total = rain_attenuation_db(f, d, r);
        let manual = specific_attenuation_db_per_km(f, r) * effective_path_length_km(d, r);
        assert!((total - manual).abs() < 1e-12);
        assert!(
            total > 10.0,
            "a long 11 GHz link in heavy rain should fade hard: {total} dB"
        );
    }

    #[test]
    fn short_low_freq_link_survives_what_kills_long_high_freq() {
        // WH-style link: 36 km at 6.2 GHz. NLN-style link: 48.5 km at 11.2 GHz.
        let r = 35.0;
        let wh = rain_attenuation_db(6.2, 36.0, r);
        let nln = rain_attenuation_db(11.2, 48.5, r);
        assert!(nln > 2.5 * wh, "wh={wh} nln={nln}");
    }
}
