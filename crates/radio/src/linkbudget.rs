//! Free-space path loss and fade margins.

/// Free-space path loss in dB for a link of `d_km` km at `f_ghz` GHz:
/// `FSPL = 92.45 + 20·log10(f) + 20·log10(d)`.
///
/// Returns 0 for non-positive distance or frequency (degenerate link).
pub fn free_space_path_loss_db(f_ghz: f64, d_km: f64) -> f64 {
    if f_ghz <= 0.0 || d_km <= 0.0 {
        return 0.0;
    }
    92.45 + 20.0 * f_ghz.log10() + 20.0 * d_km.log10()
}

/// Parameters of a point-to-point microwave link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Transmit power into the antenna, dBm.
    pub tx_power_dbm: f64,
    /// Transmit antenna gain, dBi.
    pub tx_gain_dbi: f64,
    /// Receive antenna gain, dBi.
    pub rx_gain_dbi: f64,
    /// Receiver sensitivity threshold, dBm (more negative = better).
    pub rx_sensitivity_dbm: f64,
    /// Fixed implementation losses (waveguide, connectors), dB.
    pub misc_loss_db: f64,
}

impl LinkBudget {
    /// A representative long-haul licensed-microwave radio: +30 dBm TX,
    /// 38.9 dBi antennas (8-ft dish at 6 GHz), −72 dBm sensitivity at the
    /// modest modulations HFT shops run for latency, 3 dB fixed losses.
    pub fn typical_hft() -> LinkBudget {
        LinkBudget {
            tx_power_dbm: 30.0,
            tx_gain_dbi: 38.9,
            rx_gain_dbi: 38.9,
            rx_sensitivity_dbm: -72.0,
            misc_loss_db: 3.0,
        }
    }

    /// Received signal level in dBm over a clear-air path.
    pub fn received_dbm(&self, f_ghz: f64, d_km: f64) -> f64 {
        self.tx_power_dbm + self.tx_gain_dbi + self.rx_gain_dbi
            - free_space_path_loss_db(f_ghz, d_km)
            - self.misc_loss_db
    }

    /// Clear-air fade margin in dB: how much extra attenuation (rain,
    /// multipath) the link tolerates before dropping below sensitivity.
    pub fn fade_margin_db(&self, f_ghz: f64, d_km: f64) -> f64 {
        self.received_dbm(f_ghz, d_km) - self.rx_sensitivity_dbm
    }
}

/// Convenience: fade margin of the [`LinkBudget::typical_hft`] radio.
pub fn fade_margin_db(f_ghz: f64, d_km: f64) -> f64 {
    LinkBudget::typical_hft().fade_margin_db(f_ghz, d_km)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_known_value() {
        // 6 GHz over 50 km: 92.45 + 20log10(6) + 20log10(50) ≈ 142.0 dB.
        let l = free_space_path_loss_db(6.0, 50.0);
        assert!((l - 141.99).abs() < 0.05, "got {l}");
    }

    #[test]
    fn fspl_grows_6db_per_doubling() {
        let l1 = free_space_path_loss_db(11.0, 20.0);
        let l2 = free_space_path_loss_db(11.0, 40.0);
        assert!((l2 - l1 - 6.0206).abs() < 1e-3);
        let f1 = free_space_path_loss_db(6.0, 30.0);
        let f2 = free_space_path_loss_db(12.0, 30.0);
        assert!((f2 - f1 - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(free_space_path_loss_db(0.0, 50.0), 0.0);
        assert_eq!(free_space_path_loss_db(6.0, 0.0), 0.0);
        assert_eq!(free_space_path_loss_db(-1.0, -1.0), 0.0);
    }

    #[test]
    fn typical_margin_positive_at_hft_hop_lengths() {
        // Both the WH median (36 km) and NLN median (48.5 km) hops must
        // close with healthy clear-air margin.
        assert!(fade_margin_db(6.2, 36.0) > 25.0);
        assert!(fade_margin_db(11.2, 48.5) > 15.0);
    }

    #[test]
    fn margin_shrinks_with_length_and_frequency() {
        assert!(fade_margin_db(6.0, 30.0) > fade_margin_db(6.0, 60.0));
        assert!(fade_margin_db(6.0, 40.0) > fade_margin_db(18.0, 40.0));
    }

    #[test]
    fn received_level_consistent() {
        let b = LinkBudget::typical_hft();
        let rx = b.received_dbm(6.0, 50.0);
        let manual = 30.0 + 38.9 + 38.9 - free_space_path_loss_db(6.0, 50.0) - 3.0;
        assert!((rx - manual).abs() < 1e-12);
        assert!((b.fade_margin_db(6.0, 50.0) - (rx - (-72.0))).abs() < 1e-12);
    }
}
