//! The deliberately-naive reference interpreter for dump events.
//!
//! [`apply_events`] maintains a plain `Vec<License>` with linear scans —
//! no indices, no copy-on-write, nothing to get wrong. The verification
//! paths replay the same batches through this model and through the real
//! [`crate::apply::Applier`], then compare the applier's incrementally
//! maintained database against `UlsDatabase::from_licenses(model)` built
//! from scratch. Semantics here are the contract; the applier must match
//! them exactly.

use crate::delta::{DumpBatch, DumpEvent};
use hft_uls::License;

/// Fold one batch into a bare license list, mirroring the applier's
/// semantics:
///
/// * `New` appends — unless a license with the call sign already exists
///   or the id collides (conflict: skipped).
/// * `Update` replaces the **latest** filing under the call sign in
///   place — unless none exists, or the new id collides with a
///   *different* license (conflict: skipped).
/// * `Cancel` sets the cancellation date of the latest filing under the
///   call sign — unless none exists (conflict: skipped).
///
/// Returns the number of skipped (conflicting) events.
pub fn apply_events(model: &mut Vec<License>, batch: &DumpBatch) -> usize {
    let mut conflicts = 0;
    for event in &batch.events {
        match event {
            DumpEvent::New(lic) => {
                let call_exists = model.iter().any(|l| l.call_sign == lic.call_sign);
                let id_exists = model.iter().any(|l| l.id == lic.id);
                if call_exists || id_exists {
                    conflicts += 1;
                } else {
                    model.push(lic.clone());
                }
            }
            DumpEvent::Update(lic) => {
                match model.iter().rposition(|l| l.call_sign == lic.call_sign) {
                    Some(pos) => {
                        let id_clash = model
                            .iter()
                            .enumerate()
                            .any(|(i, l)| i != pos && l.id == lic.id);
                        if id_clash {
                            conflicts += 1;
                        } else {
                            model[pos] = lic.clone();
                        }
                    }
                    None => conflicts += 1,
                }
            }
            DumpEvent::Cancel { call_sign, date } => {
                match model.iter().rposition(|l| &l.call_sign == call_sign) {
                    Some(pos) => model[pos].cancellation_date = Some(*date),
                    None => conflicts += 1,
                }
            }
        }
    }
    conflicts
}
