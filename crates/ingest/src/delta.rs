//! The transaction-dump delta codec.
//!
//! A daily dump is a dated batch of call-sign-keyed transactions over
//! the [`hft_uls::flatfile`] record dialect:
//!
//! ```text
//! # anything after '#' is a comment; blank lines are ignored
//! DD|06/17/2015              batch header: the dump date
//! TX|N|WQ00007               new license, followed by its records
//! HD|7|WQ00007|MG|FXO|06/17/2015||
//! EN|7|Webline Holdings
//! LO|7|1|41-45-36.0 N|88-10-12.0 W|230.0|110.0
//! ...
//! TX|U|WQ00003               update: full replacement record group
//! HD|3|WQ00003|MG|FXO|01/05/2014||
//! ...
//! TX|C|WQ00009|06/17/2015    cancel: call sign + cancellation date
//! ```
//!
//! `TX|N` (new) and `TX|U` (update) carry exactly one license's records,
//! decoded by the flat-file codec; `TX|C` (cancel) is a single line. The
//! batch date orders dumps; the per-transaction semantics are applied by
//! [`crate::apply::Applier`].
//!
//! # Quarantine, not abort
//!
//! Real dump feeds contain garbage. A malformed *transaction* — bad `TX`
//! framing, records that fail the flat-file decoder, a body whose call
//! sign contradicts its frame — is quarantined: counted, reported with
//! its line number, and skipped. Only a missing or unparseable `DD`
//! header fails the whole batch ([`BatchError`]), because without a date
//! nothing can be applied.

use hft_time::Date;
use hft_uls::flatfile;
use hft_uls::{CallSign, License};

/// One transaction of a daily dump.
#[derive(Debug, Clone, PartialEq)]
pub enum DumpEvent {
    /// A license newly granted: no license with this call sign may exist.
    New(License),
    /// A full replacement of the latest filing under this call sign.
    Update(License),
    /// Cancellation of the latest filing under `call_sign`, effective
    /// `date`.
    Cancel {
        /// Call sign keying the transaction.
        call_sign: CallSign,
        /// The cancellation date to record.
        date: Date,
    },
}

impl DumpEvent {
    /// The call sign the transaction is keyed on.
    pub fn call_sign(&self) -> &str {
        match self {
            DumpEvent::New(l) | DumpEvent::Update(l) => &l.call_sign.0,
            DumpEvent::Cancel { call_sign, .. } => &call_sign.0,
        }
    }
}

/// A decoded daily dump: the dump date and its transactions in file
/// order (quarantined transactions removed).
#[derive(Debug, Clone, PartialEq)]
pub struct DumpBatch {
    /// The dump date from the `DD` header.
    pub date: Date,
    /// Surviving transactions, in file order.
    pub events: Vec<DumpEvent>,
}

/// Why a transaction (or stray line) was quarantined. The typed form
/// feeds the `ingest.quarantined{reason=...}` counter labels; the
/// free-text [`Quarantined::message`] keeps the specifics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarantineReason {
    /// A `TX|N`/`TX|U` frame with no body records.
    EmptyTransaction,
    /// The body failed the flat-file record decoder.
    BadRecord,
    /// The body decoded to more than one license.
    MultiLicense,
    /// The body's call sign contradicts the `TX` frame's.
    CallSignMismatch,
    /// A `TX|C` cancel carrying body records.
    CancelWithBody,
    /// A `TX|C` cancel whose date does not parse.
    BadCancelDate,
    /// A `TX` line that matches no known frame shape.
    BadFrame,
    /// A record line outside any transaction frame.
    OutsideTransaction,
}

impl QuarantineReason {
    /// The stable snake_case label used in metric names and reports.
    pub fn code(self) -> &'static str {
        match self {
            QuarantineReason::EmptyTransaction => "empty_transaction",
            QuarantineReason::BadRecord => "bad_record",
            QuarantineReason::MultiLicense => "multi_license",
            QuarantineReason::CallSignMismatch => "call_sign_mismatch",
            QuarantineReason::CancelWithBody => "cancel_with_body",
            QuarantineReason::BadCancelDate => "bad_cancel_date",
            QuarantineReason::BadFrame => "bad_frame",
            QuarantineReason::OutsideTransaction => "outside_transaction",
        }
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One quarantined (skipped) region of a dump file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// 1-based line number where the problem was detected.
    pub line: usize,
    /// Number of input lines discarded with it (the whole transaction).
    pub lines: usize,
    /// The typed reason (drives quarantine counter labels).
    pub reason: QuarantineReason,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}: {} ({} line{} quarantined)",
            self.line,
            self.message,
            self.lines,
            if self.lines == 1 { "" } else { "s" }
        )
    }
}

/// The quarantine report of one [`decode_batch`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeReport {
    /// Every quarantined region, in file order.
    pub quarantined: Vec<Quarantined>,
}

impl DecodeReport {
    /// Whether the batch decoded without quarantining anything.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Number of quarantined transactions/records.
    pub fn count(&self) -> usize {
        self.quarantined.len()
    }
}

/// Failure of the batch as a whole: a missing or malformed `DD` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// 1-based line number (0 when the file has no significant lines).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dump batch line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BatchError {}

/// Escape a field for the pipe-delimited dialect (same rule as the
/// flat-file codec: pipes cannot appear inside fields).
fn escape(field: &str) -> String {
    field.replace('|', "/")
}

/// Render a batch in the transaction-dump dialect. [`decode_batch`] of
/// the result round-trips (coordinates at DMS text resolution).
pub fn encode_batch(batch: &DumpBatch) -> String {
    let mut out = String::new();
    out.push_str(&format!("DD|{}\n", batch.date.to_fcc()));
    for event in &batch.events {
        match event {
            DumpEvent::New(lic) => {
                out.push_str(&format!("TX|N|{}\n", escape(&lic.call_sign.0)));
                out.push_str(&flatfile::encode(std::slice::from_ref(lic)));
            }
            DumpEvent::Update(lic) => {
                out.push_str(&format!("TX|U|{}\n", escape(&lic.call_sign.0)));
                out.push_str(&flatfile::encode(std::slice::from_ref(lic)));
            }
            DumpEvent::Cancel { call_sign, date } => {
                out.push_str(&format!(
                    "TX|C|{}|{}\n",
                    escape(&call_sign.0),
                    date.to_fcc()
                ));
            }
        }
    }
    out
}

/// A transaction group being collected: its `TX` line and body lines.
struct TxGroup<'t> {
    /// 1-based line number of the `TX` line.
    tx_line: usize,
    /// The `TX` line's `|`-split fields (starts with `"TX"`).
    fields: Vec<&'t str>,
    /// Body lines with their 1-based line numbers.
    body: Vec<(usize, &'t str)>,
}

/// Decode one daily dump.
///
/// Returns the surviving transactions plus a [`DecodeReport`] listing
/// everything quarantined. Errors only when the `DD` header is missing
/// or unparseable.
pub fn decode_batch(text: &str) -> Result<(DumpBatch, DecodeReport), BatchError> {
    let mut date: Option<Date> = None;
    let mut events = Vec::new();
    let mut report = DecodeReport::default();
    let mut group: Option<TxGroup<'_>> = None;

    let close = |g: TxGroup<'_>, events: &mut Vec<DumpEvent>, report: &mut DecodeReport| {
        match decode_transaction(&g) {
            Ok(event) => events.push(event),
            Err(q) => report.quarantined.push(q),
        }
    };

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if date.is_none() {
            // The first significant line must be the DD header.
            let mut fields = line.split('|');
            match (fields.next(), fields.next(), fields.next()) {
                (Some("DD"), Some(d), None) => match Date::parse_fcc(d) {
                    Ok(d) => {
                        date = Some(d);
                        continue;
                    }
                    Err(e) => {
                        return Err(BatchError {
                            line: lineno,
                            message: format!("bad DD date: {e}"),
                        })
                    }
                },
                _ => {
                    return Err(BatchError {
                        line: lineno,
                        message: format!("expected DD header, found {line:?}"),
                    })
                }
            }
        }
        if line.starts_with("TX|") || line == "TX" {
            if let Some(g) = group.take() {
                close(g, &mut events, &mut report);
            }
            group = Some(TxGroup {
                tx_line: lineno,
                fields: line.split('|').collect(),
                body: Vec::new(),
            });
        } else if let Some(g) = group.as_mut() {
            g.body.push((lineno, raw));
        } else {
            // A record (or a stray second DD header) outside any
            // transaction frame: quarantine the line by itself.
            report.quarantined.push(Quarantined {
                line: lineno,
                lines: 1,
                reason: QuarantineReason::OutsideTransaction,
                message: format!("record outside a TX transaction: {line:?}"),
            });
        }
    }
    if let Some(g) = group.take() {
        close(g, &mut events, &mut report);
    }
    let date = date.ok_or(BatchError {
        line: 0,
        message: "empty dump: no DD header".into(),
    })?;
    // Surface the quarantine tally in the global registry, labeled by
    // typed reason.
    if !report.quarantined.is_empty() {
        let registry = hft_obs::global();
        for q in &report.quarantined {
            registry
                .counter_with("ingest.quarantined", "reason", q.reason.code())
                .incr();
        }
    }
    Ok((DumpBatch { date, events }, report))
}

/// Decode one collected transaction group, or say why it is quarantined.
fn decode_transaction(g: &TxGroup<'_>) -> Result<DumpEvent, Quarantined> {
    let total_lines = 1 + g.body.len();
    let quarantine = |line: usize, reason: QuarantineReason, message: String| Quarantined {
        line,
        lines: total_lines,
        reason,
        message,
    };
    match g.fields.as_slice() {
        ["TX", kind @ ("N" | "U"), call] => {
            if g.body.is_empty() {
                return Err(quarantine(
                    g.tx_line,
                    QuarantineReason::EmptyTransaction,
                    format!("TX|{kind} transaction has no records"),
                ));
            }
            let body_start = g.body[0].0;
            let mut text = String::new();
            for (_, line) in &g.body {
                text.push_str(line);
                text.push('\n');
            }
            let licenses = flatfile::decode(&text).map_err(|e| {
                // The flat-file decoder numbers lines within the body;
                // map back to the dump file.
                quarantine(
                    body_start + e.line - 1,
                    QuarantineReason::BadRecord,
                    e.message,
                )
            })?;
            let lic = match licenses.as_slice() {
                [lic] => lic.clone(),
                many => {
                    return Err(quarantine(
                        g.tx_line,
                        QuarantineReason::MultiLicense,
                        format!("transaction carries {} licenses, expected 1", many.len()),
                    ))
                }
            };
            if lic.call_sign.0 != *call {
                return Err(quarantine(
                    g.tx_line,
                    QuarantineReason::CallSignMismatch,
                    format!(
                        "TX call sign {:?} contradicts record call sign {:?}",
                        call, lic.call_sign.0
                    ),
                ));
            }
            Ok(if *kind == "N" {
                DumpEvent::New(lic)
            } else {
                DumpEvent::Update(lic)
            })
        }
        ["TX", "C", call, date] => {
            if !g.body.is_empty() {
                return Err(quarantine(
                    g.tx_line,
                    QuarantineReason::CancelWithBody,
                    "TX|C transaction carries records".into(),
                ));
            }
            let date = Date::parse_fcc(date).map_err(|e| {
                quarantine(
                    g.tx_line,
                    QuarantineReason::BadCancelDate,
                    format!("bad cancel date: {e}"),
                )
            })?;
            Ok(DumpEvent::Cancel {
                call_sign: CallSign((*call).to_string()),
                date,
            })
        }
        _ => Err(quarantine(
            g.tx_line,
            QuarantineReason::BadFrame,
            format!("malformed TX frame: {:?}", g.fields.join("|")),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hft_geodesy::LatLon;
    use hft_uls::{
        FrequencyAssignment, LicenseId, MicrowavePath, RadioService, StationClass, TowerSite,
    };

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn lic(id: u64, call: &str) -> License {
        let tx = TowerSite::at(LatLon::new(41.76, -88.17).unwrap());
        let rx = TowerSite::at(LatLon::new(41.96, -87.67).unwrap());
        License {
            id: LicenseId(id),
            call_sign: CallSign(call.into()),
            licensee: "Webline Holdings".into(),
            service: RadioService::MG,
            station_class: StationClass::FXO,
            grant_date: d(2015, 6, 17),
            termination_date: None,
            cancellation_date: None,
            paths: vec![MicrowavePath {
                tx,
                rx,
                frequencies: vec![FrequencyAssignment { center_hz: 6.1e9 }],
            }],
        }
    }

    fn sample_batch() -> DumpBatch {
        DumpBatch {
            date: d(2015, 6, 17),
            events: vec![
                DumpEvent::New(lic(7, "WQ00007")),
                DumpEvent::Update(lic(3, "WQ00003")),
                DumpEvent::Cancel {
                    call_sign: CallSign("WQ00009".into()),
                    date: d(2015, 6, 17),
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let batch = sample_batch();
        let text = encode_batch(&batch);
        let (back, report) = decode_batch(&text).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(back.date, batch.date);
        assert_eq!(back.events.len(), 3);
        assert!(matches!(&back.events[0], DumpEvent::New(l) if l.id.0 == 7));
        assert!(matches!(&back.events[1], DumpEvent::Update(l) if l.id.0 == 3));
        assert!(matches!(
            &back.events[2],
            DumpEvent::Cancel { call_sign, date }
                if call_sign.0 == "WQ00009" && *date == d(2015, 6, 17)
        ));
        // Encoding the decoded batch is a fixed point.
        assert_eq!(encode_batch(&back), text);
    }

    #[test]
    fn missing_dd_header_fails_the_batch() {
        let err = decode_batch("TX|C|WQ1|01/01/2020\n").unwrap_err();
        assert!(err.message.contains("expected DD header"), "{err}");
        assert!(decode_batch("").is_err());
        assert!(decode_batch("# only comments\n").is_err());
        let err = decode_batch("DD|13/45/2020\n").unwrap_err();
        assert!(err.message.contains("bad DD date"), "{err}");
    }

    #[test]
    fn malformed_transaction_is_quarantined_not_fatal() {
        // Middle transaction has a corrupt LO record; neighbors survive.
        let mut text = String::from("DD|06/17/2015\n");
        text.push_str(&format!(
            "TX|N|WQ00007\n{}",
            flatfile::encode(&[lic(7, "WQ00007")])
        ));
        text.push_str("TX|N|WQ00008\nHD|8|WQ00008|MG|FXO|06/17/2015||\nEN|8|X\nLO|8|1|garbage|88-0-0.0 W|230.0|110.0\n");
        text.push_str("TX|C|WQ00007|06/18/2015\n");
        let (batch, report) = decode_batch(&text).unwrap();
        assert_eq!(batch.events.len(), 2);
        assert!(matches!(&batch.events[0], DumpEvent::New(_)));
        assert!(matches!(&batch.events[1], DumpEvent::Cancel { .. }));
        assert_eq!(report.count(), 1);
        assert_eq!(report.quarantined[0].lines, 4);
        assert_eq!(report.quarantined[0].reason, QuarantineReason::BadRecord);
        assert!(
            report.quarantined[0].message.contains("latitude")
                || !report.quarantined[0].message.is_empty()
        );
    }

    #[test]
    fn call_sign_mismatch_is_quarantined() {
        let mut text = String::from("DD|06/17/2015\n");
        text.push_str(&format!(
            "TX|N|WRONG\n{}",
            flatfile::encode(&[lic(7, "WQ00007")])
        ));
        let (batch, report) = decode_batch(&text).unwrap();
        assert!(batch.events.is_empty());
        assert_eq!(report.count(), 1);
        assert!(report.quarantined[0].message.contains("contradicts"));
        assert_eq!(
            report.quarantined[0].reason,
            QuarantineReason::CallSignMismatch
        );
    }

    #[test]
    fn cancel_with_body_and_bad_frames_are_quarantined() {
        let mut text = String::from("DD|06/17/2015\n");
        text.push_str("TX|C|WQ1|01/01/2020\nEN|1|Sneaky\n");
        text.push_str("TX|Z|WQ2\n");
        text.push_str("TX|N|WQ3\n"); // empty body
        text.push_str("EN|9|orphan\n"); // would be body of prev TX|N — ends up there
        let (batch, report) = decode_batch(&text).unwrap();
        assert!(batch.events.is_empty());
        assert_eq!(report.count(), 3);
        assert!(report.quarantined[0].message.contains("carries records"));
        assert!(report.quarantined[1].message.contains("malformed TX frame"));
        let reasons: Vec<QuarantineReason> = report.quarantined.iter().map(|q| q.reason).collect();
        assert_eq!(
            reasons,
            [
                QuarantineReason::CancelWithBody,
                QuarantineReason::BadFrame,
                QuarantineReason::BadRecord,
            ]
        );
    }

    #[test]
    fn records_outside_transactions_are_quarantined_individually() {
        let text = "DD|06/17/2015\nEN|1|stray\nDD|06/18/2015\n";
        let (batch, report) = decode_batch(text).unwrap();
        assert_eq!(batch.date, d(2015, 6, 17));
        assert!(batch.events.is_empty());
        assert_eq!(report.count(), 2, "stray EN and duplicate DD");
        assert_eq!(report.quarantined[0].lines, 1);
        assert!(report
            .quarantined
            .iter()
            .all(|q| q.reason == QuarantineReason::OutsideTransaction));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let batch = sample_batch();
        let text = format!("# daily dump\n\n{}", encode_batch(&batch));
        let (back, report) = decode_batch(&text).unwrap();
        assert!(report.is_clean());
        assert_eq!(back.events.len(), 3);
    }

    #[test]
    fn multi_license_body_is_quarantined() {
        let mut text = String::from("DD|06/17/2015\n");
        text.push_str(&format!(
            "TX|N|WQ00007\n{}",
            flatfile::encode(&[lic(7, "WQ00007"), lic(8, "WQ00008")])
        ));
        let (batch, report) = decode_batch(&text).unwrap();
        assert!(batch.events.is_empty());
        assert!(report.quarantined[0].message.contains("carries 2 licenses"));
        assert_eq!(report.quarantined[0].reason, QuarantineReason::MultiLicense);
        // Every reason has a stable distinct code for counter labels.
        let codes = [
            QuarantineReason::EmptyTransaction,
            QuarantineReason::BadRecord,
            QuarantineReason::MultiLicense,
            QuarantineReason::CallSignMismatch,
            QuarantineReason::CancelWithBody,
            QuarantineReason::BadCancelDate,
            QuarantineReason::BadFrame,
            QuarantineReason::OutsideTransaction,
        ]
        .map(QuarantineReason::code);
        let mut unique = codes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len());
    }
}
